//! Why no wait-free algorithm elects a leader (Theorem 11), shown three
//! ways.
//!
//! ```text
//! cargo run --example election_impossibility
//! ```
//!
//! 1. **Search**: exhaustive symmetric decision-map search on the
//!    iterated immediate-snapshot protocol complex finds no map.
//! 2. **Certificate**: the paper's actual proof — ridge-linked private
//!    vertices must decide alike, so each process's decision is global,
//!    and solo corners are symmetric — verified structurally (scales to
//!    n = 5 where search cannot go).
//! 3. **Contrast**: with a test&set object (the *adaptive* cousin of
//!    election), leadership is easy — the gap between adaptive and
//!    non-adaptive symmetry breaking that motivates the GSB family.

use gsb_universe::algorithms::harness::{run_synchronous, AlgorithmUnderTest};
use gsb_universe::algorithms::ElectionFromTestAndSet;
use gsb_universe::core::{GsbSpec, Identity};
use gsb_universe::memory::{Oracle, ProtocolFactory, TestAndSetOracle};
use gsb_universe::{Evidence, Query};

fn main() {
    // ── 1. Search ───────────────────────────────────────────────────────
    println!("Search for a symmetric decision map (election, small n):");
    for (n, max_r) in [(2usize, 3usize), (3, 2)] {
        let spec = GsbSpec::election(n).expect("n ≥ 2");
        for r in 0..=max_r {
            let verdict = Query::solvable_in_rounds(spec.clone(), r)
                .run()
                .expect("engine answers");
            let answer = match &verdict.evidence {
                Evidence::DecisionMap(_) => "SAT (?!)".to_string(),
                Evidence::RoundsUnsat { stats, .. } => {
                    format!("no map ({} conflicts)", stats.conflicts)
                }
                other => format!("unexpected evidence '{}'", other.label()),
            };
            println!("  n = {n}, {r} IIS round(s): {answer}");
        }
    }

    // ── 2. Certificate ──────────────────────────────────────────────────
    // `Query::certificate` recognizes election and produces the
    // polynomial structural certificate, which scales past the search
    // (n = 4, 5); its evidence re-checks on a freshly built complex.
    println!("\nTheorem 11 certificate (structure of χ^r(Δ^{{n−1}})):");
    for (n, r) in [(2usize, 2usize), (3, 1), (3, 2), (4, 1), (5, 1)] {
        let spec = GsbSpec::election(n).expect("n ≥ 2");
        match Query::certificate(spec, r).run() {
            Ok(verdict) => match verdict.evidence {
                Evidence::ElectionCertificate { facets, .. } => println!(
                    "  n = {n}, r = {r}: certified impossible \
                     ({facets} facets, pseudomanifold, per-color linkage connected, \
                     corners symmetric)"
                ),
                other => println!(
                    "  n = {n}, r = {r}: unexpected evidence '{}'",
                    other.label()
                ),
            },
            Err(e) => println!("  n = {n}, r = {r}: certificate failed — {e}"),
        }
    }
    println!(
        "  (the proof: ridge-adjacent facets share all but one vertex, so\n\
         \u{20}  their private vertices — same color — must decide alike in any\n\
         \u{20}  election map; linkage-connectivity makes each process's decision\n\
         \u{20}  global; corner symmetry then forces ALL processes to the same\n\
         \u{20}  value — contradicting 'exactly one leader'.)"
    );

    // ── 3. The adaptive contrast ────────────────────────────────────────
    println!("\nWith a test&set object (adaptive), election is immediate:");
    let n = 5;
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, _id, _n| Box::new(ElectionFromTestAndSet::new()));
    let oracles = || vec![Box::new(TestAndSetOracle::new()) as Box<dyn Oracle>];
    let algo = AlgorithmUnderTest {
        spec: GsbSpec::election(n).expect("n ≥ 2"),
        factory: &factory,
        oracles: &oracles,
    };
    let ids: Vec<Identity> = (1..=n as u32)
        .map(|v| Identity::new(v).expect("non-zero"))
        .collect();
    let outcome = run_synchronous(&algo, &ids).expect("run succeeds");
    println!(
        "  decisions: {} (exactly one 1)",
        outcome.output_vector().expect("all decided")
    );
    println!(
        "  — test&set guarantees a winner among *participants* (adaptive);\n\
         \u{20} election GSB fixes the output spectrum for all n processes\n\
         \u{20} statically (non-adaptive), and that is what registers cannot do."
    );
}
