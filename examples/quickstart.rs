//! Quickstart: the GSB task family in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through: defining tasks, synonyms and kernel sets, canonical
//! representatives, solvability verdicts through the query→verdict
//! engine (with machine-checkable evidence and JSON reports), and
//! running one actual wait-free algorithm on the simulator.

use gsb_universe::algorithms::harness::{run_synchronous, AlgorithmUnderTest};
use gsb_universe::algorithms::SlotRenamingProtocol;
use gsb_universe::core::{Identity, KernelTable, SymmetricGsb};
use gsb_universe::memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};
use gsb_universe::{Query, Verdict};

fn main() {
    // ── 1. Tasks ────────────────────────────────────────────────────────
    // ⟨n, m, ℓ, u⟩-GSB: n processes decide values in 1..=m, each value
    // decided between ℓ and u times.
    let wsb = SymmetricGsb::wsb(6).expect("valid parameters");
    let two_slot = SymmetricGsb::slot(6, 2).expect("valid parameters");
    println!("WSB           = {wsb}");
    println!("2-slot        = {two_slot}");

    // ── 2. Synonyms & kernel sets ───────────────────────────────────────
    // Different 4-tuples can denote the same task; kernel sets decide.
    println!(
        "same task?      {} (kernel set {})",
        wsb.is_synonym_of(&two_slot),
        wsb.kernel_set()
    );

    // ── 3. Canonical representatives & the hardest task ────────────────
    let t = SymmetricGsb::new(6, 3, 1, 6).expect("valid parameters");
    println!(
        "canonical form of {t} is {}",
        t.canonical().expect("feasible")
    );
    println!(
        "hardest ⟨6,3,·,·⟩ task: {}",
        SymmetricGsb::hardest(6, 3).expect("valid parameters")
    );

    // ── 4. Solvability, through the query→verdict engine ───────────────
    // One typed entry point answers every solvability question; every
    // verdict carries evidence that `Verdict::check` re-verifies
    // independently of the engine that produced it.
    for task in [
        SymmetricGsb::loose_renaming(6).unwrap(),
        SymmetricGsb::wsb(6).unwrap(),
        SymmetricGsb::wsb(8).unwrap(),
        SymmetricGsb::perfect_renaming(6).unwrap(),
    ] {
        let verdict = Query::classify(task.to_spec())
            .run()
            .expect("engine answers");
        println!("{verdict}");
    }

    // Verdicts serialize to JSON and parse back, still checkable — this
    // is exactly what `gsb classify wsb --n 6 --json` prints.
    let verdict = Query::classify(SymmetricGsb::wsb(6).unwrap().to_spec())
        .run()
        .expect("engine answers");
    let parsed = Verdict::from_json(&verdict.to_json()).expect("reports parse back");
    parsed.check().expect("parsed evidence still verifies");
    println!(
        "(JSON report round-trips: {} bytes, evidence '{}' re-checked)",
        verdict.to_json().len(),
        parsed.evidence.label()
    );

    // ── 5. Run an algorithm: Figure 2 (Theorem 12) ─────────────────────
    // (n+1)-renaming from an (n−1)-slot object, on the simulator.
    let n = 5;
    let spec = SymmetricGsb::renaming(n, n + 1).unwrap().to_spec();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)));
    let oracles = move || -> Vec<Box<dyn Oracle>> {
        let slot_spec = SymmetricGsb::slot(n, n - 1).unwrap().to_spec();
        vec![Box::new(
            GsbOracle::new(slot_spec, OraclePolicy::FirstFit).unwrap(),
        )]
    };
    let algo = AlgorithmUnderTest {
        spec: spec.clone(),
        factory: &factory,
        oracles: &oracles,
    };
    let ids: Vec<Identity> = [9u32, 2, 7, 4, 1]
        .iter()
        .map(|&v| Identity::new(v).unwrap())
        .collect();
    let outcome = run_synchronous(&algo, &ids).expect("run succeeds");
    let output = outcome.output_vector().expect("everyone decided");
    println!(
        "\nFigure 2 run (n = {n}): ids {:?} → names {output} (legal: {})",
        ids.iter().map(|i| i.get()).collect::<Vec<_>>(),
        spec.is_legal_output(&output)
    );

    // ── 6. The paper's Table 1, regenerated ────────────────────────────
    println!("\nTable 1 (n = 6, m = 3):");
    print!(
        "{}",
        KernelTable::new(6, 3).expect("valid parameters").render()
    );
}
