//! The solvability atlas: where every small GSB task sits between
//! "trivial" and "impossible".
//!
//! ```text
//! cargo run --example solvability_atlas
//! ```
//!
//! Combines the three verdict sources this repository implements:
//!
//! * the closed-form classifier (Theorems 9–11, Corollaries 2–5);
//! * brute-force no-communication map search (cross-check, small n);
//! * the topological decision-map search (comparison-based IIS rounds).

use gsb_universe::core::{GsbSpec, Solvability, SymmetricGsb};
use gsb_universe::topology::solvable_in_rounds;

fn main() {
    println!("── Closed-form classification (n = 6) ──────────────────────");
    for m in 1..=6usize {
        for task in gsb_universe::core::order::feasible_family(6, m).unwrap() {
            let c = task.classify();
            if task.is_canonical().unwrap_or(false) {
                println!("  {task}: {c}");
            }
        }
    }

    println!("\n── Cross-check: Theorem 9 vs. brute force (n = 3) ──────────");
    let mut agreements = 0usize;
    let mut total = 0usize;
    for m in 1..=5usize {
        for l in 0..=3usize {
            for u in l..=3usize {
                let Ok(t) = SymmetricGsb::new(3, m, l, u) else {
                    continue;
                };
                let spec = t.to_spec();
                let closed = t.no_communication_solvable();
                let brute = spec.is_feasible() && spec.no_communication_brute_force();
                assert_eq!(closed, brute, "mismatch at {t}");
                agreements += 1;
                total += 1;
            }
        }
    }
    println!("  {agreements}/{total} parameterizations agree exactly");

    println!("\n── Topological search (comparison-based IIS, small n) ──────");
    let checks: Vec<(&str, GsbSpec, usize)> = vec![
        ("election n=2", GsbSpec::election(2).unwrap(), 3),
        ("election n=3", GsbSpec::election(3).unwrap(), 1),
        ("WSB n=3", SymmetricGsb::wsb(3).unwrap().to_spec(), 1),
        (
            "perfect renaming n=2",
            SymmetricGsb::perfect_renaming(2).unwrap().to_spec(),
            3,
        ),
        (
            "3-renaming n=2",
            SymmetricGsb::renaming(2, 3).unwrap().to_spec(),
            1,
        ),
        (
            "6-renaming n=3",
            SymmetricGsb::renaming(3, 6).unwrap().to_spec(),
            1,
        ),
    ];
    for (name, spec, max_rounds) in checks {
        let mut verdict = format!("UNSAT through {max_rounds} round(s)");
        for r in 0..=max_rounds {
            if solvable_in_rounds(&spec, r).is_solvable() {
                verdict = format!("SAT at {r} round(s)");
                break;
            }
        }
        println!("  {name:<22} {verdict}");
    }

    println!("\n── The gcd frontier (Theorem 10) ───────────────────────────");
    println!("  WSB / (2n−2)-renaming is wait-free solvable exactly at the");
    println!("  'exceptional' n where gcd{{C(n,i)}} = 1 (n not a prime power):");
    let exceptional: Vec<usize> = (2..=30)
        .filter(|&n| !gsb_universe::core::solvability::binomials_not_prime(n))
        .collect();
    println!("  exceptional n ≤ 30: {exceptional:?}");
    for n in [6usize, 8] {
        let wsb = SymmetricGsb::wsb(n).unwrap();
        let verdict = wsb.classify().solvability;
        println!(
            "  WSB at n = {n}: {verdict}{}",
            if verdict == Solvability::WaitFreeSolvable {
                " — 6 = 2·3 escapes the lower bound"
            } else {
                " — 8 = 2³ is a prime power"
            }
        );
    }
}
