//! The solvability atlas: where every small GSB task sits between
//! "trivial" and "impossible" — asked entirely through the
//! query→verdict engine.
//!
//! ```text
//! cargo run --example solvability_atlas
//! ```
//!
//! One API, three verdict sources:
//!
//! * `Query::atlas` — the closed-form classifier over every feasible
//!   task (Theorems 9–11, Corollaries 2–5), every row re-checked;
//! * `Query::no_comm_witness` — Theorem 9 witnesses, brute-force
//!   verified against every adversarial identity subset;
//! * `Query::solvable_in_rounds` — the topological decision-map search
//!   (comparison-based IIS rounds), batched over a query set with one
//!   shared cache.

use gsb_universe::core::{GsbSpec, Solvability, SymmetricGsb};
use gsb_universe::{Batch, Evidence, Query};

fn main() {
    // ── Closed-form classification (n ≤ 6), one atlas query ─────────────
    println!("── Atlas sweep (every feasible task, n ≤ 6) ────────────────");
    let verdict = Query::atlas(6).run().expect("atlas sweeps");
    let rows = verdict.evidence.atlas_rows().expect("atlas evidence");
    for row in rows.iter().filter(|r| r.task.n() == 6) {
        if row.task.is_canonical().unwrap_or(false) {
            println!(
                "  {}: {} ({})",
                row.task, row.solvability, row.justification
            );
        }
    }
    println!(
        "  [{} rows total through n = 6, every one re-classified by the checker]",
        rows.len()
    );

    // ── Theorem 9 witnesses, replayed ───────────────────────────────────
    println!("\n── No-communication witnesses (Theorem 9, n = 3) ───────────");
    let mut witnesses = 0usize;
    let mut refuted = 0usize;
    for m in 1..=5usize {
        for l in 0..=3usize {
            for u in l..=3usize {
                let Ok(t) = SymmetricGsb::new(3, m, l, u) else {
                    continue;
                };
                let verdict = Query::no_comm_witness(t.to_spec())
                    .run()
                    .expect("witness query answers");
                match verdict.evidence {
                    Evidence::NoCommunication { .. } => witnesses += 1,
                    _ => refuted += 1,
                }
            }
        }
    }
    println!(
        "  {witnesses} tasks carry a brute-force-verified witness, \
         {refuted} provably have none"
    );

    // ── Topological search, batched ─────────────────────────────────────
    println!("\n── Topological search (comparison-based IIS, batched) ──────");
    let checks: Vec<(&str, GsbSpec, usize)> = vec![
        ("election n=2", GsbSpec::election(2).unwrap(), 3),
        ("election n=3", GsbSpec::election(3).unwrap(), 1),
        ("WSB n=3", SymmetricGsb::wsb(3).unwrap().to_spec(), 1),
        (
            "perfect renaming n=2",
            SymmetricGsb::perfect_renaming(2).unwrap().to_spec(),
            3,
        ),
        (
            "3-renaming n=2",
            SymmetricGsb::renaming(2, 3).unwrap().to_spec(),
            1,
        ),
        (
            "6-renaming n=3",
            SymmetricGsb::renaming(3, 6).unwrap().to_spec(),
            1,
        ),
    ];
    // One batch over all (task, round) pairs: rayon fan-out, shared cache.
    let batch: Batch = checks
        .iter()
        .flat_map(|(_, spec, max_rounds)| {
            (0..=*max_rounds).map(|r| Query::solvable_in_rounds(spec.clone(), r))
        })
        .collect();
    let verdicts = batch.run();
    let mut base = 0usize;
    for (name, _, max_rounds) in &checks {
        let mut summary = format!("UNSAT through {max_rounds} round(s)");
        for r in 0..=*max_rounds {
            let verdict = verdicts[base + r].as_ref().expect("search answers");
            if verdict.evidence.decision_map().is_some() {
                summary = format!("SAT at {r} round(s), witness replayed facet-by-facet");
                break;
            }
        }
        base += max_rounds + 1;
        println!("  {name:<22} {summary}");
    }

    // ── The gcd frontier (Theorem 10) ───────────────────────────────────
    println!("\n── The gcd frontier (Theorem 10) ───────────────────────────");
    println!("  WSB / (2n−2)-renaming is wait-free solvable exactly at the");
    println!("  'exceptional' n where gcd{{C(n,i)}} = 1 (n not a prime power):");
    let exceptional: Vec<usize> = (2..=30)
        .filter(|&n| !gsb_universe::core::solvability::binomials_not_prime(n))
        .collect();
    println!("  exceptional n ≤ 30: {exceptional:?}");
    for n in [6usize, 8] {
        let verdict = Query::classify(SymmetricGsb::wsb(n).unwrap().to_spec())
            .run()
            .expect("classify answers");
        println!(
            "  WSB at n = {n}: {}{}",
            verdict.solvability.expect("task-level verdict"),
            if verdict.solvability == Some(Solvability::WaitFreeSolvable) {
                " — 6 = 2·3 escapes the lower bound"
            } else {
                " — 8 = 2³ is a prime power"
            }
        );
    }
}
