//! The paper's motivating scenario (Section 1): `n` persons must each
//! join exactly one of `m` committees, every committee having predefined
//! lower and upper bounds on its membership — despite asynchrony and
//! crashes.
//!
//! ```text
//! cargo run --example committee_assignment
//! ```
//!
//! This is an *asymmetric* GSB task. We solve it with the universal
//! construction (Theorem 8) on top of a perfect-renaming object, then
//! stress it over random and adversarial schedules with crash injection.

use gsb_universe::algorithms::harness::{sweep_adversarial, sweep_random, AlgorithmUnderTest};
use gsb_universe::algorithms::UniversalGsbProtocol;
use gsb_universe::core::{GsbSpec, SymmetricGsb};
use gsb_universe::memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};
use gsb_universe::Query;

fn main() {
    // Nine engineers, three committees:
    //   release (2–3 members), security (3–4), social (1–4).
    let n = 9;
    let committees = [
        ("release", (2usize, 3usize)),
        ("security", (3, 4)),
        ("social", (1, 4)),
    ];
    let bounds: Vec<(usize, usize)> = committees.iter().map(|&(_, b)| b).collect();
    let spec = GsbSpec::committees(n, &bounds).expect("well-formed committee bounds");
    println!("Committee task: {spec}");
    println!("feasible: {} (Lemma 1: Σℓ ≤ n ≤ Σu)", spec.is_feasible());
    let verdict = Query::classify(spec.clone()).run().expect("engine answers");
    println!(
        "classification: {} ({})",
        verdict.solvability.expect("task-level verdict"),
        verdict.provenance.justification
    );
    // Asymmetric tasks go through the interval-partition generalization
    // of Theorem 9; a positive witness is replayed against every
    // adversarial identity subset AND through the actual simulator.
    let mut witness_query = Query::no_comm_witness(spec.clone());
    witness_query.opts_mut().simulate_witness = true;
    let witness_verdict = witness_query.run().expect("engine answers");
    match witness_verdict.evidence.witness() {
        Some(map) => println!(
            "no-communication witness (identity → committee): {map:?} \
             [{} simulator replays]",
            witness_verdict.stats.simulated_runs
        ),
        None => println!("no no-communication solution — coordination is required"),
    }

    // Theorem 8: solve it from a perfect-renaming object.
    let spec_for_factory = spec.clone();
    let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, _n| {
        Box::new(UniversalGsbProtocol::new(&spec_for_factory).expect("feasible target"))
    });
    let oracles = move || -> Vec<Box<dyn Oracle>> {
        let pr = SymmetricGsb::perfect_renaming(n).unwrap().to_spec();
        vec![Box::new(
            GsbOracle::new(pr, OraclePolicy::Seeded(2024)).unwrap(),
        )]
    };
    let algo = AlgorithmUnderTest {
        spec: spec.clone(),
        factory: &factory,
        oracles: &oracles,
    };

    println!("\nValidation sweeps (every run checked against the bounds):");
    let random = sweep_random(&algo, (2 * n - 1) as u32, 500, 7).expect("no violations");
    println!(
        "  random:      {} runs ({} with crashes), max {} steps",
        random.runs, random.crashed_runs, random.max_steps
    );
    let adversarial = sweep_adversarial(&algo, (2 * n - 1) as u32, 500, 8).expect("no violations");
    println!(
        "  adversarial: {} runs ({} with crashes), max {} steps",
        adversarial.runs, adversarial.crashed_runs, adversarial.max_steps
    );

    // Show one concrete assignment.
    let ids: Vec<gsb_universe::core::Identity> = (1..=n as u32)
        .map(|v| gsb_universe::core::Identity::new(v).unwrap())
        .collect();
    let outcome =
        gsb_universe::algorithms::harness::run_synchronous(&algo, &ids).expect("run succeeds");
    let output = outcome.output_vector().expect("everyone decided");
    println!("\nOne assignment (person i → committee):");
    for (i, &v) in output.values().iter().enumerate() {
        println!("  person {} → {}", i + 1, committees[v - 1].0);
    }
    for (v, &(name, (lo, hi))) in committees.iter().enumerate() {
        let size = output.count_of(v + 1);
        println!("  {name}: {size} members (required {lo}..={hi})");
        assert!((lo..=hi).contains(&size));
    }
}
