//! The renaming pipeline: from raw identities to tight name spaces.
//!
//! ```text
//! cargo run --example renaming_pipeline
//! ```
//!
//! Demonstrates the chain of renaming results the paper organizes:
//!
//! 1. identities from a large space `[1..N]` → `(2n−1)` names with the
//!    classic wait-free algorithm (Theorems 1–2's tool);
//! 2. `(n−1)`-slot object → `(n+1)` names (Figure 2 / Theorem 12);
//! 3. `(2n−2)`-renaming object → weak symmetry breaking (the reduction
//!    behind Theorem 10);
//! 4. one immediate-snapshot round → `n(n+1)/2` names (the IS route);
//! 5. real threads and hardware atomics → `n(n+1)/2` names via a
//!    splitter grid.

use gsb_universe::algorithms::harness::{run_synchronous, AlgorithmUnderTest};
use gsb_universe::algorithms::{
    IsRenamingProtocol, RenamingProtocol, SlotRenamingProtocol, WsbFromRenamingProtocol,
};
use gsb_universe::core::{Identity, SymmetricGsb};
use gsb_universe::memory::threaded::SplitterGrid;
use gsb_universe::memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};
use gsb_universe::{Batch, Query};

fn ids(values: &[u32]) -> Vec<Identity> {
    values.iter().map(|&v| Identity::new(v).unwrap()).collect()
}

fn main() {
    let n = 5;
    let raw = [83u32, 12, 57, 91, 34]; // identities from a large space
    println!("raw identities: {raw:?}\n");

    // Before running anything, ask the engine where each pipeline stage
    // sits in the solvability landscape — one batch, shared cache.
    let stages = [
        (
            "(2n−1)-renaming",
            SymmetricGsb::renaming(n, 2 * n - 1).unwrap(),
        ),
        ("(n+1)-renaming", SymmetricGsb::renaming(n, n + 1).unwrap()),
        ("WSB", SymmetricGsb::wsb(n).unwrap()),
        (
            "perfect renaming",
            SymmetricGsb::perfect_renaming(n).unwrap(),
        ),
    ];
    let batch: Batch = stages
        .iter()
        .map(|(_, task)| Query::classify(task.to_spec()))
        .collect();
    println!("engine verdicts for the pipeline's tasks:");
    for ((name, _), verdict) in stages.iter().zip(batch.run()) {
        let verdict = verdict.expect("engine answers");
        println!(
            "  {name:<18} {}",
            verdict.solvability.expect("task-level verdict")
        );
    }
    println!();

    // 1. (2n−1)-renaming from registers.
    let spec = SymmetricGsb::renaming(n, 2 * n - 1).unwrap().to_spec();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, id, _n| Box::new(RenamingProtocol::new(id)));
    let algo = AlgorithmUnderTest {
        spec: spec.clone(),
        factory: &factory,
        oracles: &Vec::new,
    };
    let outcome = run_synchronous(&algo, &ids(&raw)).expect("run succeeds");
    let names = outcome.output_vector().expect("all decided");
    println!("(2n−1)-renaming  → {names}  (space 1..={})", 2 * n - 1);

    // 2. Figure 2: (n+1)-renaming from an (n−1)-slot object.
    let spec = SymmetricGsb::renaming(n, n + 1).unwrap().to_spec();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)));
    let oracles = move || -> Vec<Box<dyn Oracle>> {
        let slot = SymmetricGsb::slot(n, n - 1).unwrap().to_spec();
        vec![Box::new(
            GsbOracle::new(slot, OraclePolicy::Seeded(5)).unwrap(),
        )]
    };
    let algo = AlgorithmUnderTest {
        spec: spec.clone(),
        factory: &factory,
        oracles: &oracles,
    };
    let outcome = run_synchronous(&algo, &ids(&raw)).expect("run succeeds");
    let names = outcome.output_vector().expect("all decided");
    println!("slot → renaming  → {names}  (space 1..={})", n + 1);

    // 3. WSB from (2n−2)-renaming.
    let spec = SymmetricGsb::wsb(n).unwrap().to_spec();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, _id, n| Box::new(WsbFromRenamingProtocol::new(n).unwrap()));
    let oracles = move || -> Vec<Box<dyn Oracle>> {
        let renaming = SymmetricGsb::renaming(n, 2 * n - 2).unwrap().to_spec();
        vec![Box::new(
            GsbOracle::new(renaming, OraclePolicy::Seeded(9)).unwrap(),
        )]
    };
    let algo = AlgorithmUnderTest {
        spec: spec.clone(),
        factory: &factory,
        oracles: &oracles,
    };
    let outcome = run_synchronous(&algo, &ids(&raw)).expect("run succeeds");
    let bits = outcome.output_vector().expect("all decided");
    println!("renaming → WSB   → {bits}  (not all equal)");

    // 4. IS-based renaming.
    let spec = SymmetricGsb::renaming(n, IsRenamingProtocol::name_space(n))
        .unwrap()
        .to_spec();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, id, n| Box::new(IsRenamingProtocol::new(id, n)));
    let algo = AlgorithmUnderTest {
        spec: spec.clone(),
        factory: &factory,
        oracles: &Vec::new,
    };
    let outcome = run_synchronous(&algo, &ids(&raw)).expect("run succeeds");
    let names = outcome.output_vector().expect("all decided");
    println!(
        "IS renaming      → {names}  (space 1..={})",
        IsRenamingProtocol::name_space(n)
    );

    // 5. Real threads: splitter-grid renaming on hardware atomics.
    let grid = SplitterGrid::new(n);
    let mut thread_names = vec![0usize; n];
    crossbeam_scope(&grid, &raw, &mut thread_names);
    println!(
        "splitter grid    → {thread_names:?}  (space 1..={}, real threads)",
        grid.name_space()
    );
    let mut sorted = thread_names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), n, "names must be distinct");
}

fn crossbeam_scope(grid: &SplitterGrid, raw: &[u32], out: &mut [usize]) {
    std::thread::scope(|scope| {
        for (slot, &id) in out.iter_mut().zip(raw) {
            scope.spawn(move || {
                *slot = grid.rename(u64::from(id));
            });
        }
    });
}
