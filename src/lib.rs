//! # gsb-universe
//!
//! A production-quality Rust reproduction of *The Universe of Symmetry
//! Breaking Tasks* (Imbs, Rajsbaum, Raynal — IRISA PI-1965 / PODC 2011).
//!
//! ## The engine: one question, one answer shape
//!
//! Every solvability surface of the workspace is asked through the
//! unified query→verdict engine: build a [`Query`] (a task spec + a
//! [`Question`] + [`EngineOpts`]), run it, get a [`Verdict`] whose
//! [`Evidence`] is machine-checkable **independently of the engine that
//! produced it** (decision maps replay facet by facet, witnesses are
//! brute-forced against every adversarial identity subset, counts are
//! recomputed through a second algorithm). [`Batch`] fans query sets out
//! over rayon with a shared [`EngineCache`]; [`Error`] unifies the four
//! per-crate error types; verdicts serialize to JSON and parse back
//! ([`Verdict::to_json`] / [`Verdict::from_json`]).
//!
//! The same surface is scriptable from the shell via the `gsb` binary:
//!
//! ```text
//! gsb classify wsb --n 6 --json     # classifier verdict + evidence
//! gsb frontier --task wsb --n 3 --rounds 2   # round-by-round search
//! gsb atlas 9                       # every feasible task through n = 9
//! ```
//!
//! ## Quick start
//!
//! ```
//! use gsb_universe::{Query, Verdict};
//! use gsb_universe::core::{Solvability, SymmetricGsb};
//!
//! // Weak symmetry breaking for 6 processes is wait-free solvable
//! // (6 is not a prime power)…
//! let wsb = SymmetricGsb::wsb(6)?.to_spec();
//! let verdict: Verdict = Query::classify(wsb).run()?;
//! assert_eq!(verdict.solvability, Some(Solvability::WaitFreeSolvable));
//!
//! // …and the verdict survives a JSON round trip, still checkable.
//! let parsed = Verdict::from_json(&verdict.to_json())?;
//! parsed.check()?;
//! # Ok::<(), gsb_universe::Error>(())
//! ```
//!
//! ## The subsystem crates
//!
//! The engine sits on four subsystem crates, re-exported here:
//!
//! * [`core`] (`gsb-core`) — the GSB task family: specifications, kernel
//!   structure theory, canonical representatives, Table 1 / Figure 1
//!   generators, and the solvability classifier.
//! * [`memory`] (`gsb-memory`) — the wait-free shared-memory substrate:
//!   step-level simulator, schedulers, exhaustive enumeration, AADGMS
//!   snapshots, immediate snapshots, oracle task objects, and a
//!   real-thread backend.
//! * [`algorithms`] (`gsb-algorithms`) — the paper's algorithms and
//!   reductions: `(2n−1)`-renaming, communication-free solvers, the
//!   universal construction (Theorem 8), the Figure 2 slot→renaming
//!   algorithm (Theorem 12), WSB reductions, election.
//! * [`topology`] (`gsb-topology`) — protocol complexes and the
//!   symmetric decision-map search behind the impossibility results
//!   (Theorem 11): a conflict-driven (CDCL) engine with symmetry-orbit
//!   learning and a solver portfolio, plus the retained backtracking
//!   oracle it is property-tested against, and the replayable
//!   [`DecisionMap`](topology::DecisionMap) witness the engine's SAT
//!   evidence is built on.
//! * [`engine`] (`gsb-engine`) — the query→verdict engine itself.
//! * [`serve`] (`gsb-serve`) — the persistent solvability service: a
//!   JSON-lines TCP server with a disk-backed
//!   [`VerdictStore`](serve::VerdictStore), admission control, and a
//!   metrics endpoint, plus the blocking [`Client`](serve::Client)
//!   behind the CLI's `--connect` paths.
//!
//! See the `examples/` directory for runnable end-to-end scenarios,
//! `DESIGN.md` §7 for the engine/evidence architecture, and
//! `DESIGN.md` §11 for the serve subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gsb_algorithms as algorithms;
pub use gsb_core as core;
pub use gsb_engine as engine;
pub use gsb_memory as memory;
pub use gsb_serve as serve;
pub use gsb_topology as topology;

pub use gsb_engine::{
    named_task, AtlasCell, Batch, CacheStats, EngineCache, EngineOpts, Error, Evidence, Provenance,
    Query, Question, Result, RunStats, SearchEngine, Verdict, KNOWN_TASKS,
};
pub use gsb_topology::SearchMode;
