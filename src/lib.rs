//! # gsb-universe
//!
//! A production-quality Rust reproduction of *The Universe of Symmetry
//! Breaking Tasks* (Imbs, Rajsbaum, Raynal — IRISA PI-1965 / PODC 2011).
//!
//! This façade crate re-exports the four subsystem crates:
//!
//! * [`core`] (`gsb-core`) — the GSB task family: specifications, kernel
//!   structure theory, canonical representatives, Table 1 / Figure 1
//!   generators, and the solvability classifier.
//! * [`memory`] (`gsb-memory`) — the wait-free shared-memory substrate:
//!   step-level simulator, schedulers, exhaustive enumeration, AADGMS
//!   snapshots, immediate snapshots, oracle task objects, and a
//!   real-thread backend.
//! * [`algorithms`] (`gsb-algorithms`) — the paper's algorithms and
//!   reductions: `(2n−1)`-renaming, communication-free solvers, the
//!   universal construction (Theorem 8), the Figure 2 slot→renaming
//!   algorithm (Theorem 12), WSB reductions, election.
//! * [`topology`] (`gsb-topology`) — protocol complexes and the
//!   symmetric decision-map search behind the impossibility results
//!   (Theorem 11): a conflict-driven (CDCL) engine with symmetry-orbit
//!   learning and a solver portfolio, plus the retained backtracking
//!   oracle it is property-tested against. The frontier it certifies —
//!   WSB/election `r = 2` UNSAT at `n = 3`, two-round `(2n−1)`-renaming
//!   at `n = 4` — is pinned in `crates/topology/tests/`.
//!
//! ## Quick start
//!
//! ```
//! use gsb_universe::core::{Solvability, SymmetricGsb};
//!
//! let wsb = SymmetricGsb::wsb(6)?;
//! assert_eq!(wsb.classify().solvability, Solvability::WaitFreeSolvable);
//! # Ok::<(), gsb_universe::core::Error>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gsb_algorithms as algorithms;
pub use gsb_core as core;
pub use gsb_memory as memory;
pub use gsb_topology as topology;
