//! `gsb` — the query→verdict engine from the shell.
//!
//! ```text
//! gsb classify <task|--spec n,m,l,u> --n N [--k K] [--json]
//! gsb solvable <task> --n N --rounds R [--engine cdcl|reference|both] [--json]
//! gsb frontier --task <task> --n N --rounds R [--json]
//! gsb witness  <task> --n N [--simulate] [--json]
//! gsb certify  <task> --n N --rounds R [--json]
//! gsb atlas    <max_n> [--rows] [--json]
//! gsb complex  <n> <r> [--json]
//! gsb tasks
//! gsb serve    [--addr A] [--store PATH] [--workers W] [--no-append]
//! gsb store    build --atlas N --out PATH
//! gsb query    <task> --n N --connect ADDR [--question Q] [--json]
//! gsb ping     --connect ADDR [--wait-ms MS]
//! gsb metrics  --connect ADDR [--json]
//! gsb shutdown --connect ADDR
//! gsb cache-stats [--warm N | --connect ADDR] [--json]
//! ```
//!
//! Every subcommand is a thin shell over `gsb_universe::Query`; `--json`
//! prints the verdict report verbatim (`Verdict::to_json`), which can be
//! parsed back and re-checked offline with `Verdict::from_json`. The
//! `serve`/`store`/`--connect` family fronts the `gsb-serve` subsystem
//! (DESIGN.md §11): a persistent JSON-lines solvability service with a
//! disk-backed verdict store, admission control, and metrics.

use std::collections::BTreeMap;
use std::process::ExitCode;

use std::sync::Arc;

use gsb_universe::core::GsbSpec;
use gsb_universe::engine::Json;
use gsb_universe::serve::{
    AdmissionPolicy, Client, CompactionPolicy, RetryPolicy, SelfHealingClient, Served, ServedBy,
    Server, ServerConfig, VerdictStore,
};
use gsb_universe::{
    named_task, EngineCache, Error, Query, SearchEngine, SearchMode, Verdict, KNOWN_TASKS,
};

const USAGE: &str = "\
gsb — unified solvability queries over the GSB task universe

USAGE:
  gsb classify <task|--spec n,m,l,u> --n N [--k K] [--agree R] [--json]
  gsb solvable <task> --n N --rounds R [--engine cdcl|reference|both]
               [--search-mode cdcl|race|local] [--no-warm-start] [--json]
  gsb frontier --task <task> --n N --rounds R [--search-mode M]
               [--no-warm-start] [--json]
  gsb witness  <task> --n N [--simulate] [--json]
  gsb certify  <task> --n N --rounds R [--json]
  gsb atlas    <max_n> [--rows] [--json]
  gsb complex  <n> <r> [--orbits] [--json]
  gsb tasks

Serving (DESIGN.md §11, failure model §13):
  gsb serve    [--addr A] [--store PATH] [--workers W] [--max-inflight M]
               [--max-rounds R] [--deadline-cap-ms MS] [--no-append]
               [--idle-timeout-ms MS] [--retry-after-ms MS]
               [--compact-after N]
  gsb store    build --atlas N --out PATH
  gsb store    compact PATH
  gsb query    <task> --n N [--k K] --connect ADDR
               [--question classify|solvable|witness|certificate|atlas]
               [--rounds R] [--max-n N] [--retries R] [--json]
  gsb reload   --connect ADDR [--store PATH]
  gsb ping     --connect ADDR [--wait-ms MS]
  gsb metrics  --connect ADDR [--json]
  gsb shutdown --connect ADDR
  gsb cache-stats [--warm N | --connect ADDR] [--json]

`gsb serve` answers solvability questions over a JSON-lines TCP
protocol, consulting the disk-backed verdict store before the solver
and shedding load beyond its admission limits with a typed
`overloaded` response. Build a store offline with `gsb store build
--atlas 6 --out verdicts.jsonl`, then serve it with `--store`.
`gsb store compact` rewrites the append log into a sorted, checksummed
generation file (the server also auto-compacts past --compact-after
log entries); `gsb reload` hot-swaps the served store without a
restart or dropped requests; `gsb query --retries R` retries shed or
dropped requests with capped, jittered backoff.

Every query command also takes resource-governance limits:
  [--deadline-ms MS] [--decision-budget D] [--conflict-budget C]
  [--node-budget K] [--memory-budget-mb MB]
A query that hits a limit stops cooperatively and reports an
*indeterminate* verdict (solvability null, evidence kind
\"indeterminate\" with the stop reason and partial search counters)
instead of hanging or erroring, e.g.:
  gsb solvable wsb --n 3 --rounds 3 --deadline-ms 50 --json
  gsb solvable loose_renaming --n 4 --k 5 --rounds 2 --conflict-budget 1000

OPTIONS:
  --n N          number of processes
  --k K          task parameter (renaming name space, slot count, …)
  --spec n,m,l,u explicit symmetric ⟨n,m,ℓ,u⟩ spec instead of a task name
  --rounds R     round bound for the topological engines
  --engine E     search engine: cdcl (default), reference, or both
  --search-mode M  how the cdcl engine attacks the search: cdcl
                 (default), race (CDCL vs. local-search completion,
                 first finisher wins), or local (completion only —
                 exhaustion is indeterminate, never UNSAT)
  --no-warm-start  don't seed the solver with the lifted r−1 decision
                 map when the cache holds one (A/B runs, benchmarks)
  --agree R      cross-engine agreement mode through R rounds (classify)
  --simulate     replay witness evidence through the simulator (witness)
  --rows         print every atlas row, not just the totals
  --orbits       run the orbit-quotient pipeline instead: one lex-leader
                 representative per facet orbit, exact counts by
                 orbit–stabilizer, no complex materialized (complex)
  --json         emit the machine-readable verdict report
  --deadline-ms MS      wall-clock deadline (watchdog-backed)
  --decision-budget D   CDCL decision budget across the portfolio
  --conflict-budget C   CDCL conflict budget across the portfolio
  --node-budget K       reference-backtracker node budget
  --memory-budget-mb MB approximate construction memory budget

`gsb complex <n> <r>` builds χ^r(Δ^{n−1}) through the streaming
subdivision pipeline and prints facet/vertex/signature-class counts plus
build time; with `--orbits` the orbit-quotient frontier streams the same
counts from up to n!-fold fewer representative rows.

Run `gsb tasks` for the known task names.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gsb: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: positionals plus `--name value` / boolean flags.
struct Args {
    positionals: Vec<String>,
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

const BOOLEAN_FLAGS: &[&str] = &[
    "json",
    "simulate",
    "rows",
    "orbits",
    "no-append",
    "no-warm-start",
];
const VALUE_FLAGS: &[&str] = &[
    "n",
    "k",
    "spec",
    "rounds",
    "engine",
    "search-mode",
    "agree",
    "task",
    "max-n",
    "deadline-ms",
    "decision-budget",
    "conflict-budget",
    "node-budget",
    "memory-budget-mb",
    // Serving flags (DESIGN.md §11).
    "addr",
    "store",
    "workers",
    "max-inflight",
    "max-rounds",
    "deadline-cap-ms",
    "atlas",
    "out",
    "connect",
    "wait-ms",
    "question",
    "warm",
    // Crash-safe serving flags (DESIGN.md §13).
    "idle-timeout-ms",
    "retry-after-ms",
    "compact-after",
    "retries",
];

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut parsed = Args {
            positionals: Vec::new(),
            values: BTreeMap::new(),
            switches: Vec::new(),
        };
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    parsed.switches.push(name.to_string());
                } else if VALUE_FLAGS.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    parsed.values.insert(name.to_string(), value.clone());
                } else {
                    return Err(format!(
                        "unknown option --{name} (see `gsb help` for the option list)"
                    ));
                }
            } else {
                parsed.positionals.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn usize_value(&self, name: &str) -> Result<Option<usize>, String> {
        self.value(name)
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("--{name} must be a number, got '{v}'"))
            })
            .transpose()
    }

    fn require_usize(&self, name: &str) -> Result<usize, String> {
        self.usize_value(name)?
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn u64_value(&self, name: &str) -> Result<Option<u64>, String> {
        self.value(name)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--{name} must be a number, got '{v}'"))
            })
            .transpose()
    }
}

/// Applies the shared governance flags (deadline and budgets) to a
/// query's options. Every query subcommand accepts them; a tripped
/// limit yields an indeterminate verdict, not an error.
fn apply_governance(args: &Args, query: &mut Query) -> Result<(), String> {
    let opts = query.opts_mut();
    opts.deadline = args
        .u64_value("deadline-ms")?
        .map(std::time::Duration::from_millis);
    opts.decision_budget = args.u64_value("decision-budget")?;
    opts.conflict_budget = args.u64_value("conflict-budget")?;
    opts.node_budget = args.u64_value("node-budget")?;
    opts.memory_budget = args
        .u64_value("memory-budget-mb")?
        .map(|mb| mb.saturating_mul(1024 * 1024));
    Ok(())
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first().map(String::as_str) else {
        println!("{USAGE}");
        return Ok(());
    };
    let rest = Args::parse(&args[1..])?;
    match command {
        "classify" => classify(&rest),
        "solvable" => solvable(&rest),
        "frontier" => frontier(&rest),
        "witness" => witness(&rest),
        "certify" | "certificate" => certify(&rest),
        "atlas" => atlas(&rest),
        "complex" => complex(&rest),
        "serve" => serve(&rest),
        "store" => store(&rest),
        "query" => remote_query(&rest),
        "reload" => reload(&rest),
        "ping" => ping(&rest),
        "metrics" => metrics(&rest),
        "shutdown" => shutdown(&rest),
        "cache-stats" => cache_stats(&rest),
        "tasks" => {
            println!("Known task names (`gsb classify <name> --n N`):\n");
            for &(name, help) in KNOWN_TASKS {
                println!("  {name:<20} {help}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; try `gsb help`")),
    }
}

/// Resolves the task under query: a named task + `--n` (+ `--k`), or an
/// explicit `--spec n,m,l,u`.
fn resolve_spec(args: &Args) -> Result<GsbSpec, String> {
    if let Some(spec) = args.value("spec") {
        let parts: Vec<usize> = spec
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("--spec component '{p}' is not a number"))
            })
            .collect::<Result<_, _>>()?;
        let [n, m, l, u] = parts.as_slice() else {
            return Err("--spec takes four components: n,m,l,u".into());
        };
        return gsb_universe::core::SymmetricGsb::new(*n, *m, *l, *u)
            .map(|t| t.to_spec())
            .map_err(|e| e.to_string());
    }
    let name = args
        .value("task")
        .map(str::to_string)
        .or_else(|| args.positionals.first().cloned())
        .ok_or_else(|| "name a task (e.g. `wsb`) or pass --spec n,m,l,u".to_string())?;
    let n = args.require_usize("n")?;
    named_task(&name, n, args.usize_value("k")?).map_err(|e| e.to_string())
}

fn emit(verdict: &Verdict, json: bool) {
    if json {
        print!("{}", verdict.to_json());
    } else {
        println!("{verdict}");
        println!("  evidence:   {}", verdict.evidence);
        println!(
            "  provenance: {} via [{}]{}",
            verdict.provenance.question,
            verdict.provenance.engines.join(", "),
            if verdict.provenance.cache_hit {
                " (cached)"
            } else {
                ""
            }
        );
        println!(
            "  stats:      {:.3} ms{}{}",
            verdict.stats.wall.as_secs_f64() * 1e3,
            if verdict.stats.evidence_checked {
                ", evidence re-checked"
            } else {
                ""
            },
            match verdict.stats.simulated_runs {
                0 => String::new(),
                runs => format!(", {runs} simulator replays"),
            }
        );
    }
}

fn run_query(query: Query) -> Result<Verdict, String> {
    query.run().map_err(|e| render_error(&e))
}

fn render_error(e: &Error) -> String {
    match e {
        Error::Disagreement { question, details } => {
            format!("cross-engine disagreement on {question}: {details} (this is a bug)")
        }
        other => other.to_string(),
    }
}

fn classify(args: &Args) -> Result<(), String> {
    let spec = resolve_spec(args)?;
    let mut query = Query::classify(spec);
    if let Some(rounds) = args.usize_value("agree")? {
        query.opts_mut().agreement_rounds = Some(rounds);
    }
    apply_governance(args, &mut query)?;
    let verdict = run_query(query)?;
    emit(&verdict, args.switch("json"));
    Ok(())
}

fn parse_engine(args: &Args) -> Result<SearchEngine, String> {
    match args.value("engine") {
        None | Some("cdcl") => Ok(SearchEngine::Cdcl),
        Some("reference") => Ok(SearchEngine::Reference),
        Some("both") => Ok(SearchEngine::Both),
        Some(other) => Err(format!(
            "unknown engine '{other}' (cdcl, reference, or both)"
        )),
    }
}

/// Applies `--search-mode {cdcl,race,local}` and `--no-warm-start` to a
/// round-bounded query's options.
fn apply_search_mode(args: &Args, query: &mut Query) -> Result<(), String> {
    if let Some(label) = args.value("search-mode") {
        query.opts_mut().mode = SearchMode::from_label(label)
            .ok_or_else(|| format!("unknown search mode '{label}' (cdcl, race, or local)"))?;
    }
    if args.switch("no-warm-start") {
        query.opts_mut().warm_start = false;
    }
    Ok(())
}

fn solvable(args: &Args) -> Result<(), String> {
    let spec = resolve_spec(args)?;
    let rounds = args.require_usize("rounds")?;
    let mut query = Query::solvable_in_rounds(spec, rounds);
    query.opts_mut().search = parse_engine(args)?;
    apply_search_mode(args, &mut query)?;
    apply_governance(args, &mut query)?;
    let verdict = run_query(query)?;
    emit(&verdict, args.switch("json"));
    Ok(())
}

fn frontier(args: &Args) -> Result<(), String> {
    let spec = resolve_spec(args)?;
    let max_rounds = args.require_usize("rounds")?;
    let engine = parse_engine(args)?;
    let mut verdicts = Vec::with_capacity(max_rounds + 1);
    for rounds in 0..=max_rounds {
        let mut query = Query::solvable_in_rounds(spec.clone(), rounds);
        query.opts_mut().search = engine;
        apply_search_mode(args, &mut query)?;
        apply_governance(args, &mut query)?;
        verdicts.push(run_query(query)?);
    }
    if args.switch("json") {
        let report = Json::Arr(verdicts.iter().map(Verdict::to_json_value).collect());
        print!("{}", report.render());
        return Ok(());
    }
    println!("Solvability frontier for {spec}:");
    println!(
        "{:<8} {:<10} {:>10} {:>12}",
        "rounds", "verdict", "conflicts", "wall"
    );
    for (rounds, verdict) in verdicts.iter().enumerate() {
        let (answer, conflicts) = match verdict.evidence.decision_map() {
            Some(map) => (
                "SAT".to_string(),
                format!("{} classes", map.classes().len()),
            ),
            None => (
                "UNSAT".to_string(),
                verdict
                    .stats
                    .search
                    .map_or_else(String::new, |s| s.conflicts.to_string()),
            ),
        };
        println!(
            "{rounds:<8} {answer:<10} {conflicts:>10} {:>9.3} ms",
            verdict.stats.wall.as_secs_f64() * 1e3
        );
    }
    if let Some(last) = verdicts.last() {
        println!(
            "\noverall: {} ({})",
            last.solvability
                .map_or_else(|| "—".to_string(), |s| s.to_string()),
            last.provenance.justification
        );
    }
    Ok(())
}

fn witness(args: &Args) -> Result<(), String> {
    let spec = resolve_spec(args)?;
    let mut query = Query::no_comm_witness(spec);
    query.opts_mut().simulate_witness = args.switch("simulate");
    apply_governance(args, &mut query)?;
    let verdict = run_query(query)?;
    if !args.switch("json") {
        if let Some(map) = verdict.evidence.witness() {
            println!("witness (identity → value): {map:?}");
        }
    }
    emit(&verdict, args.switch("json"));
    Ok(())
}

fn certify(args: &Args) -> Result<(), String> {
    let spec = resolve_spec(args)?;
    let rounds = args.require_usize("rounds")?;
    let mut query = Query::certificate(spec, rounds);
    apply_governance(args, &mut query)?;
    let verdict = run_query(query)?;
    emit(&verdict, args.switch("json"));
    Ok(())
}

/// `gsb complex <n> <r>`: builds the protocol complex through the
/// streaming pipeline and reports its shape and build cost.
fn complex(args: &Args) -> Result<(), String> {
    let n = args
        .usize_value("n")?
        .or(args
            .positionals
            .first()
            .map(|p| p.parse::<usize>().map_err(|_| format!("bad n '{p}'")))
            .transpose()?)
        .ok_or_else(|| "pass the process count, e.g. `gsb complex 4 2`".to_string())?;
    let rounds = args
        .usize_value("rounds")?
        .or(args
            .positionals
            .get(1)
            .map(|p| p.parse::<usize>().map_err(|_| format!("bad r '{p}'")))
            .transpose()?)
        .ok_or_else(|| "pass the round count, e.g. `gsb complex 4 2`".to_string())?;
    if n == 0 {
        return Err("need at least one process".into());
    }
    if args.switch("orbits") {
        return complex_orbits(n, rounds, args.switch("json"));
    }
    let start = std::time::Instant::now();
    let (complex, stats) = gsb_universe::topology::protocol_complex_with_stats(n, rounds);
    let wall = start.elapsed();
    // The streamed complex carries its quotient: this is a lookup.
    let classes = complex.signature_quotient().classes.len();
    debug_assert_eq!(classes, stats.classes);
    if args.switch("json") {
        let report = Json::Obj(vec![
            ("n".into(), Json::Num(n as f64)),
            ("rounds".into(), Json::Num(rounds as f64)),
            ("facets".into(), Json::Num(stats.facets as f64)),
            ("vertices".into(), Json::Num(stats.vertices as f64)),
            ("classes".into(), Json::Num(classes as f64)),
            (
                "peak_frontier_rows".into(),
                Json::Num(stats.peak_frontier_rows as f64),
            ),
            ("chunks".into(), Json::Num(stats.chunks as f64)),
            (
                "build_ms".into(),
                Json::Num((wall.as_secs_f64() * 1e3 * 1000.0).round() / 1000.0),
            ),
        ]);
        print!("{}", report.render());
        return Ok(());
    }
    println!(
        "χ^{rounds}(Δ^{}) — the {rounds}-round IIS protocol complex on {n} processes:",
        n.saturating_sub(1)
    );
    println!("  facets:            {}", stats.facets);
    println!("  vertices:          {}", stats.vertices);
    println!("  signature classes: {classes}");
    println!("  peak frontier:     {} rows", stats.peak_frontier_rows);
    println!(
        "  built in:          {:.3} ms (streaming pipeline, quotient included)",
        wall.as_secs_f64() * 1e3
    );
    Ok(())
}

/// `gsb complex <n> <r> --orbits`: the orbit-quotient streaming
/// pipeline — stamps one representative per symmetry orbit and reports
/// the full complex's exact counts via orbit–stabilizer, fused straight
/// into a solver-ready constraint system.
fn complex_orbits(n: usize, rounds: usize, json: bool) -> Result<(), String> {
    let start = std::time::Instant::now();
    let (system, stats) = gsb_universe::topology::ConstraintSystem::streamed(n, rounds);
    let wall = start.elapsed();
    if json {
        let report = Json::Obj(vec![
            ("n".into(), Json::Num(n as f64)),
            ("rounds".into(), Json::Num(rounds as f64)),
            ("facets".into(), Json::Num(stats.facets as f64)),
            ("vertices".into(), Json::Num(stats.vertices as f64)),
            ("classes".into(), Json::Num(stats.classes as f64)),
            ("orbit_rows".into(), Json::Num(stats.orbit_rows as f64)),
            ("stamped_rows".into(), Json::Num(stats.stamped_rows as f64)),
            (
                "peak_orbit_rows".into(),
                Json::Num(stats.peak_orbit_rows as f64),
            ),
            (
                "facet_constraints".into(),
                Json::Num(system.facet_count() as f64),
            ),
            (
                "fused_prep_ms".into(),
                Json::Num((wall.as_secs_f64() * 1e3 * 1000.0).round() / 1000.0),
            ),
        ]);
        print!("{}", report.render());
        return Ok(());
    }
    println!(
        "χ^{rounds}(Δ^{}) through the orbit-quotient pipeline ({n} processes):",
        n.saturating_sub(1)
    );
    println!(
        "  facets:            {} (exact, via orbit–stabilizer)",
        stats.facets
    );
    println!("  vertices:          {}", stats.vertices);
    println!("  signature classes: {}", stats.classes);
    println!(
        "  orbit rows:        {} representatives held ({} stamped across rounds)",
        stats.orbit_rows, stats.stamped_rows
    );
    println!("  facet constraints: {} distinct", system.facet_count());
    println!(
        "  fused prep in:     {:.3} ms (solver-ready instance, no complex materialized)",
        wall.as_secs_f64() * 1e3
    );
    Ok(())
}

fn atlas(args: &Args) -> Result<(), String> {
    let max_n = args
        .usize_value("max-n")?
        .or(args
            .positionals
            .first()
            .map(|p| p.parse::<usize>().map_err(|_| format!("bad max_n '{p}'")))
            .transpose()?)
        .ok_or_else(|| "pass the largest n to sweep, e.g. `gsb atlas 9`".to_string())?;
    let mut query = Query::atlas(max_n);
    apply_governance(args, &mut query)?;
    let verdict = run_query(query)?;
    if args.switch("json") {
        print!("{}", verdict.to_json());
        return Ok(());
    }
    let rows = verdict
        .evidence
        .atlas_rows()
        .ok_or_else(|| "atlas produced unexpected evidence".to_string())?;
    if args.switch("rows") {
        println!("{:<24} {:<30} justification", "task", "verdict");
        for row in rows {
            println!(
                "{:<24} {:<30} {}",
                row.task.to_string(),
                row.solvability.to_string(),
                row.justification
            );
        }
        println!();
    }
    let mut totals: BTreeMap<String, usize> = BTreeMap::new();
    for row in rows {
        *totals.entry(row.solvability.to_string()).or_default() += 1;
    }
    println!(
        "Atlas through n = {max_n}: {} feasible tasks ({:.3} ms{})",
        rows.len(),
        verdict.stats.wall.as_secs_f64() * 1e3,
        if verdict.stats.evidence_checked {
            ", every row re-checked"
        } else {
            ""
        }
    );
    for (verdict_label, count) in totals {
        println!("  {verdict_label:<32} {count}");
    }
    Ok(())
}

/// The admission policy assembled from `gsb serve`'s flags (defaults
/// from [`AdmissionPolicy::default`]).
fn parse_policy(args: &Args) -> Result<AdmissionPolicy, String> {
    let mut policy = AdmissionPolicy::default();
    if let Some(max) = args.usize_value("max-inflight")? {
        policy.max_in_flight = max;
    }
    if let Some(rounds) = args.usize_value("max-rounds")? {
        policy.max_rounds = rounds;
    }
    if let Some(ms) = args.u64_value("deadline-cap-ms")? {
        policy.deadline_cap = std::time::Duration::from_millis(ms);
    }
    Ok(policy)
}

/// `gsb serve`: bind, print the resolved address, and block until a
/// `shutdown` request arrives on the wire.
fn serve(args: &Args) -> Result<(), String> {
    let mut compaction = CompactionPolicy::default();
    if let Some(entries) = args.u64_value("compact-after")? {
        compaction.max_log_entries = entries.max(1);
    }
    let store = match args.value("store") {
        Some(path) => VerdictStore::open_with(path, Some(compaction)).map_err(|e| e.to_string())?,
        None => VerdictStore::in_memory(),
    };
    let mut config = ServerConfig {
        policy: parse_policy(args)?,
        append_to_store: !args.switch("no-append"),
        ..ServerConfig::default()
    };
    if let Some(addr) = args.value("addr") {
        config.addr = addr.to_string();
    }
    if let Some(workers) = args.usize_value("workers")? {
        config.workers = workers;
    }
    if let Some(ms) = args.u64_value("idle-timeout-ms")? {
        config.idle_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = args.u64_value("retry-after-ms")? {
        config.retry_after_ms = Some(ms);
    }
    let entries = store.stats().entries;
    let backing = store
        .path()
        .map_or("memory only".to_string(), |p| p.display().to_string());
    let workers = config.workers;
    let handle = Server::start(config, Arc::new(store), Arc::new(EngineCache::new()))
        .map_err(|e| e.to_string())?;
    println!(
        "gsb serve listening on {} ({} workers, store: {backing}, {entries} precomputed verdicts)",
        handle.addr(),
        workers
    );
    println!("stop with `gsb shutdown --connect {}`", handle.addr());
    handle.join();
    println!("gsb serve: shut down cleanly");
    Ok(())
}

/// `gsb store build --atlas N --out PATH`: precompute the symmetric
/// universe (plus the task zoo) into a disk-backed verdict store.
/// `gsb store compact PATH`: rewrite its append log into a sorted,
/// checksummed generation file.
fn store(args: &Args) -> Result<(), String> {
    match args.positionals.first().map(String::as_str) {
        Some("build") => {}
        Some("compact") => return store_compact(args),
        _ => {
            return Err(
                "usage: gsb store build --atlas N --out PATH | gsb store compact PATH".into(),
            )
        }
    }
    let max_n = args
        .usize_value("atlas")?
        .ok_or_else(|| "--atlas N names the largest process count to precompute".to_string())?;
    let out = args
        .value("out")
        .ok_or_else(|| "--out PATH names the store file to build".to_string())?;
    let store = VerdictStore::open(out).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let added = store
        .build_atlas(max_n, EngineCache::global())
        .map_err(|e| render_error(&e))?;
    println!(
        "store {} now holds {} verdicts ({added} added, atlas through n = {max_n}, {:.3} ms)",
        out,
        store.stats().entries,
        start.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// `gsb store compact PATH`: one offline compaction pass.
fn store_compact(args: &Args) -> Result<(), String> {
    let path = args
        .positionals
        .get(1)
        .ok_or_else(|| "usage: gsb store compact PATH".to_string())?;
    let store = VerdictStore::open_with(path, None).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let report = store.compact().map_err(|e| e.to_string())?;
    println!(
        "store {} compacted into generation {} ({} entries, {} bytes, {:.3} ms)",
        path,
        report.generation,
        report.entries,
        report.bytes,
        start.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn require_connect(args: &Args) -> Result<&str, String> {
    args.value("connect")
        .ok_or_else(|| "--connect HOST:PORT names the server to talk to".to_string())
}

/// `gsb query`: run a question on a remote `gsb serve` instead of the
/// in-process engine.
fn remote_query(args: &Args) -> Result<(), String> {
    let addr = require_connect(args)?;
    let question = args.value("question").unwrap_or("classify");
    let mut query = match question {
        "classify" => Query::classify(resolve_spec(args)?),
        "solvable" | "solvable-in-rounds" => {
            Query::solvable_in_rounds(resolve_spec(args)?, args.require_usize("rounds")?)
        }
        "witness" | "no-comm-witness" => Query::no_comm_witness(resolve_spec(args)?),
        "certificate" | "certify" => {
            Query::certificate(resolve_spec(args)?, args.require_usize("rounds")?)
        }
        "atlas" => Query::atlas(args.require_usize("max-n")?),
        other => {
            return Err(format!(
                "unknown --question '{other}' (classify, solvable, witness, certificate, atlas)"
            ))
        }
    };
    apply_governance(args, &mut query)?;
    let retries = args.u64_value("retries")?.unwrap_or(0);
    let (served, retried) = if retries > 0 {
        let policy = RetryPolicy {
            max_attempts: retries + 1,
            ..RetryPolicy::default()
        };
        let mut client = SelfHealingClient::new(addr, policy);
        let served = client.query(&query).map_err(|e| e.to_string())?;
        (served, client.retries())
    } else {
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        (client.query(&query).map_err(|e| e.to_string())?, 0)
    };
    let Served { verdict, served_by } = served;
    if !args.switch("json") {
        println!(
            "served by the {} at {addr}{}",
            match served_by {
                ServedBy::Store => "verdict store",
                ServedBy::Engine => "engine",
            },
            if retried > 0 {
                format!(" after {retried} retries")
            } else {
                String::new()
            }
        );
    }
    emit(&verdict, args.switch("json"));
    Ok(())
}

/// `gsb reload`: hot-swap the served verdict store without a restart.
fn reload(args: &Args) -> Result<(), String> {
    let addr = require_connect(args)?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let (entries, generation) = client
        .reload(args.value("store"))
        .map_err(|e| e.to_string())?;
    println!("reloaded: {entries} verdicts, generation {generation}, served from {addr}");
    Ok(())
}

/// `gsb ping`: readiness probe, retrying until `--wait-ms` elapses.
fn ping(args: &Args) -> Result<(), String> {
    let addr = require_connect(args)?;
    let wait = std::time::Duration::from_millis(args.u64_value("wait-ms")?.unwrap_or(0));
    let mut client = Client::connect_retry(addr, wait).map_err(|e| e.to_string())?;
    let protocol = client.ping().map_err(|e| e.to_string())?;
    println!("pong from {addr} (protocol {protocol})");
    Ok(())
}

/// `gsb metrics`: the server's counters — raw JSON or a summary.
fn metrics(args: &Args) -> Result<(), String> {
    let addr = require_connect(args)?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let payload = client.metrics().map_err(|e| e.to_string())?;
    if args.switch("json") {
        print!("{}", payload.render());
        return Ok(());
    }
    let num = |path: &[&str]| -> f64 {
        let mut cursor = &payload;
        for key in path {
            match cursor.get(key) {
                Some(next) => cursor = next,
                None => return f64::NAN,
            }
        }
        cursor.as_f64().unwrap_or(f64::NAN)
    };
    println!("gsb serve metrics from {addr}:");
    println!(
        "  served:    {} from store, {} from engine",
        num(&["server", "served_store"]),
        num(&["server", "served_engine"])
    );
    println!(
        "  pressure:  {} in flight, {} shed, {} rejected, {} errors",
        num(&["server", "in_flight"]),
        num(&["server", "shed"]),
        num(&["server", "rejected"]),
        num(&["server", "errors"])
    );
    println!(
        "  store:     {} entries ({} hits / {} misses, {} appended)",
        num(&["store", "entries"]),
        num(&["store", "hits"]),
        num(&["store", "misses"]),
        num(&["store", "appended"])
    );
    println!(
        "  cache:     {} hits / {} misses",
        num(&["cache", "hits"]),
        num(&["cache", "misses"])
    );
    for question in ["classify", "solvable-in-rounds", "no-comm-witness"] {
        let count = num(&["server", "latency", question, "count"]);
        if count > 0.0 {
            println!(
                "  {question:<18} n={count} p50≤{}µs p95≤{}µs p99≤{}µs",
                num(&["server", "latency", question, "p50_us"]),
                num(&["server", "latency", question, "p95_us"]),
                num(&["server", "latency", question, "p99_us"]),
            );
        }
    }
    Ok(())
}

/// `gsb shutdown`: ask a remote server to wind down gracefully.
fn shutdown(args: &Args) -> Result<(), String> {
    let addr = require_connect(args)?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    client.shutdown().map_err(|e| e.to_string())?;
    println!("{addr} is shutting down");
    Ok(())
}

/// `gsb cache-stats`: one-shot [`CacheStats`](gsb_universe::CacheStats)
/// printout — the process-global cache (optionally warmed with a small
/// classification sweep), or a remote server's cache via `--connect`.
fn cache_stats(args: &Args) -> Result<(), String> {
    let stats_json = if let Some(addr) = args.value("connect") {
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        let payload = client.metrics().map_err(|e| e.to_string())?;
        payload
            .get("cache")
            .ok_or_else(|| "metrics payload carries no cache block".to_string())?
            .clone()
    } else {
        let cache = EngineCache::global();
        if let Some(max_n) = args.usize_value("warm")? {
            let mut batch = gsb_universe::Batch::new();
            for n in 1..=max_n {
                for m in 1..=n {
                    let Ok(family) = gsb_universe::core::order::feasible_family(n, m) else {
                        continue;
                    };
                    for task in family {
                        batch.push(Query::classify(task.to_spec()));
                    }
                }
            }
            for outcome in batch.run_with(cache) {
                outcome.map_err(|e| render_error(&e))?;
            }
        }
        cache.stats().to_json_value()
    };
    if args.switch("json") {
        print!("{}", stats_json.render());
        return Ok(());
    }
    let num = |key: &str| {
        stats_json
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    println!("engine cache:");
    println!(
        "  lookups:  {} hits / {} misses",
        num("hits"),
        num("misses")
    );
    println!(
        "  entries:  {} classifications, {} witnesses, {} searches",
        num("classifications"),
        num("witnesses"),
        num("searches")
    );
    println!(
        "  topology: {} complexes, {} systems, {} frontiers ({} incremental extensions)",
        num("complexes"),
        num("systems"),
        num("frontiers"),
        num("extensions")
    );
    Ok(())
}
