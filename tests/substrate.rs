//! E9 integration: the shared-memory substrate through the façade crate —
//! AADGMS snapshot linearizability, immediate-snapshot properties, and
//! scheduler/crash machinery, exercised together.

use gsb_universe::core::Identity;
use gsb_universe::memory::snapshot::{check_embedded_scan_linearizability, SnapshotStressProtocol};
use gsb_universe::memory::{
    build_executor, AdversarialScheduler, CrashPlan, Executor, IsProtocol, Pid, Protocol,
    RoundRobinScheduler, SeededScheduler, Word,
};

fn stress_executor(n: usize, rounds: usize) -> Executor {
    let protocols = (0..n)
        .map(|i| {
            Box::new(SnapshotStressProtocol::new(i as Word + 1, n, rounds)) as Box<dyn Protocol>
        })
        .collect();
    Executor::new(protocols, vec![])
}

#[test]
fn aadgms_linearizable_across_schedulers_and_crashes() {
    for n in [2usize, 3, 5] {
        for seed in 0..10u64 {
            let mut exec = stress_executor(n, 2);
            let plan = if seed % 2 == 0 {
                CrashPlan::none(n)
            } else {
                CrashPlan::with_crashes(n, &[(Pid::new(seed as usize % n), 7)])
            };
            let outcome = exec
                .run(&mut SeededScheduler::new(seed), &plan, 1_000_000)
                .unwrap();
            check_embedded_scan_linearizability(&outcome.history, exec.registers(), n)
                .unwrap_or_else(|e| panic!("n={n} seed={seed}: {e}"));
        }
        let mut exec = stress_executor(n, 2);
        let outcome = exec
            .run(
                &mut AdversarialScheduler::new(99, 16),
                &CrashPlan::none(n),
                1_000_000,
            )
            .unwrap();
        check_embedded_scan_linearizability(&outcome.history, exec.registers(), n).unwrap();
        assert!(outcome.is_complete());
    }
}

#[test]
fn immediate_snapshot_view_sizes_form_valid_level_assignments() {
    for seed in 0..25u64 {
        let n = 5;
        let protocols = (0..n)
            .map(|i| Box::new(IsProtocol::new(i as Word + 1, n)) as Box<dyn Protocol>)
            .collect();
        let mut exec = Executor::new(protocols, vec![]);
        let outcome = exec
            .run(
                &mut SeededScheduler::new(seed),
                &CrashPlan::none(n),
                100_000,
            )
            .unwrap();
        // The protocol decides its view size; sizes sorted ascending must
        // dominate their index (IS level structure).
        let mut sizes: Vec<usize> = outcome.decided_values();
        sizes.sort_unstable();
        for (i, &s) in sizes.iter().enumerate() {
            assert!(s > i, "seed {seed}: sizes {sizes:?}");
            assert!(s <= n, "seed {seed}: sizes {sizes:?}");
        }
    }
}

#[test]
fn run_histories_replay_deterministically() {
    // A recorded schedule, replayed via FixedScheduler, reproduces the
    // run exactly (the property the hygiene replays build on).
    use gsb_universe::memory::FixedScheduler;
    let ids: Vec<Identity> = [9u32, 4, 7]
        .iter()
        .map(|&v| Identity::new(v).unwrap())
        .collect();
    let factory: Box<gsb_universe::memory::ProtocolFactory<'static>> =
        Box::new(|_pid, id, n| Box::new(gsb_universe::algorithms::IsRenamingProtocol::new(id, n)));
    let mut original = build_executor(&factory, &ids, vec![]);
    let outcome = original
        .run(&mut SeededScheduler::new(5), &CrashPlan::none(3), 100_000)
        .unwrap();
    let schedule = outcome.history.schedule();
    let mut replay = build_executor(&factory, &ids, vec![]);
    let replayed = replay
        .run(
            &mut FixedScheduler::new(schedule),
            &CrashPlan::none(3),
            100_000,
        )
        .unwrap();
    assert_eq!(outcome.decisions, replayed.decisions);
    assert_eq!(outcome.steps, replayed.steps);
}

#[test]
fn crash_plans_respect_t_resilience_budgets() {
    // With t = n − 1 crashes the lone survivor still decides (wait-free
    // termination), for a register-only protocol.
    let n = 4;
    let factory: Box<gsb_universe::memory::ProtocolFactory<'static>> =
        Box::new(|_pid, id, _n| Box::new(gsb_universe::algorithms::RenamingProtocol::new(id)));
    let ids: Vec<Identity> = (1..=n as u32).map(|v| Identity::new(v).unwrap()).collect();
    for survivor in 0..n {
        let mut exec = build_executor(&factory, &ids, vec![]);
        let crashes: Vec<(Pid, usize)> = (0..n)
            .filter(|&i| i != survivor)
            .map(|i| (Pid::new(i), 1)) // everyone else takes one step, then dies
            .collect();
        let plan = CrashPlan::with_crashes(n, &crashes);
        assert_eq!(plan.crash_count(), n - 1);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &plan, 100_000)
            .unwrap();
        assert!(
            outcome.decisions[survivor].is_some(),
            "survivor p{} must decide wait-free",
            survivor + 1
        );
    }
}

#[test]
fn trace_rendering_covers_all_event_kinds() {
    use gsb_universe::memory::{render_history, render_outcome};
    let mut exec = stress_executor(2, 1);
    let outcome = exec
        .run(
            &mut RoundRobinScheduler::new(),
            &CrashPlan::none(2),
            100_000,
        )
        .unwrap();
    let text = render_history(&outcome.history);
    assert!(text.contains("read A["));
    assert!(text.contains("write"));
    assert!(text.contains("decide"));
    let summary = render_outcome(&outcome);
    assert!(summary.contains("steps total"));
}
