//! E7 integration: the topological solvability checker vs. the paper's
//! computability results, end-to-end through the façade crate.
//!
//! Round bounds per instance are recorded in EXPERIMENTS.md (E7): UNSAT
//! results certify "no comparison-based IIS protocol with ≤ r rounds";
//! the corresponding unbounded impossibilities are the paper's Theorems
//! 10–11 (whose proofs the checker's machinery mirrors at small n).

use gsb_universe::core::{GsbSpec, Solvability, SymmetricGsb};
use gsb_universe::topology::{ordered_bell, protocol_complex};
use gsb_universe::Query;

/// Engine-path shorthand: every round-bounded question in this suite
/// goes end-to-end through the façade's `Query` API (global cache,
/// evidence re-checking included); SAT answers are exactly the verdicts
/// carrying a replayable decision map.
fn solvable_in_rounds(spec: &GsbSpec, rounds: usize) -> bool {
    let verdict = Query::solvable_in_rounds(spec.clone(), rounds)
        .run()
        .expect("engine answers round-bounded queries");
    verdict.evidence.decision_map().is_some()
}

#[test]
fn election_impossible_small_n() {
    // Theorem 11 at n = 2 (rounds ≤ 3) and n = 3 (rounds ≤ 2).
    let e2 = GsbSpec::election(2).unwrap();
    for r in 0..=3 {
        assert!(!solvable_in_rounds(&e2, r), "n=2 r={r}");
    }
    let e3 = GsbSpec::election(3).unwrap();
    for r in 0..=2 {
        assert!(!solvable_in_rounds(&e3, r), "n=3 r={r}");
    }
}

#[test]
fn perfect_renaming_impossible_small_n() {
    // Corollary 5 at n = 2: ⟨2,2,1,1⟩ (= 2-renaming = WSB on 2).
    let pr = SymmetricGsb::perfect_renaming(2).unwrap().to_spec();
    for r in 0..=3 {
        assert!(!solvable_in_rounds(&pr, r), "r={r}");
    }
    // And n = 3 through two rounds (r = 2 was out of reach for the
    // seed's backtracking; the CDCL engine certifies it in
    // milliseconds).
    let pr3 = SymmetricGsb::perfect_renaming(3).unwrap().to_spec();
    for r in 0..=2 {
        assert!(!solvable_in_rounds(&pr3, r), "n=3 r={r}");
    }
}

#[test]
fn checker_agrees_with_classifier_on_solvable_cases() {
    // Wherever the search finds a map, the closed-form classifier must
    // not say "not wait-free solvable" (soundness cross-check).
    let cases = [
        SymmetricGsb::renaming(2, 3).unwrap(),
        SymmetricGsb::renaming(3, 6).unwrap(),
        SymmetricGsb::new(3, 2, 0, 3).unwrap(),
        SymmetricGsb::new(3, 3, 0, 2).unwrap(),
    ];
    for task in cases {
        let spec = task.to_spec();
        let sat = (0..=2).any(|r| solvable_in_rounds(&spec, r));
        if sat {
            assert_ne!(
                task.classify().solvability,
                Solvability::NotWaitFreeSolvable,
                "checker found a map for {task} but the classifier forbids it"
            );
        }
    }
}

#[test]
fn classifier_impossibilities_confirmed_by_checker() {
    // Wherever the classifier says "not wait-free solvable" (for n ≤ 3),
    // the search must fail at every checked round count.
    for n in 2..=3usize {
        for m in 1..=(2 * n - 1) {
            for l in 0..=n {
                for u in l..=n {
                    let Ok(task) = SymmetricGsb::new(n, m, l, u) else {
                        continue;
                    };
                    if task.classify().solvability == Solvability::NotWaitFreeSolvable {
                        // r = 2 at n = 3 became checkable with the CDCL
                        // engine (the seed capped this sweep at r ≤ 1).
                        let spec = task.to_spec();
                        let max_r = 2;
                        for r in 0..=max_r {
                            assert!(
                                !solvable_in_rounds(&spec, r),
                                "{task}: classifier says impossible but search \
                                 found a map at r = {r}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn no_communication_tasks_need_no_rounds_when_constant() {
    // Comparison-based round-0 protocols are exactly constant maps; a
    // task is 0-round solvable iff some value can absorb everyone.
    for n in 2..=3usize {
        for m in 1..=4 {
            for u in 1..=n {
                let Ok(task) = SymmetricGsb::new(n, m, 0, u) else {
                    continue;
                };
                if !task.is_feasible() {
                    continue;
                }
                let expected = u >= n; // one value takes all n decisions
                assert_eq!(solvable_in_rounds(&task.to_spec(), 0), expected, "{task}");
            }
        }
    }
}

#[test]
fn protocol_complex_structure() {
    // The structural facts Theorem 11's proof uses, at checkable sizes.
    for (n, r) in [(2usize, 1usize), (2, 2), (3, 1), (3, 2), (4, 1)] {
        let complex = protocol_complex(n, r);
        assert!(complex.is_pseudomanifold(), "n={n} r={r}");
        assert!(complex.is_strongly_connected(), "n={n} r={r}");
    }
    // One-round facet counts are ordered Bell numbers.
    for n in 1..=4 {
        assert_eq!(protocol_complex(n, 1).facet_count(), ordered_bell(n));
    }
}

#[test]
fn election_vs_wsb_strictness_at_n3() {
    // Election solves WSB (output containment) but is itself impossible:
    // the strictness statement of Section 5.3, witnessed computationally.
    let election = GsbSpec::election(3).unwrap();
    let wsb = SymmetricGsb::wsb(3).unwrap().to_spec();
    for o in election.legal_outputs() {
        assert!(wsb.is_legal_output(&o));
    }
    assert!(!solvable_in_rounds(&election, 1));
    // (WSB at n = 3 is also impossible — 3 is prime — whereas at n = 6
    // it is solvable but election is not: the classifier records that
    // separation; the search now scales to n = 4 at r = 2 — see
    // crates/topology/tests/search_frontier.rs.)
    assert_eq!(
        SymmetricGsb::wsb(6).unwrap().classify().solvability,
        Solvability::WaitFreeSolvable
    );
    assert_eq!(
        GsbSpec::election(6).unwrap().classify().solvability,
        Solvability::NotWaitFreeSolvable
    );
}
