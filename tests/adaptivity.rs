//! Integration: the adaptive / non-adaptive distinction of Section 1.
//!
//! "The classic test-and-set task looks similar to the election GSB task:
//! in both cases exactly one process outputs 1. But test-and-set is
//! adaptive: in every execution, even if less than n processes
//! participate, at least one process outputs 1. That is, election GSB is
//! a non-adaptive form of test-and-set."
//!
//! These tests make the distinction executable: under partial
//! participation, a test&set-based leader always exists among the
//! participants, whereas a perfect-renaming-based election can leave the
//! participants leaderless (their "leader" is a non-participant) — which
//! is *allowed* by the GSB specification, because GSB tasks constrain
//! only full output vectors.

use gsb_universe::algorithms::{ElectionFromPerfectRenaming, ElectionFromTestAndSet};
use gsb_universe::core::{GsbSpec, Identity, SymmetricGsb};
use gsb_universe::memory::{
    build_executor, CrashPlan, GsbOracle, Oracle, OraclePolicy, Pid, ProtocolFactory,
    RoundRobinScheduler, TestAndSetOracle,
};

fn ids(n: usize) -> Vec<Identity> {
    (1..=n as u32).map(|v| Identity::new(v).unwrap()).collect()
}

/// Runs `factory` with only the first `p` processes participating;
/// returns the participants' decisions.
fn run_with_participants(
    factory: &ProtocolFactory<'_>,
    oracles: Vec<Box<dyn Oracle>>,
    n: usize,
    p: usize,
) -> Vec<usize> {
    let mut exec = build_executor(factory, &ids(n), oracles);
    let crashes: Vec<(Pid, usize)> = (p..n).map(|i| (Pid::new(i), 0usize)).collect();
    let plan = CrashPlan::with_crashes(n, &crashes);
    let outcome = exec
        .run(&mut RoundRobinScheduler::new(), &plan, 10_000)
        .unwrap();
    outcome.decided_values()
}

#[test]
fn test_and_set_always_elects_among_participants() {
    // Adaptivity: for every participation level, some participant wins.
    let n = 5;
    for p in 1..=n {
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, _id, _n| Box::new(ElectionFromTestAndSet::new()));
        let decisions =
            run_with_participants(&factory, vec![Box::new(TestAndSetOracle::new())], n, p);
        assert_eq!(decisions.len(), p);
        assert_eq!(
            decisions.iter().filter(|&&d| d == 1).count(),
            1,
            "test&set must crown exactly one participating leader (p = {p})"
        );
    }
}

#[test]
fn perfect_renaming_election_can_leave_participants_leaderless() {
    // Non-adaptivity: with the LastFit perfect-renaming oracle, a lone
    // participant receives name n ≠ 1 and decides 2 — no leader among
    // participants. The run still satisfies election *as a GSB task*
    // (the decided prefix extends to a legal full vector where the name-1
    // holder is a crashed process).
    let n = 4;
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, _id, _n| Box::new(ElectionFromPerfectRenaming::new()));
    let pr = SymmetricGsb::perfect_renaming(n).unwrap().to_spec();
    let oracle: Vec<Box<dyn Oracle>> =
        vec![Box::new(GsbOracle::new(pr, OraclePolicy::LastFit).unwrap())];
    let decisions = run_with_participants(&factory, oracle, n, 1);
    assert_eq!(decisions, vec![2], "the lone participant is not the leader");
    // And yet the partial run is legal for the election GSB task.
    let election = GsbSpec::election(n).unwrap();
    let partial = vec![Some(2), None, None, None];
    assert!(gsb_universe::memory::partial_decisions_completable(
        &election, &partial
    ));
}

#[test]
fn full_participation_erases_the_difference() {
    // With all n processes running, both routes elect exactly one leader.
    let n = 4;
    let election = GsbSpec::election(n).unwrap();
    let tas_factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, _id, _n| Box::new(ElectionFromTestAndSet::new()));
    let tas = run_with_participants(&tas_factory, vec![Box::new(TestAndSetOracle::new())], n, n);
    let pr_factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, _id, _n| Box::new(ElectionFromPerfectRenaming::new()));
    let pr_spec = SymmetricGsb::perfect_renaming(n).unwrap().to_spec();
    let pr = run_with_participants(
        &pr_factory,
        vec![Box::new(
            GsbOracle::new(pr_spec, OraclePolicy::LastFit).unwrap(),
        )],
        n,
        n,
    );
    for (label, decisions) in [("test&set", tas), ("perfect renaming", pr)] {
        let out = gsb_universe::core::OutputVector::new(decisions);
        assert!(election.is_legal_output(&out), "{label}: {out}");
    }
}
