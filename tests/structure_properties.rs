//! E8 integration: property-based tests of the structure theory
//! (Sections 3–4) — the paper's lemmas and theorems as proptest
//! invariants over randomly drawn parameters.

use proptest::prelude::*;

use gsb_universe::core::{CountingVector, GsbSpec, KernelVector, SymmetricGsb};

/// Strategy: a well-formed symmetric task with n ∈ [1..10].
fn any_task() -> impl Strategy<Value = SymmetricGsb> {
    (1usize..=10)
        .prop_flat_map(|n| (Just(n), 1usize..=n))
        .prop_flat_map(|(n, m)| (Just(n), Just(m), 0usize..=n))
        .prop_flat_map(|(n, m, l)| (Just(n), Just(m), Just(l), l..=n))
        .prop_map(|(n, m, l, u)| SymmetricGsb::new(n, m, l, u).expect("well-formed"))
}

/// Strategy: a feasible symmetric task.
fn feasible_task() -> impl Strategy<Value = SymmetricGsb> {
    any_task().prop_filter("feasible", SymmetricGsb::is_feasible)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn lemma_2_feasibility_matches_kernel_nonemptiness(t in any_task()) {
        prop_assert_eq!(t.is_feasible(), !t.kernel_set().is_empty());
    }

    #[test]
    fn lemma_3_kernel_sets_strictly_descending(t in feasible_task()) {
        let ks = t.kernel_set();
        let v: Vec<KernelVector> = ks.iter().cloned().collect();
        for w in v.windows(2) {
            prop_assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn kernel_vectors_sum_to_n_with_m_parts(t in feasible_task()) {
        for k in t.kernel_set().iter() {
            prop_assert_eq!(k.total(), t.n());
            prop_assert_eq!(k.m(), t.m());
            prop_assert!(k.max_part() <= t.u());
            prop_assert!(k.min_part() >= t.l());
        }
    }

    #[test]
    fn balanced_kernel_always_present(t in feasible_task()) {
        prop_assert!(t.kernel_set().contains(&t.balanced_kernel()));
    }

    #[test]
    fn theorem_3_closed_form(t in feasible_task()) {
        prop_assert_eq!(
            t.is_l_anchored().unwrap(),
            t.is_l_anchored_closed_form().unwrap()
        );
    }

    #[test]
    fn theorem_4_closed_form(t in feasible_task()) {
        prop_assert_eq!(
            t.is_u_anchored().unwrap(),
            t.is_u_anchored_closed_form().unwrap()
        );
    }

    #[test]
    fn theorem_7_canonical_is_idempotent_synonym(t in feasible_task()) {
        let c = t.canonical().unwrap();
        prop_assert!(t.is_synonym_of(&c));
        prop_assert_eq!(c.canonical().unwrap(), c);
        // Bounds move inward: ℓ ≤ ℓ' and u' ≤ u.
        prop_assert!(t.l() <= c.l());
        prop_assert!(c.u() <= t.u());
    }

    #[test]
    fn theorem_5_hardest_is_subtask_of_everything(t in feasible_task()) {
        let hardest = SymmetricGsb::hardest(t.n(), t.m()).unwrap();
        prop_assert!(hardest.is_subtask_of(&t));
    }

    #[test]
    fn lemmas_4_and_5_monotonicity(t in feasible_task()) {
        if t.u() < t.n() {
            let wider = t.with_u(t.u() + 1).unwrap();
            prop_assert!(t.is_subtask_of(&wider));
        }
        if t.l() > 0 {
            let wider = t.with_l(t.l() - 1).unwrap();
            prop_assert!(t.is_subtask_of(&wider));
        }
    }

    #[test]
    fn synonymy_is_an_equivalence_compatible_with_canonical(
        a in feasible_task(),
        b in feasible_task(),
    ) {
        if a.n() == b.n() && a.m() == b.m() && a.is_synonym_of(&b) {
            prop_assert_eq!(a.canonical().unwrap(), b.canonical().unwrap());
        }
    }

    #[test]
    fn counting_vectors_of_legal_outputs_are_kernel_members(t in feasible_task()) {
        // Keep enumeration small.
        if t.n() <= 6 {
            let ks = t.kernel_set();
            for o in t.to_spec().legal_outputs() {
                let kernel = CountingVector::of_output(&o, t.m()).to_kernel();
                prop_assert!(ks.contains(&kernel));
            }
        }
    }

    #[test]
    fn theorem_9_witness_is_complete_and_legal(t in feasible_task()) {
        if let Some(w) = t.no_communication_witness() {
            prop_assert_eq!(w.len(), 2 * t.n() - 1);
            prop_assert!(w.iter().all(|&v| (1..=t.m()).contains(&v)));
            if t.n() <= 5 {
                prop_assert!(t.to_spec().map_beats_all_subsets(&w));
            }
        }
    }

    #[test]
    fn universal_mod_rule_yields_balanced_kernel(t in feasible_task()) {
        // Theorem 8's symmetric rule lands exactly on the balanced kernel.
        let mut counts = vec![0usize; t.m()];
        for name in 1..=t.n() {
            counts[(name - 1) % t.m()] += 1;
        }
        let kernel = KernelVector::from_counts(counts);
        prop_assert_eq!(kernel, t.balanced_kernel());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn asymmetric_feasibility_lemma_1(
        n in 1usize..=8,
        bounds in proptest::collection::vec((0usize..=8, 0usize..=8), 1..=4),
    ) {
        let lower: Vec<usize> = bounds.iter().map(|&(a, b)| a.min(b).min(n)).collect();
        let upper: Vec<usize> = bounds.iter().map(|&(a, b)| a.max(b).min(n)).collect();
        let spec = GsbSpec::new(n, lower.clone(), upper.clone()).unwrap();
        let lo: usize = lower.iter().sum();
        let hi: usize = upper.iter().sum();
        prop_assert_eq!(spec.is_feasible(), lo <= n && n <= hi);
        if spec.is_feasible() && n <= 5 {
            let outputs = spec.legal_outputs();
            prop_assert!(!outputs.is_empty());
            let first = spec.first_legal_output();
            prop_assert_eq!(first.as_ref(), outputs.first());
        }
    }

    #[test]
    fn partial_completability_respects_extensions(
        n in 2usize..=6,
        seed in 0u64..1000,
    ) {
        // Randomly decide a prefix of a legal output; it must be
        // completable; the full output must be legal.
        use gsb_universe::memory::partial_decisions_completable;
        let t = SymmetricGsb::wsb(n).unwrap().to_spec();
        let outputs = t.legal_outputs();
        let output = &outputs[(seed as usize) % outputs.len()];
        let cut = (seed as usize / 7) % (n + 1);
        let partial: Vec<Option<usize>> = output
            .values()
            .iter()
            .enumerate()
            .map(|(i, &v)| if i < cut { Some(v) } else { None })
            .collect();
        prop_assert!(partial_decisions_completable(&t, &partial));
    }
}
