//! The query→verdict engine end-to-end through the façade: one typed
//! entry point, machine-checkable evidence, batched execution, unified
//! errors, JSON round trips.

use gsb_universe::core::{GsbSpec, Solvability, SymmetricGsb};
use gsb_universe::{named_task, Batch, EngineCache, Error, Evidence, Query, Verdict};

#[test]
fn one_entry_point_answers_all_four_surfaces() {
    let cache = EngineCache::new();
    // Classifier surface.
    let wsb6 = SymmetricGsb::wsb(6).unwrap().to_spec();
    let classify = Query::classify(wsb6.clone()).run_with(&cache).unwrap();
    assert_eq!(classify.solvability, Some(Solvability::WaitFreeSolvable));
    assert!(matches!(classify.evidence, Evidence::Kernel { .. }));
    // Topology surface: SAT carries a replayable map.
    let renaming = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
    let sat = Query::solvable_in_rounds(renaming.clone(), 1)
        .run_with(&cache)
        .unwrap();
    let map = sat.evidence.decision_map().expect("SAT witness");
    map.check(&renaming).expect("facet-by-facet replay");
    // Theorem 9 surface: witness brute-force verified.
    let loose = SymmetricGsb::loose_renaming(4).unwrap().to_spec();
    let witness = Query::no_comm_witness(loose).run_with(&cache).unwrap();
    assert_eq!(witness.evidence.witness().map(<[usize]>::len), Some(7));
    // Certificate surface: election gets the structural certificate.
    let election = GsbSpec::election(4).unwrap();
    let certificate = Query::certificate(election, 1).run_with(&cache).unwrap();
    assert!(matches!(
        certificate.evidence,
        Evidence::ElectionCertificate { rounds: 1, .. }
    ));
    assert_eq!(
        certificate.solvability,
        Some(Solvability::NotWaitFreeSolvable)
    );
}

#[test]
fn every_sat_verdict_recheck_is_on_by_default() {
    // `check_evidence` defaults to true: the verdict arrives already
    // re-verified, and `Verdict::check` can be repeated at will.
    let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
    let verdict = Query::solvable_in_rounds(spec, 1).run().unwrap();
    assert!(verdict.stats.evidence_checked);
    verdict.check().unwrap();
}

#[test]
fn batch_fans_out_with_one_shared_cache() {
    let cache = EngineCache::new();
    let batch: Batch = gsb_universe::core::zoo::catalog(4)
        .unwrap()
        .into_iter()
        .map(|entry| Query::classify(entry.spec))
        .collect();
    let verdicts = batch.run_with(&cache);
    assert!(verdicts.iter().all(Result::is_ok));
    // The zoo repeats synonym specs across entries rarely, but the atlas
    // over the same cache definitely re-enters them.
    let atlas = Query::atlas(4).run_with(&cache).unwrap();
    assert!(atlas.solvability.is_none());
    let rows = atlas.evidence.atlas_rows().unwrap();
    assert!(rows.len() > 20);
    assert!(cache.stats().hits > 0);
}

#[test]
fn json_reports_round_trip_and_recheck() {
    let spec = SymmetricGsb::wsb(3).unwrap().to_spec();
    let verdict = Query::solvable_in_rounds(spec, 1).run().unwrap();
    let parsed = Verdict::from_json(&verdict.to_json()).unwrap();
    assert_eq!(parsed.evidence, verdict.evidence);
    assert_eq!(parsed.provenance, verdict.provenance);
    parsed.check().unwrap();
}

#[test]
fn unified_error_wraps_the_subsystem_crates() {
    // Core constructor errors arrive as Error::Core through the façade.
    assert!(matches!(
        named_task("election", 1, None),
        Err(Error::Core(_))
    ));
    // Engine-level errors keep their own variants.
    assert!(matches!(
        Query::atlas(1).run(),
        Err(Error::Unsupported { .. })
    ));
    let missing = Query::atlas(0).run().unwrap_err();
    assert!(!missing.to_string().is_empty());
}

#[test]
fn deprecated_free_function_still_routes() {
    // The old topology entry point still works (deprecated), and agrees
    // with the engine path.
    #[allow(deprecated)]
    let old = gsb_universe::topology::solvable_in_rounds(
        &SymmetricGsb::renaming(2, 3).unwrap().to_spec(),
        1,
    );
    let new = Query::solvable_in_rounds(SymmetricGsb::renaming(2, 3).unwrap().to_spec(), 1)
        .run()
        .unwrap();
    assert_eq!(old.is_solvable(), new.evidence.decision_map().is_some());
}
