//! E3/E10 integration: Theorem 12 end-to-end — the Figure 2 algorithm
//! solves `(n+1)`-renaming from an `(n−1)`-slot object — plus the
//! WSB/2-slot/(2n−2)-renaming endpoints of the paper's §6 discussion.

use gsb_universe::algorithms::harness::{
    check_hygiene, sweep_adversarial, sweep_exhaustive, sweep_random, AlgorithmUnderTest,
};
use gsb_universe::algorithms::{SlotRenamingProtocol, WsbFromRenamingProtocol};
use gsb_universe::core::{Identity, SymmetricGsb};
use gsb_universe::memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};

fn ids(values: &[u32]) -> Vec<Identity> {
    values.iter().map(|&v| Identity::new(v).unwrap()).collect()
}

fn slot_oracles(n: usize, k: usize, policy: OraclePolicy) -> Vec<Box<dyn Oracle>> {
    let spec = SymmetricGsb::slot(n, k).unwrap().to_spec();
    vec![Box::new(GsbOracle::new(spec, policy).unwrap())]
}

#[test]
fn theorem_12_full_validation_matrix() {
    // n × policy × scheduler sweeps, every outcome checked against
    // ⟨n, n+1, 0, 1⟩-GSB.
    for n in [2usize, 3, 4, 5, 7, 9] {
        let spec = SymmetricGsb::renaming(n, n + 1).unwrap().to_spec();
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)));
        for policy in [
            OraclePolicy::FirstFit,
            OraclePolicy::LastFit,
            OraclePolicy::Seeded(n as u64),
        ] {
            let oracles = move || slot_oracles(n, n - 1, policy);
            let algo = AlgorithmUnderTest {
                spec: spec.clone(),
                factory: &factory,
                oracles: &oracles,
            };
            sweep_random(&algo, (2 * n - 1) as u32, 50, 61)
                .unwrap_or_else(|e| panic!("n={n} {policy:?} random: {e}"));
            sweep_adversarial(&algo, (2 * n - 1) as u32, 50, 67)
                .unwrap_or_else(|e| panic!("n={n} {policy:?} adversarial: {e}"));
        }
    }
}

#[test]
fn theorem_12_exhaustive_n3_all_id_orders() {
    // Every schedule × every identity order type, n = 3.
    let n = 3;
    let spec = SymmetricGsb::renaming(n, n + 1).unwrap().to_spec();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)));
    let oracles = || slot_oracles(3, 2, OraclePolicy::FirstFit);
    let algo = AlgorithmUnderTest {
        spec,
        factory: &factory,
        oracles: &oracles,
    };
    for assignment in [
        [1u32, 2, 3],
        [1, 3, 2],
        [2, 1, 3],
        [2, 3, 1],
        [3, 1, 2],
        [3, 2, 1],
    ] {
        sweep_exhaustive(&algo, &ids(&assignment), 100_000)
            .unwrap_or_else(|e| panic!("ids {assignment:?}: {e}"));
    }
}

#[test]
fn theorem_12_hygiene() {
    // Figure 2 is index-independent and comparison-based (Section 2.2).
    let spec = SymmetricGsb::renaming(4, 5).unwrap().to_spec();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)));
    let oracles = || slot_oracles(4, 3, OraclePolicy::FirstFit);
    let algo = AlgorithmUnderTest {
        spec,
        factory: &factory,
        oracles: &oracles,
    };
    check_hygiene(&algo, &ids(&[6, 2, 7, 4]), &ids(&[5, 1, 7, 3]), 71).unwrap();
}

#[test]
fn k_slot_endpoint_k2_gives_wsb() {
    // §6: "the (2n−2)-renaming task and the 2-slot task are equivalent".
    // Synonym half: 2-slot IS WSB.
    for n in 2..=8 {
        assert!(SymmetricGsb::slot(n, 2)
            .unwrap()
            .is_synonym_of(&SymmetricGsb::wsb(n).unwrap()));
    }
    // Reduction half we implement: (2n−2)-renaming object → WSB.
    let n = 5;
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(|_pid, _id, n| Box::new(WsbFromRenamingProtocol::new(n).unwrap()));
    let oracles = move || -> Vec<Box<dyn Oracle>> {
        let renaming = SymmetricGsb::renaming(n, 2 * n - 2).unwrap().to_spec();
        vec![Box::new(
            GsbOracle::new(renaming, OraclePolicy::Seeded(3)).unwrap(),
        )]
    };
    let algo = AlgorithmUnderTest {
        spec: SymmetricGsb::wsb(n).unwrap().to_spec(),
        factory: &factory,
        oracles: &oracles,
    };
    sweep_random(&algo, (2 * n - 1) as u32, 60, 73).unwrap();
}

#[test]
fn slot_oracle_vs_spec_containment() {
    // The (n−1)-slot object's replies always form a legal ⟨n,n−1,1,n⟩
    // output — including under the adversarial policy — which is what
    // Theorem 12's proof relies on ("exactly one duplicated slot").
    use gsb_universe::core::OutputVector;
    for seed in 0..40u64 {
        let n = 6;
        let spec = SymmetricGsb::slot(n, n - 1).unwrap().to_spec();
        let mut oracle = GsbOracle::new(spec.clone(), OraclePolicy::Seeded(seed)).unwrap();
        let replies: Vec<usize> = (0..n)
            .map(|i| oracle.invoke(gsb_universe::memory::Pid::new(i), 0).unwrap() as usize)
            .collect();
        let out = OutputVector::new(replies.clone());
        assert!(spec.is_legal_output(&out), "seed {seed}: {out}");
        // Exactly one duplicated slot value.
        let mut counts = vec![0usize; n - 1];
        for &r in &replies {
            counts[r - 1] += 1;
        }
        assert_eq!(counts.iter().filter(|&&c| c == 2).count(), 1, "seed {seed}");
        assert_eq!(
            counts.iter().filter(|&&c| c == 1).count(),
            n - 2,
            "seed {seed}"
        );
    }
}
