//! Integration: the constructions of Theorems 1, 2 and 11's certificate,
//! end-to-end, plus the adaptivity observation of Section 1.

use std::sync::Arc;

use gsb_universe::algorithms::harness::{sweep_adversarial, sweep_random, AlgorithmUnderTest};
use gsb_universe::algorithms::{
    FreeDecisionProtocol, InnerFactory, RenameThenProtocol, RenamingProtocol, UniversalGsbProtocol,
};
use gsb_universe::core::{GsbSpec, Identity, SymmetricGsb};
use gsb_universe::memory::{
    build_executor, CrashPlan, GsbOracle, Oracle, OraclePolicy, Pid, ProtocolFactory,
    RoundRobinScheduler,
};
use gsb_universe::topology::election_impossibility_certificate;

#[test]
fn theorem_1_large_identity_spaces_add_no_power() {
    // Solve homonymous renaming with identities from [1..10⁵]: rename to
    // [1..2n−1] first, then apply the small-space witness map.
    let n = 5;
    let spec = SymmetricGsb::homonymous_renaming(n, 3).unwrap().to_spec();
    let inner_spec = spec.clone();
    let build: Arc<InnerFactory> = Arc::new(move |id, _n| {
        Box::new(FreeDecisionProtocol::new(&inner_spec, id).expect("solvable"))
    });
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(move |_pid, id, n| Box::new(RenameThenProtocol::new(id, n, Arc::clone(&build))));
    let algo = AlgorithmUnderTest {
        spec,
        factory: &factory,
        oracles: &Vec::new,
    };
    sweep_random(&algo, 100_000, 40, 101).unwrap();
    sweep_adversarial(&algo, 100_000, 40, 103).unwrap();
}

#[test]
fn theorem_2_composition_with_oracle_based_inner() {
    // Rename, then run the universal construction on the renamed ids —
    // the full Theorem 2 pipeline with an enriched-model inner protocol.
    let n = 4;
    let target = GsbSpec::election(n).unwrap();
    let inner_target = target.clone();
    let build: Arc<InnerFactory> = Arc::new(move |_id, _n| {
        Box::new(UniversalGsbProtocol::new(&inner_target).expect("feasible"))
    });
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(move |_pid, id, n| Box::new(RenameThenProtocol::new(id, n, Arc::clone(&build))));
    let oracles = move || -> Vec<Box<dyn Oracle>> {
        let pr = SymmetricGsb::perfect_renaming(n).unwrap().to_spec();
        vec![Box::new(
            GsbOracle::new(pr, OraclePolicy::Seeded(31)).unwrap(),
        )]
    };
    let algo = AlgorithmUnderTest {
        spec: target,
        factory: &factory,
        oracles: &oracles,
    };
    sweep_random(&algo, 5_000, 40, 107).unwrap();
}

#[test]
fn theorem_11_certificate_through_n5() {
    for (n, r) in [
        (2usize, 1usize),
        (2, 2),
        (2, 3),
        (3, 1),
        (3, 2),
        (4, 1),
        (5, 1),
    ] {
        election_impossibility_certificate(n, r).unwrap_or_else(|e| panic!("n={n} r={r}: {e}"));
    }
}

#[test]
fn classic_renaming_is_adaptive_in_participation() {
    // Section 1 contrasts non-adaptive GSB renaming with adaptive
    // renaming. The classic algorithm is in fact adaptive: when only p of
    // n processes participate, names stay within [1..2p−1] — because
    // ranks and conflicts only involve participants.
    let n = 6;
    for p in 1..=n {
        let ids: Vec<Identity> = (0..n as u32)
            .map(|i| Identity::new(10 + 7 * i).unwrap())
            .collect();
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, _n| Box::new(RenamingProtocol::new(id)));
        let mut exec = build_executor(&factory, &ids, vec![]);
        // Crash all but the first p processes before they start.
        let crashes: Vec<(Pid, usize)> = (p..n).map(|i| (Pid::new(i), 0usize)).collect();
        let plan = CrashPlan::with_crashes(n, &crashes);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &plan, 100_000)
            .unwrap();
        let mut names: Vec<usize> = outcome.decided_values();
        assert_eq!(names.len(), p);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), p, "names must be distinct");
        let max = names.last().copied().unwrap_or(0);
        assert!(
            max < 2 * p,
            "participation-adaptive bound violated: p={p}, max name {max}"
        );
    }
}

#[test]
fn asymmetric_tightening_is_canonical_across_the_committee_zoo() {
    // The beyond-the-paper extension at work: specs with slack bounds
    // tighten to the same canonical form as their exact counterparts.
    let slack = GsbSpec::committees(6, &[(0, 6), (2, 6), (0, 1)]).unwrap();
    let tight = slack.tighten();
    // Value 1 can absorb at most 6−2−0 = 4; value 2 at least 6−?…
    assert!(tight.upper(1) <= 4);
    assert!(slack.is_same_task(&tight));
    // Tightened bounds are attained: every bound appears in some legal
    // output's counting vector.
    let counting = tight.counting_set();
    for v in 1..=tight.m() {
        assert!(counting.iter().any(|c| c.counts()[v - 1] == tight.lower(v)));
        assert!(counting.iter().any(|c| c.counts()[v - 1] == tight.upper(v)));
    }
}
