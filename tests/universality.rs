//! E4 integration: Theorem 8 end-to-end — perfect renaming solves every
//! GSB task — across the full zoo, schedules, oracle adversaries and
//! crash plans.

use gsb_universe::algorithms::harness::{
    sweep_adversarial, sweep_exhaustive, sweep_random, AlgorithmUnderTest,
};
use gsb_universe::algorithms::UniversalGsbProtocol;
use gsb_universe::core::{GsbSpec, Identity, SymmetricGsb};
use gsb_universe::memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};

fn perfect_oracles(n: usize, policy: OraclePolicy) -> Vec<Box<dyn Oracle>> {
    let spec = SymmetricGsb::perfect_renaming(n)
        .expect("valid parameters")
        .to_spec();
    vec![Box::new(GsbOracle::new(spec, policy).expect("feasible"))]
}

fn zoo(n: usize) -> Vec<GsbSpec> {
    let mut tasks = vec![
        SymmetricGsb::wsb(n).unwrap().to_spec(),
        SymmetricGsb::slot(n, n - 1).unwrap().to_spec(),
        SymmetricGsb::perfect_renaming(n).unwrap().to_spec(),
        SymmetricGsb::renaming(n, n + 1).unwrap().to_spec(),
        SymmetricGsb::hardest(n, 2).unwrap().to_spec(),
        GsbSpec::election(n).unwrap(),
    ];
    if n >= 4 {
        tasks.push(SymmetricGsb::k_wsb(n, 2).unwrap().to_spec());
        tasks.push(GsbSpec::committees(n, &[(1, 2), (1, n - 2), (0, n)]).unwrap());
    }
    tasks
}

#[test]
fn universal_construction_random_sweeps() {
    for n in [3usize, 5, 7] {
        for target in zoo(n) {
            let target_owned = target.clone();
            let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, _n| {
                Box::new(UniversalGsbProtocol::new(&target_owned).expect("feasible"))
            });
            let oracles = move || perfect_oracles(n, OraclePolicy::Seeded(n as u64));
            let algo = AlgorithmUnderTest {
                spec: target.clone(),
                factory: &factory,
                oracles: &oracles,
            };
            sweep_random(&algo, (2 * n - 1) as u32, 40, 51)
                .unwrap_or_else(|e| panic!("{target} at n={n}: {e}"));
        }
    }
}

#[test]
fn universal_construction_adversarial_sweeps() {
    let n = 6;
    for target in zoo(n) {
        let target_owned = target.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, _n| {
            Box::new(UniversalGsbProtocol::new(&target_owned).expect("feasible"))
        });
        let oracles = move || perfect_oracles(n, OraclePolicy::LastFit);
        let algo = AlgorithmUnderTest {
            spec: target.clone(),
            factory: &factory,
            oracles: &oracles,
        };
        sweep_adversarial(&algo, (2 * n - 1) as u32, 40, 53)
            .unwrap_or_else(|e| panic!("{target}: {e}"));
    }
}

#[test]
fn universal_construction_exhaustive_n3() {
    // Every schedule, for every zoo target, n = 3.
    let n = 3;
    let ids: Vec<Identity> = [5u32, 1, 4]
        .iter()
        .map(|&v| Identity::new(v).unwrap())
        .collect();
    for target in zoo(n) {
        let target_owned = target.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, _n| {
            Box::new(UniversalGsbProtocol::new(&target_owned).expect("feasible"))
        });
        let oracles = move || perfect_oracles(n, OraclePolicy::FirstFit);
        let algo = AlgorithmUnderTest {
            spec: target.clone(),
            factory: &factory,
            oracles: &oracles,
        };
        let report =
            sweep_exhaustive(&algo, &ids, 10_000).unwrap_or_else(|e| panic!("{target}: {e}"));
        assert_eq!(report.runs, 90, "{target}"); // 6!/(2!·2!·2!)
    }
}

#[test]
fn universality_covers_every_feasible_small_task() {
    // Not just the zoo: every feasible ⟨4, m, ℓ, u⟩ task.
    let n = 4;
    for m in 1..=n {
        for task in gsb_universe::core::order::feasible_family(n, m).unwrap() {
            let target = task.to_spec();
            let target_owned = target.clone();
            let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, _n| {
                Box::new(UniversalGsbProtocol::new(&target_owned).expect("feasible"))
            });
            let oracles = move || perfect_oracles(n, OraclePolicy::Seeded(7));
            let algo = AlgorithmUnderTest {
                spec: target.clone(),
                factory: &factory,
                oracles: &oracles,
            };
            sweep_random(&algo, 7, 10, 59).unwrap_or_else(|e| panic!("{task}: {e}"));
        }
    }
}
