//! E1/E2 integration: exact reproduction of the paper's Table 1 and
//! Figure 1 through the public API of the façade crate.

use gsb_universe::core::{Anchoring, KernelTable, SymmetricGsb, TaskOrder};

/// The paper's Table 1, fully transcribed: `(ℓ, u, canonical, marks)` over
/// the column order `[6,0,0] [5,1,0] [4,2,0] [4,1,1] [3,3,0] [3,2,1]
/// [2,2,2]`.
const PAPER_TABLE_1: &[(usize, usize, bool, [u8; 7])] = &[
    (0, 6, true, [1, 1, 1, 1, 1, 1, 1]),
    (1, 6, false, [0, 0, 0, 1, 0, 1, 1]),
    (0, 5, true, [0, 1, 1, 1, 1, 1, 1]),
    (1, 5, false, [0, 0, 0, 1, 0, 1, 1]),
    (2, 5, false, [0, 0, 0, 0, 0, 0, 1]),
    (0, 4, true, [0, 0, 1, 1, 1, 1, 1]),
    (1, 4, true, [0, 0, 0, 1, 0, 1, 1]),
    (2, 4, false, [0, 0, 0, 0, 0, 0, 1]),
    (0, 3, true, [0, 0, 0, 0, 1, 1, 1]),
    (1, 3, true, [0, 0, 0, 0, 0, 1, 1]),
    (2, 3, false, [0, 0, 0, 0, 0, 0, 1]),
    (0, 2, false, [0, 0, 0, 0, 0, 0, 1]),
    (1, 2, false, [0, 0, 0, 0, 0, 0, 1]),
    (2, 2, true, [0, 0, 0, 0, 0, 0, 1]),
];

#[test]
fn table_1_rows_match_the_paper() {
    let table = KernelTable::new(6, 3).expect("valid parameters");
    let columns: Vec<String> = table.columns().iter().map(|k| k.to_string()).collect();
    assert_eq!(
        columns,
        [
            "[6, 0, 0]",
            "[5, 1, 0]",
            "[4, 2, 0]",
            "[4, 1, 1]",
            "[3, 3, 0]",
            "[3, 2, 1]",
            "[2, 2, 2]"
        ],
        "Table 1 column order"
    );
    for &(l, u, canonical, marks) in PAPER_TABLE_1 {
        let row = table
            .row(l, u)
            .unwrap_or_else(|| panic!("row ⟨6,3,{l},{u}⟩ missing"));
        assert_eq!(row.canonical, canonical, "canonical flag of ⟨6,3,{l},{u}⟩");
        let expected: Vec<bool> = marks.iter().map(|&b| b == 1).collect();
        assert_eq!(row.marks, expected, "kernel marks of ⟨6,3,{l},{u}⟩");
    }
}

#[test]
fn table_1_contains_one_extra_synonym_row() {
    // The paper omits ⟨6,3,2,6⟩ although it is feasible; it is a synonym
    // of ⟨6,3,2,2⟩. Documented in EXPERIMENTS.md (E1).
    let table = KernelTable::new(6, 3).expect("valid parameters");
    assert_eq!(table.rows().len(), PAPER_TABLE_1.len() + 1);
    let extra = table.row(2, 6).expect("the omitted row");
    assert!(!extra.canonical);
    assert!(SymmetricGsb::new(6, 3, 2, 6)
        .unwrap()
        .is_synonym_of(&SymmetricGsb::new(6, 3, 2, 2).unwrap()));
}

#[test]
fn figure_1_nodes_edges_and_annotations() {
    let order = TaskOrder::new(6, 3).expect("valid parameters");
    // The 7 canonical classes, in Figure 1's layout order.
    let reps: Vec<String> = order
        .classes()
        .iter()
        .map(|c| c.representative.to_string())
        .collect();
    assert_eq!(
        reps,
        [
            "⟨6, 3, 0, 6⟩-GSB",
            "⟨6, 3, 0, 5⟩-GSB",
            "⟨6, 3, 0, 4⟩-GSB",
            "⟨6, 3, 0, 3⟩-GSB",
            "⟨6, 3, 1, 4⟩-GSB",
            "⟨6, 3, 1, 3⟩-GSB",
            "⟨6, 3, 2, 2⟩-GSB"
        ]
    );
    // The 7 arrows of Figure 1 (A → B: A strictly includes B).
    let edges: Vec<(String, String)> = order
        .hasse_edges()
        .iter()
        .map(|&(i, j)| {
            (
                order.classes()[i].representative.to_string(),
                order.classes()[j].representative.to_string(),
            )
        })
        .collect();
    let expected = [
        ("⟨6, 3, 0, 6⟩-GSB", "⟨6, 3, 0, 5⟩-GSB"),
        ("⟨6, 3, 0, 5⟩-GSB", "⟨6, 3, 0, 4⟩-GSB"),
        ("⟨6, 3, 0, 4⟩-GSB", "⟨6, 3, 1, 4⟩-GSB"),
        ("⟨6, 3, 0, 4⟩-GSB", "⟨6, 3, 0, 3⟩-GSB"),
        ("⟨6, 3, 1, 4⟩-GSB", "⟨6, 3, 1, 3⟩-GSB"),
        ("⟨6, 3, 0, 3⟩-GSB", "⟨6, 3, 1, 3⟩-GSB"),
        ("⟨6, 3, 1, 3⟩-GSB", "⟨6, 3, 2, 2⟩-GSB"),
    ];
    assert_eq!(edges.len(), expected.len());
    for (a, b) in expected {
        assert!(
            edges.iter().any(|(x, y)| x == a && y == b),
            "missing Figure 1 arrow {a} → {b}"
        );
    }
    // Figure 1's anchoring annotations.
    let anchoring_of = |l: usize, u: usize| {
        order
            .classes()
            .iter()
            .find(|c| c.representative.l() == l && c.representative.u() == u)
            .expect("class exists")
            .anchoring
    };
    assert!(anchoring_of(0, 6).is_u_anchored()); // trivially u-anchored
    assert!(anchoring_of(0, 5).is_u_anchored());
    assert!(anchoring_of(0, 4).is_u_anchored());
    assert!(anchoring_of(1, 4).is_l_anchored()); // ℓ-anchored
    assert_eq!(anchoring_of(2, 2), Anchoring::Both); // (ℓ,u)-anchored
    assert_eq!(anchoring_of(1, 3), Anchoring::None); // not anchored
}

#[test]
fn figure_1_incomparability_answers_the_open_question() {
    // §7 asks whether the hierarchy is a total order; already at
    // n = 6, m = 3 it is not: ⟨6,3,1,4⟩ ∥ ⟨6,3,0,3⟩.
    let order = TaskOrder::new(6, 3).expect("valid parameters");
    let pairs = order.incomparable_pairs();
    assert_eq!(pairs.len(), 1);
    let a = SymmetricGsb::new(6, 3, 1, 4).unwrap();
    let b = SymmetricGsb::new(6, 3, 0, 3).unwrap();
    assert!(!a.is_subtask_of(&b));
    assert!(!b.is_subtask_of(&a));
}

#[test]
fn kernel_tables_scale_beyond_the_paper() {
    // The generator is not hard-coded to (6,3): spot-check invariants on
    // other parameters.
    for (n, m) in [(4usize, 2usize), (7, 3), (8, 4), (9, 3)] {
        let table = KernelTable::new(n, m).unwrap();
        let order = TaskOrder::new(n, m).unwrap();
        assert_eq!(
            table.rows().iter().filter(|r| r.canonical).count(),
            order.classes().len(),
            "canonical rows vs classes at n={n} m={m}"
        );
        // Every row's marks are consistent with its own kernel set.
        for row in table.rows() {
            let marked = row.marks.iter().filter(|&&b| b).count();
            assert_eq!(marked, row.task.kernel_set().len());
        }
    }
}
