//! E5 integration: the communication-free solvability frontier
//! (Theorem 9, Corollaries 2–3) — closed form vs. brute force vs. an
//! actual protocol on the simulator.

use gsb_universe::algorithms::harness::{sweep_random, AlgorithmUnderTest};
use gsb_universe::algorithms::FreeDecisionProtocol;
use gsb_universe::core::{GsbSpec, SymmetricGsb};
use gsb_universe::memory::ProtocolFactory;

#[test]
fn theorem_9_frontier_exact_on_full_sweep() {
    // Exhaustive agreement between the closed form and brute-force map
    // search, for every (m, ℓ, u) at n = 2 and n = 3.
    let mut checked = 0usize;
    for n in 2..=3usize {
        for m in 1..=(2 * n - 1) {
            for l in 0..=n {
                for u in l..=n {
                    let Ok(t) = SymmetricGsb::new(n, m, l, u) else {
                        continue;
                    };
                    let spec = t.to_spec();
                    let closed = t.no_communication_solvable();
                    let brute = spec.is_feasible() && spec.no_communication_brute_force();
                    assert_eq!(closed, brute, "Theorem 9 mismatch at {t}");
                    checked += 1;
                }
            }
        }
    }
    // n = 2: 6 (ℓ,u) pairs × 3 values of m; n = 3: 10 pairs × 5 values.
    assert_eq!(checked, 68, "swept {checked} parameterizations");
}

#[test]
fn theorem_9_boundary_cases() {
    // The characterization is tight: at u = ⌈(2n−1)/m⌉ it flips.
    for n in 2..=8usize {
        for m in 2..=(2 * n - 1) {
            let threshold = (2 * n - 1).div_ceil(m);
            if threshold <= n && n <= m * threshold {
                let at = SymmetricGsb::new(n, m, 0, threshold).unwrap();
                assert!(
                    at.no_communication_solvable(),
                    "{at} should be solvable (at threshold)"
                );
            }
            if threshold > 1 && n <= m * (threshold - 1) && threshold - 1 <= n {
                let below = SymmetricGsb::new(n, m, 0, threshold - 1).unwrap();
                assert!(
                    !below.no_communication_solvable(),
                    "{below} should not be solvable (below threshold)"
                );
            }
        }
    }
}

#[test]
fn corollary_3_wsb_needs_communication() {
    for n in 2..=9 {
        let wsb = SymmetricGsb::wsb(n).unwrap();
        assert!(!wsb.no_communication_solvable(), "n = {n}");
        assert_eq!(wsb.no_communication_witness(), None);
    }
}

#[test]
fn corollary_2_homonymous_renaming_runs_on_the_simulator() {
    for n in [3usize, 5, 7] {
        for x in [1usize, 2, 3] {
            let spec = SymmetricGsb::homonymous_renaming(n, x).unwrap().to_spec();
            let spec_owned = spec.clone();
            let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, _n| {
                Box::new(FreeDecisionProtocol::new(&spec_owned, id).expect("solvable"))
            });
            let algo = AlgorithmUnderTest {
                spec,
                factory: &factory,
                oracles: &Vec::new,
            };
            sweep_random(&algo, (2 * n - 1) as u32, 30, 79)
                .unwrap_or_else(|e| panic!("n={n} x={x}: {e}"));
        }
    }
}

#[test]
fn witnesses_beat_every_adversarial_subset() {
    // For every no-communication-solvable task at n ≤ 5, the witness map
    // must survive all C(2n−1, n) identity subsets.
    for n in 2..=5usize {
        for m in 1..=(2 * n - 1) {
            for u in 1..=n {
                let Ok(t) = SymmetricGsb::new(n, m, 0, u) else {
                    continue;
                };
                if let Some(witness) = t.no_communication_witness() {
                    assert!(
                        t.to_spec().map_beats_all_subsets(&witness),
                        "witness of {t} loses to some subset"
                    );
                }
            }
        }
    }
}

#[test]
fn asymmetric_generalization_matches_brute_force() {
    // The interval-based asymmetric extension agrees with brute force on
    // all two-value specs at n = 3.
    let n = 3usize;
    for l1 in 0..=n {
        for u1 in l1..=n {
            for l2 in 0..=n {
                for u2 in l2..=n {
                    let Ok(spec) = GsbSpec::new(n, vec![l1, l2], vec![u1, u2]) else {
                        continue;
                    };
                    let closed = spec.no_communication_solvable();
                    let brute = spec.is_feasible() && spec.no_communication_brute_force();
                    assert_eq!(closed, brute, "asymmetric mismatch at {spec}");
                    if let Some(w) = spec.no_communication_witness() {
                        assert!(spec.map_beats_all_subsets(&w), "witness fails for {spec}");
                    }
                }
            }
        }
    }
}

#[test]
fn election_has_no_free_solution() {
    for n in 2..=6 {
        let election = GsbSpec::election(n).unwrap();
        assert!(!election.no_communication_solvable(), "n = {n}");
        assert_eq!(election.no_communication_witness(), None, "n = {n}");
    }
}
