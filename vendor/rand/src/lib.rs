//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so this
//! vendored crate provides exactly the API subset the workspace uses
//! (`StdRng`, `SeedableRng`, `Rng::{gen_range, gen_bool}`,
//! `seq::SliceRandom::shuffle`) on top of a SplitMix64 generator.
//!
//! The generator is deterministic per seed — which is all the simulator's
//! seeded schedulers and sweeps require — but it is **not** the upstream
//! `StdRng` stream: seeds produce different (still reproducible) sequences
//! than the real crate would.

#![forbid(unsafe_code)]

/// Core uniform-bits interface (mirrors `rand_core::RngCore`, minus the
/// byte-filling methods nothing here needs).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (mirrors `rand::SeedableRng`'s `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n` or `1..=m` style).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling via 128-bit multiply-shift (Lemire).
/// The modulo bias of a plain `% n` is irrelevant at these range sizes, but
/// the widening multiply is just as cheap.
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush, one
            // u64 of state, no weak seeds.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
