//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns the guard directly). Contention behaviour is std's,
//! which is more than adequate for the threaded test harness this
//! workspace uses it for.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

/// A mutex whose `lock` never returns a poison error (a panicked holder
/// simply releases the lock, as in the real parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with the same poison-free contract.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // no poison propagation
    }
}
