//! Offline stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! `Just`, integer-range strategies, [`collection::vec`], [`option::of`],
//! `any::<T>()`, the [`proptest!`] macro with `#![proptest_config(..)]`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * cases are drawn from a fixed-seed SplitMix64 stream, so runs are fully
//!   deterministic (no `PROPTEST_` env handling, no failure persistence);
//! * there is **no shrinking** — a failing case reports its inputs via the
//!   assertion message instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner whose stream is derived from `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a generated case did not run to completion.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Result type the [`proptest!`] macro's bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Seed for the deterministic stream.
    pub seed: u64,
    /// Maximum rejects (filter misses + assumes) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            seed: 0x5b5b_1a2a_9d03_f7e1,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of values of an output type, composable via combinators.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value. `Err(Reject)` means "retry with fresh randomness"
    /// (used by filters).
    ///
    /// # Errors
    ///
    /// Returns [`TestCaseError::Reject`] when a filter rejected the draw.
    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, TestCaseError>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f`; the runner retries with
    /// fresh randomness.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> Result<O, TestCaseError> {
        Ok((self.f)(self.inner.new_value(runner)?))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<S2::Value, TestCaseError> {
        (self.f)(self.inner.new_value(runner)?).new_value(runner)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<S::Value, TestCaseError> {
        // A bounded local retry keeps sparse filters cheap; a miss after
        // the budget surfaces as a global reject.
        for _ in 0..64 {
            let value = self.inner.new_value(runner)?;
            if (self.f)(&value) {
                return Ok(value);
            }
        }
        Err(TestCaseError::Reject(format!(
            "filter '{}' kept rejecting",
            self.whence
        )))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, TestCaseError> {
                Ok(runner.rng().gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, TestCaseError> {
                Ok(runner.rng().gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner)
                -> Result<Self::Value, TestCaseError>
            {
                let ($($name,)+) = self;
                Ok(($($name.new_value(runner)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, u32, u16, u8, usize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> Result<T, TestCaseError> {
        Ok(T::arbitrary(runner))
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestCaseError, TestRunner};
    use rand::Rng as _;

    /// An inclusive length range for collection strategies (mirrors
    /// proptest's `SizeRange` conversions).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, TestCaseError> {
            let n = runner.rng().gen_range(self.len.lo..=self.len.hi);
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestCaseError, TestRunner};
    use rand::Rng as _;

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, TestCaseError> {
            if runner.rng().gen_bool(0.25) {
                Ok(None)
            } else {
                Ok(Some(self.0.new_value(runner)?))
            }
        }
    }
}

/// Drives one property: draws cases, skips rejects, panics on failure.
/// Called by the [`proptest!`] macro expansion — not intended for direct
/// use.
///
/// # Panics
///
/// Panics when a case fails or too many cases are rejected.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    test: impl Fn(S::Value) -> TestCaseResult,
) {
    let mut runner = TestRunner::from_seed(config.seed ^ fnv1a(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        if rejected > config.max_global_rejects {
            panic!(
                "property '{name}': gave up after {rejected} rejects \
                 ({passed}/{} cases passed)",
                config.cases
            );
        }
        let value = match strategy.new_value(&mut runner) {
            Ok(v) => v,
            Err(_) => {
                rejected += 1;
                continue;
            }
        };
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {passed}: {msg}")
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over drawn cases.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr) ) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (counts as a reject, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_even() -> impl Strategy<Value = usize> {
        (0usize..100).prop_filter("even", |x| x % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn filters_hold(x in small_even()) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 100, "x = {x} out of range");
        }

        #[test]
        fn flat_map_dependency(pair in (1usize..10)
            .prop_flat_map(|n| (Just(n), 0usize..n))
        ) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn vectors_and_options(
            v in crate::collection::vec(crate::option::of(any::<u64>()), 0..6),
        ) {
            prop_assert!(v.len() < 6);
        }

        #[test]
        fn assume_discards(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_property(
            "failures_panic",
            &ProptestConfig::with_cases(10),
            &(0usize..4),
            |x| {
                prop_assert!(x < 3, "x = {x} too big");
                Ok(())
            },
        );
    }
}
