//! Offline stand-in for `criterion`.
//!
//! Provides the API subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — on
//! a simple wall-clock harness:
//!
//! * each benchmark warms up for `warm_up_time`, then runs `sample_size`
//!   samples, each sized to last roughly
//!   `measurement_time / sample_size`;
//! * per-bench results (median / mean / min) are printed to stdout in a
//!   stable `bench: <id> ... median <t>` format that scripts can grep.
//!
//! There is no statistical regression machinery; the intent is honest
//! relative timing (A vs B on the same machine, same process), which is
//! what the workspace's speedup acceptance gates use.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work (`std::hint::black_box` re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a free-standing benchmark (no group).
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let cfg = self.clone();
        run_bench(&cfg, &id.into().full, f);
    }
}

/// A benchmark identifier: `name` or `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }

    /// Builds a parameter-only id (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize_opt,
}

#[allow(non_camel_case_types)]
type usize_opt = Option<usize>;

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn config(&self) -> Criterion {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        cfg
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().full);
        run_bench(&self.config(), &full, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().full);
        run_bench(&self.config(), &full, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Measures closures; handed to benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(cfg: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: how long does one iteration take?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Warm up for the requested duration.
    let warm_up_end = Instant::now() + cfg.warm_up_time;
    while Instant::now() < warm_up_end {
        let iters = iters_for(per_iter, cfg.warm_up_time.min(Duration::from_millis(50)));
        let mut wb = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut wb);
        per_iter = wb.elapsed.max(Duration::from_nanos(1)) / u32::try_from(iters).unwrap_or(1);
    }

    // Measure.
    let per_sample = cfg.measurement_time / u32::try_from(cfg.sample_size).unwrap_or(1);
    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let iters = iters_for(per_iter, per_sample);
        let mut sb = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut sb);
        samples.push(sb.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    println!(
        "bench: {id:<50} median {:>12}  mean {:>12}  min {:>12}  ({} samples)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        samples.len()
    );
}

fn iters_for(per_iter: Duration, budget: Duration) -> u64 {
    (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group entry point (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut hits = 0u64;
        group.bench_function("inc", |b| b.iter(|| hits = hits.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).full, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").full, "x");
    }
}
