//! Offline stand-in for `rayon`.
//!
//! Implements the `par_iter` surface this workspace uses with
//! order-preserving chunked fan-out on `std::thread::scope`: the input is
//! split into `available_parallelism()` contiguous chunks, each chunk is
//! mapped on its own scoped thread, and results are concatenated in chunk
//! order — so `collect::<Vec<_>>()` observes exactly the sequential order,
//! like real rayon's indexed parallel iterators.
//!
//! Differences from the real crate: no work stealing (chunk sizes are
//! static), no nested-parallelism pool sharing, and only the
//! `into_par_iter().map(..).collect()` / `for_each` / `flat_map` subset is
//! provided. On a single-core host everything degrades to a plain serial
//! loop with no thread spawns.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads the stand-in fans out to.
///
/// Honors `RAYON_NUM_THREADS` (like the real crate's default pool): a
/// positive integer overrides detection, anything else falls back to
/// `available_parallelism()`. Portfolio-style callers use this to size
/// their fan-out, so a 1-core container (or an explicit
/// `RAYON_NUM_THREADS=1`) gets fully deterministic serial behaviour.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(threads) = value.trim().parse::<usize>() {
            if threads >= 1 {
                return threads;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items` preserving order, chunked across scoped threads.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, tail));
    }
    let f = &f;
    let mut out: Vec<R> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            // Propagate a worker panic with its original payload (as real
            // rayon does) so callers' `catch_unwind` sees what was thrown.
            match handle.join() {
                Ok(mapped) => out.extend(mapped),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A materialized parallel iterator (items are owned up front).
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel, discarding results.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    /// Maps every item to an iterator and flattens, preserving order.
    pub fn flat_map<R, I, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        I: IntoIterator<Item = R>,
        F: Fn(T) -> I + Sync,
    {
        let nested = parallel_map(self.items, |x| f(x).into_iter().collect::<Vec<R>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Collects the (already materialized) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A pending parallel map; executes on `collect`/`for_each`.
#[derive(Debug)]
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map in parallel and collects in sequential order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }

    /// Executes the map and flattens nested iterators, preserving order.
    pub fn flatten_collect<C, I>(self) -> C
    where
        R: IntoIterator<Item = I>,
        I: Send,
        C: FromIterator<I>,
    {
        parallel_map(self.items, self.f)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Executes the map, discarding results.
    pub fn for_each_drop(self) {
        parallel_map(self.items, self.f);
    }
}

/// Conversion into a parallel iterator (owning).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Materializes the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion (`.par_iter()` on slices and vecs).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Materializes a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<usize> = (0..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn ref_iter_borrows() {
        let data = vec![1u64, 2, 3];
        let sum: u64 = data
            .par_iter()
            .map(|&x| x)
            .collect::<Vec<u64>>()
            .iter()
            .sum();
        assert_eq!(sum, 6);
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn flat_map_flattens_in_order() {
        let out: Vec<usize> = (0..4)
            .into_par_iter()
            .flat_map(|x| vec![x, x + 10])
            .collect();
        assert_eq!(out, vec![0, 10, 1, 11, 2, 12, 3, 13]);
    }
}
