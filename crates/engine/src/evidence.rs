//! Machine-checkable evidence: every verdict carries data that can be
//! re-verified **independently of the engine that produced it**.
//!
//! The re-verification paths deliberately avoid the producing engine's
//! machinery:
//!
//! * decision maps are replayed **facet by facet** over a freshly built
//!   protocol complex ([`DecisionMap::check`]), bypassing the CDCL
//!   encoding, the deduplicated constraint system, and the process-wide
//!   subdivision memo;
//! * no-communication witnesses are checked against **every** adversarial
//!   `n`-subset of the identity space by brute force
//!   ([`GsbSpec::map_beats_all_subsets`]), not by re-deriving Theorem 9's
//!   arithmetic;
//! * kernel/counting data is cross-checked between two independent
//!   counting algorithms (the DP over count profiles vs. the kernel-orbit
//!   sum);
//! * atlas rows are re-classified one by one.
//!
//! Round-bounded UNSAT claims are the one place no cheap independent
//! replay exists; their evidence records the solver counters, and the
//! engine's cross-engine agreement mode
//! ([`EngineOpts::agreement_rounds`](crate::EngineOpts::agreement_rounds),
//! [`SearchEngine::Both`](crate::SearchEngine::Both)) is the
//! corroboration path.

use gsb_core::kernel::KernelVector;
use gsb_core::solvability::{binomial_gcd, BINOMIAL_GCD_MAX_N};
use gsb_core::{GsbSpec, Solvability, SymmetricGsb};
use gsb_topology::{protocol_complex, DecisionMap, SearchStats};

use crate::error::{Error, Result};

/// One row of an atlas sweep: a task and its classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtlasCell {
    /// The classified task.
    pub task: SymmetricGsb,
    /// Its verdict.
    pub solvability: Solvability,
    /// The classifier's justification.
    pub justification: String,
}

/// Machine-checkable evidence backing a [`Verdict`](crate::Verdict).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Evidence {
    /// The output set is empty (Lemma 1/2): the recorded bound sums
    /// violate `Σℓ ≤ n ≤ Σu`.
    Infeasible {
        /// Sum of the lower bounds.
        lower_sum: usize,
        /// Sum of the upper bounds.
        upper_sum: usize,
    },
    /// Theorem 9 witness: entry `id − 1` is the value decided by a
    /// process holding identity `id ∈ [1..2n−1]`, with no communication.
    NoCommunication {
        /// The witness decision map over the identity space.
        witness: Vec<usize>,
    },
    /// Closed-form refutation: no no-communication decision map exists
    /// (re-checked by brute force for small `n`).
    NoCommImpossible,
    /// Replayable SAT witness of a round-bounded decision-map search.
    DecisionMap(DecisionMap),
    /// Round-bounded UNSAT: no symmetric decision map on
    /// `χ^rounds(Δ^{n−1})`, with the solver counters of the refutation.
    RoundsUnsat {
        /// The checked round bound.
        rounds: usize,
        /// Counters of the refuting search.
        stats: SearchStats,
    },
    /// Structure-theory data behind a classifier verdict: the canonical
    /// representative and two independently recomputable counts.
    Kernel {
        /// Canonical representative (Theorem 7), for symmetric tasks.
        canonical: Option<SymmetricGsb>,
        /// Size of the canonical task's kernel set (symmetric tasks).
        kernel_vectors: Option<usize>,
        /// Number of legal output vectors of the task itself.
        legal_outputs: u128,
        /// `gcd{C(n,i)}` (Theorem 10's criterion), when `2 ≤ n ≤ 130`.
        binomial_gcd: Option<u128>,
    },
    /// The Theorem 11 structural certificate: election admits no
    /// symmetric decision map on `χ^rounds(Δ^{n−1})` because the complex
    /// is a pseudomanifold with connected per-color linkage and
    /// symmetric corners.
    ElectionCertificate {
        /// Round bound of the certified complex.
        rounds: usize,
        /// Facet count of that complex (pinned for the re-check).
        facets: usize,
    },
    /// Atlas sweep: per-task classifications for every feasible
    /// symmetric task with `n ≤ max_n`.
    Atlas {
        /// Largest process count swept.
        max_n: usize,
        /// One row per feasible task, family order.
        rows: Vec<AtlasCell>,
    },
    /// The governed computation stopped before reaching a verdict
    /// (deadline, budget, cancellation, or injected fault): an honest
    /// partial answer, not an error. The verdict's `solvability` is
    /// `None`.
    Indeterminate {
        /// The first limit that tripped (see
        /// [`StopReason::label`](gsb_core::StopReason::label)).
        reason: gsb_core::StopReason,
        /// Counters accumulated before the stop, when the interrupted
        /// engine kept any.
        partial: Option<SearchStats>,
    },
}

impl Evidence {
    /// Stable machine-readable label (the JSON `kind` discriminator).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Evidence::Infeasible { .. } => "infeasible",
            Evidence::NoCommunication { .. } => "no-communication",
            Evidence::NoCommImpossible => "no-comm-impossible",
            Evidence::DecisionMap(_) => "decision-map",
            Evidence::RoundsUnsat { .. } => "rounds-unsat",
            Evidence::Kernel { .. } => "kernel",
            Evidence::ElectionCertificate { .. } => "election-certificate",
            Evidence::Atlas { .. } => "atlas",
            Evidence::Indeterminate { .. } => "indeterminate",
        }
    }

    /// The replayable decision map, for SAT search evidence.
    #[must_use]
    pub fn decision_map(&self) -> Option<&DecisionMap> {
        match self {
            Evidence::DecisionMap(map) => Some(map),
            _ => None,
        }
    }

    /// The no-communication witness map, when present.
    #[must_use]
    pub fn witness(&self) -> Option<&[usize]> {
        match self {
            Evidence::NoCommunication { witness } => Some(witness),
            _ => None,
        }
    }

    /// The refuted round bound, for round-bounded UNSAT evidence (both
    /// the search counters and the election certificate).
    #[must_use]
    pub fn unsat_rounds(&self) -> Option<usize> {
        match self {
            Evidence::RoundsUnsat { rounds, .. } | Evidence::ElectionCertificate { rounds, .. } => {
                Some(*rounds)
            }
            _ => None,
        }
    }

    /// The atlas rows, for sweep evidence.
    #[must_use]
    pub fn atlas_rows(&self) -> Option<&[AtlasCell]> {
        match self {
            Evidence::Atlas { rows, .. } => Some(rows),
            _ => None,
        }
    }

    /// Independently re-verifies the evidence against `spec` (see the
    /// module docs for what "independently" means per variant). Atlas
    /// evidence ignores `spec` — its rows carry their own tasks; use
    /// [`Evidence::check_rows`] directly when no spec is at hand.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EvidenceRejected`] (or a wrapped
    /// [`Error::Topology`] replay failure) when the evidence does not
    /// hold up against `spec`.
    pub fn check(&self, spec: &GsbSpec) -> Result<()> {
        match self {
            Evidence::Infeasible {
                lower_sum,
                upper_sum,
            } => {
                let lo: usize = spec.lower_bounds().iter().sum();
                let hi: usize = spec.upper_bounds().iter().sum();
                if lo != *lower_sum || hi != *upper_sum {
                    return Err(Error::EvidenceRejected {
                        details: format!(
                            "recorded bound sums ({lower_sum}, {upper_sum}) differ from the \
                             spec's ({lo}, {hi})"
                        ),
                    });
                }
                if spec.is_feasible() {
                    return Err(Error::EvidenceRejected {
                        details: format!(
                            "{spec} is feasible (Σℓ = {lo} ≤ n = {} ≤ Σu = {hi})",
                            spec.n()
                        ),
                    });
                }
                Ok(())
            }
            Evidence::NoCommunication { witness } => check_no_comm_witness(spec, witness),
            Evidence::NoCommImpossible => {
                if spec.no_communication_solvable() {
                    return Err(Error::EvidenceRejected {
                        details: format!("{spec} is solvable without communication"),
                    });
                }
                // For tiny systems, corroborate the closed form by the
                // exhaustive map search.
                if spec.n() <= 3 && spec.is_feasible() && spec.no_communication_brute_force() {
                    return Err(Error::EvidenceRejected {
                        details: format!("brute force found a no-communication map for {spec}"),
                    });
                }
                Ok(())
            }
            Evidence::DecisionMap(map) => {
                map.check(spec)?;
                Ok(())
            }
            Evidence::RoundsUnsat { stats, .. } => {
                // No cheap independent refutation replay exists; validate
                // the counters' internal consistency (a refutation that
                // never branched nor propagated on a non-trivial
                // instance would be vacuous).
                if stats.workers == 0 {
                    return Err(Error::EvidenceRejected {
                        details: "UNSAT counters report zero workers".into(),
                    });
                }
                Ok(())
            }
            Evidence::Kernel {
                canonical,
                kernel_vectors,
                legal_outputs,
                binomial_gcd: recorded_gcd,
            } => check_kernel(
                spec,
                canonical,
                *kernel_vectors,
                *legal_outputs,
                *recorded_gcd,
            ),
            Evidence::ElectionCertificate { rounds, facets } => {
                let n = spec.n();
                if *spec != GsbSpec::election(n)? {
                    return Err(Error::EvidenceRejected {
                        details: format!("{spec} is not the election task"),
                    });
                }
                // Fresh build, not the process-wide memo.
                let complex = protocol_complex(n, *rounds);
                if complex.facet_count() != *facets {
                    return Err(Error::EvidenceRejected {
                        details: format!(
                            "certificate pinned {facets} facets but χ^{rounds} has {}",
                            complex.facet_count()
                        ),
                    });
                }
                gsb_topology::check_election_certificate(&complex)
                    .map_err(gsb_topology::Error::from)?;
                Ok(())
            }
            Evidence::Atlas { .. } => self.check_rows(),
            // Indeterminate evidence makes no solvability claim, so
            // there is nothing to falsify.
            Evidence::Indeterminate { .. } => Ok(()),
        }
    }

    /// Re-classifies every atlas row (the spec-less check path). For
    /// non-atlas evidence this is an error — use [`Evidence::check`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::EvidenceRejected`] when any row's recorded
    /// verdict differs from a fresh classification, or when called on
    /// non-atlas evidence.
    pub fn check_rows(&self) -> Result<()> {
        // An interrupted spec-less sweep makes no claim to verify.
        if let Evidence::Indeterminate { .. } = self {
            return Ok(());
        }
        let Evidence::Atlas { max_n, rows } = self else {
            return Err(Error::EvidenceRejected {
                details: format!("'{}' evidence needs a spec to check against", self.label()),
            });
        };
        let mut expected = 0usize;
        for n in 2..=*max_n {
            for m in 1..=n {
                expected += gsb_core::order::feasible_family(n, m)
                    .map_err(Error::Core)?
                    .len();
            }
        }
        if rows.len() != expected {
            return Err(Error::EvidenceRejected {
                details: format!(
                    "atlas({max_n}) has {} rows but the feasible families hold {expected}",
                    rows.len()
                ),
            });
        }
        for row in rows {
            let fresh = row.task.classify();
            if fresh.solvability != row.solvability {
                return Err(Error::EvidenceRejected {
                    details: format!(
                        "atlas row {} replays to '{}' but recorded '{}'",
                        row.task, fresh.solvability, row.solvability
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Brute-force replay of a no-communication witness: the map must beat
/// **every** adversarial `n`-subset of the identity space `[1..2n−1]`.
fn check_no_comm_witness(spec: &GsbSpec, witness: &[usize]) -> Result<()> {
    let n = spec.n();
    let expected_len = if n == 1 { 1 } else { 2 * n - 1 };
    if witness.len() != expected_len {
        return Err(Error::EvidenceRejected {
            details: format!(
                "witness covers {} identities, the space has {expected_len}",
                witness.len()
            ),
        });
    }
    if n == 1 {
        let v = witness[0];
        let ok = v >= 1
            && v <= spec.m()
            && spec.upper(v) >= 1
            && (1..=spec.m()).all(|w| w == v || spec.lower(w) == 0);
        if !ok {
            return Err(Error::EvidenceRejected {
                details: format!("solo decision {v} is not legal for {spec}"),
            });
        }
        return Ok(());
    }
    if !spec.map_beats_all_subsets(witness) {
        return Err(Error::EvidenceRejected {
            details: format!("witness loses to some {n}-subset of identities for {spec}"),
        });
    }
    Ok(())
}

/// Cross-checks kernel/counting evidence through independent
/// computations: the DP output count vs. the kernel-orbit sum, synonym
/// equivalence for the canonical form, and the gcd table vs. the
/// prime-power characterization.
fn check_kernel(
    spec: &GsbSpec,
    canonical: &Option<SymmetricGsb>,
    kernel_vectors: Option<usize>,
    legal_outputs: u128,
    recorded_gcd: Option<u128>,
) -> Result<()> {
    // Count the output set by dynamic programming — independent of the
    // kernel machinery used to produce the evidence.
    let dp_count = spec.legal_output_count();
    if dp_count != legal_outputs {
        return Err(Error::EvidenceRejected {
            details: format!("recorded {legal_outputs} legal outputs, DP counts {dp_count}"),
        });
    }
    if let Some(canonical) = canonical {
        let Some(task) = spec.as_symmetric() else {
            return Err(Error::EvidenceRejected {
                details: format!("canonical form recorded for asymmetric {spec}"),
            });
        };
        if !task.is_synonym_of(canonical) {
            return Err(Error::EvidenceRejected {
                details: format!("{task} is not a synonym of recorded canonical {canonical}"),
            });
        }
        if let Some(kernel_vectors) = kernel_vectors {
            // Second counting path: kernel vectors enumerate output
            // orbits, so their orbit sizes must re-sum to the DP count
            // (computed on the canonical representative, which has the
            // same output set).
            let kernel_set = canonical.kernel_set();
            if kernel_set.len() != kernel_vectors {
                return Err(Error::EvidenceRejected {
                    details: format!(
                        "recorded {kernel_vectors} kernel vectors, the set has {}",
                        kernel_set.len()
                    ),
                });
            }
            let orbit_sum = kernel_set
                .iter()
                .map(KernelVector::output_vector_count)
                .fold(0u128, u128::saturating_add);
            if orbit_sum != dp_count {
                return Err(Error::EvidenceRejected {
                    details: format!(
                        "kernel orbits sum to {orbit_sum} outputs, DP counts {dp_count}"
                    ),
                });
            }
        }
    } else if kernel_vectors.is_some() {
        return Err(Error::EvidenceRejected {
            details: "kernel count recorded without a canonical form".into(),
        });
    }
    if let Some(g) = recorded_gcd {
        let n = spec.n();
        if !(2..=BINOMIAL_GCD_MAX_N).contains(&n) {
            return Err(Error::EvidenceRejected {
                details: format!("gcd recorded for n = {n} outside [2..{BINOMIAL_GCD_MAX_N}]"),
            });
        }
        if binomial_gcd(n) != g {
            return Err(Error::EvidenceRejected {
                details: format!("recorded gcd {g}, table says {}", binomial_gcd(n)),
            });
        }
        // Classical characterization as a second, independent path.
        if (g > 1) != gsb_core::solvability::is_prime_power(n) {
            return Err(Error::EvidenceRejected {
                details: format!("gcd {g} contradicts the prime-power characterization at n = {n}"),
            });
        }
    }
    Ok(())
}

impl std::fmt::Display for Evidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Evidence::Infeasible {
                lower_sum,
                upper_sum,
            } => write!(f, "infeasible (Σℓ = {lower_sum}, Σu = {upper_sum})"),
            Evidence::NoCommunication { witness } => {
                write!(
                    f,
                    "no-communication witness over {} identities",
                    witness.len()
                )
            }
            Evidence::NoCommImpossible => f.write_str("no no-communication map exists"),
            Evidence::DecisionMap(map) => write!(f, "{map}"),
            Evidence::RoundsUnsat { rounds, stats } => write!(
                f,
                "UNSAT through {rounds} round(s) ({} conflicts)",
                stats.conflicts
            ),
            Evidence::Kernel {
                canonical,
                kernel_vectors,
                legal_outputs,
                ..
            } => match (canonical, kernel_vectors) {
                (Some(c), Some(k)) => write!(
                    f,
                    "kernel data: canonical {c}, {k} kernel vectors, {legal_outputs} outputs"
                ),
                _ => write!(f, "counting data: {legal_outputs} outputs"),
            },
            Evidence::ElectionCertificate { rounds, facets } => {
                write!(f, "Theorem 11 certificate on χ^{rounds} ({facets} facets)")
            }
            Evidence::Indeterminate { reason, partial } => {
                write!(f, "indeterminate (stopped: {reason}")?;
                if let Some(stats) = partial {
                    write!(
                        f,
                        "; partial: {} conflicts, {} decisions",
                        stats.conflicts, stats.decisions
                    )?;
                }
                f.write_str(")")
            }
            Evidence::Atlas { max_n, rows } => {
                write!(f, "atlas sweep: {} tasks through n = {max_n}", rows.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_evidence_checks_and_rejects() {
        let spec = SymmetricGsb::renaming(5, 4).unwrap().to_spec(); // Σu = 4 < 5
        let good = Evidence::Infeasible {
            lower_sum: 0,
            upper_sum: 4,
        };
        good.check(&spec).unwrap();
        let wrong_sums = Evidence::Infeasible {
            lower_sum: 1,
            upper_sum: 4,
        };
        assert!(wrong_sums.check(&spec).is_err());
        let feasible = SymmetricGsb::wsb(3).unwrap().to_spec();
        assert!(good.check(&feasible).is_err());
    }

    #[test]
    fn witness_evidence_is_brute_force_checked() {
        let spec = SymmetricGsb::loose_renaming(3).unwrap().to_spec();
        let witness = spec.no_communication_witness().unwrap();
        Evidence::NoCommunication {
            witness: witness.clone(),
        }
        .check(&spec)
        .unwrap();
        // A forged witness (everyone decides 1) violates u = 1.
        let forged = Evidence::NoCommunication {
            witness: vec![1; witness.len()],
        };
        assert!(matches!(
            forged.check(&spec),
            Err(Error::EvidenceRejected { .. })
        ));
        // Wrong arity.
        let short = Evidence::NoCommunication { witness: vec![1] };
        assert!(short.check(&spec).is_err());
    }

    #[test]
    fn no_comm_impossible_corroborated_by_brute_force() {
        let wsb = SymmetricGsb::wsb(3).unwrap().to_spec();
        Evidence::NoCommImpossible.check(&wsb).unwrap();
        let solvable = SymmetricGsb::loose_renaming(3).unwrap().to_spec();
        assert!(Evidence::NoCommImpossible.check(&solvable).is_err());
    }

    #[test]
    fn kernel_evidence_cross_counts() {
        let task = SymmetricGsb::wsb(4).unwrap();
        let spec = task.to_spec();
        let canonical = task.canonical().unwrap();
        let good = Evidence::Kernel {
            canonical: Some(canonical),
            kernel_vectors: Some(canonical.kernel_set().len()),
            legal_outputs: spec.legal_output_count(),
            binomial_gcd: Some(2),
        };
        good.check(&spec).unwrap();
        let wrong_count = Evidence::Kernel {
            canonical: Some(canonical),
            kernel_vectors: Some(canonical.kernel_set().len()),
            legal_outputs: 999,
            binomial_gcd: None,
        };
        assert!(wrong_count.check(&spec).is_err());
        let wrong_gcd = Evidence::Kernel {
            canonical: Some(canonical),
            kernel_vectors: None,
            legal_outputs: spec.legal_output_count(),
            binomial_gcd: Some(7),
        };
        assert!(wrong_gcd.check(&spec).is_err());
    }

    #[test]
    fn election_certificate_evidence_replays() {
        let spec = GsbSpec::election(3).unwrap();
        let facets = protocol_complex(3, 1).facet_count();
        let good = Evidence::ElectionCertificate { rounds: 1, facets };
        good.check(&spec).unwrap();
        let wrong_facets = Evidence::ElectionCertificate {
            rounds: 1,
            facets: facets + 1,
        };
        assert!(wrong_facets.check(&spec).is_err());
        let not_election = SymmetricGsb::wsb(3).unwrap().to_spec();
        assert!(good.check(&not_election).is_err());
    }

    #[test]
    fn atlas_rows_are_replayed() {
        let task = SymmetricGsb::wsb(2).unwrap();
        let c = task.classify();
        let mut rows = Vec::new();
        for n in 2..=2usize {
            for m in 1..=n {
                for t in gsb_core::order::feasible_family(n, m).unwrap() {
                    let c = t.classify();
                    rows.push(AtlasCell {
                        task: t,
                        solvability: c.solvability,
                        justification: c.justification,
                    });
                }
            }
        }
        let good = Evidence::Atlas { max_n: 2, rows };
        good.check_rows().unwrap();
        let forged = Evidence::Atlas {
            max_n: 2,
            rows: vec![AtlasCell {
                task,
                solvability: if c.solvability == Solvability::Open {
                    Solvability::WaitFreeSolvable
                } else {
                    Solvability::Open
                },
                justification: c.justification,
            }],
        };
        assert!(forged.check_rows().is_err());
        // Non-atlas evidence has no row check.
        assert!(Evidence::NoCommImpossible.check_rows().is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Evidence::NoCommImpossible.label(), "no-comm-impossible");
        assert_eq!(
            Evidence::Atlas {
                max_n: 2,
                rows: vec![]
            }
            .label(),
            "atlas"
        );
    }
}
