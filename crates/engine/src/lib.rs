//! # gsb-engine — the unified query→verdict engine
//!
//! One typed entry point for every solvability surface of the workspace.
//! Before this crate, callers picked between four disconnected APIs —
//! `gsb_core::classify()` (the arithmetic characterization),
//! `gsb_topology::SymmetricSearch` (round-bounded decision-map search),
//! the `gsb_algorithms` validation harness, and the bench atlas — each
//! with its own result and error types and no shared evidence format.
//! Here the question is separated from the engine answering it:
//!
//! * [`Query`] = a [`GsbSpec`](gsb_core::GsbSpec) + a [`Question`]
//!   (`Classify`, `SolvableInRounds`, `NoCommWitness`, `Certificate`,
//!   `Atlas`) + [`EngineOpts`] (engine selection, budgets, agreement
//!   mode).
//! * [`Verdict`] = solvability + machine-checkable [`Evidence`] +
//!   [`Provenance`] + [`RunStats`]. [`Evidence::check`] re-verifies the
//!   verdict **independently of the engine that produced it** — decision
//!   maps facet by facet over a freshly built complex, witnesses against
//!   every adversarial identity subset, counts through a second counting
//!   algorithm.
//! * [`Batch`] fans a query set out over rayon with one shared
//!   [`EngineCache`] (the workspace's memo layers, promoted into an
//!   injectable object).
//! * [`Error`] is the workspace-unified error, wrapping all four
//!   per-crate error types; the `gsb_universe` facade re-exports it.
//! * Verdicts serialize to the workspace's hand-rolled JSON report
//!   format and parse back ([`Verdict::to_json`] /
//!   [`Verdict::from_json`]), still checkable after the round trip.
//!
//! ## Quick start
//!
//! ```
//! use gsb_engine::{Evidence, Query};
//! use gsb_core::{Solvability, SymmetricGsb};
//!
//! // Classify weak symmetry breaking for 6 processes…
//! let wsb = SymmetricGsb::wsb(6)?.to_spec();
//! let verdict = Query::classify(wsb.clone()).run()?;
//! assert_eq!(verdict.solvability, Some(Solvability::WaitFreeSolvable));
//!
//! // …and ask the topological engine about one-round solvability: the
//! // UNSAT evidence records the refuting search's counters.
//! let verdict = Query::solvable_in_rounds(wsb, 1).run()?;
//! assert!(matches!(verdict.evidence, Evidence::RoundsUnsat { rounds: 1, .. }));
//! # Ok::<(), gsb_engine::Error>(())
//! ```
//!
//! The `gsb` CLI binary (in the façade crate) is a thin shell over these
//! types: `gsb classify wsb --n 6 --json` prints
//! [`Verdict::to_json`] verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cache;
mod error;
pub mod evidence;
pub mod governor;
pub mod json;
pub mod query;
mod run;
pub mod tasks;
pub mod verdict;

pub use batch::Batch;
pub use cache::{CacheStats, EngineCache};
pub use error::{Error, Result};
pub use evidence::{AtlasCell, Evidence};
pub use governor::Governor;
pub use json::Json;
pub use query::{EngineOpts, Query, Question, SearchEngine};
pub use tasks::{named_task, KNOWN_TASKS};
pub use verdict::{Provenance, RunStats, Verdict};

// Governance vocabulary, re-exported so engine callers can build limits
// and inspect stop reasons without naming `gsb_core` directly.
pub use gsb_core::{Limits, StopReason, Stopped, Ticket};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Query>();
        assert_send_sync::<Verdict>();
        assert_send_sync::<Evidence>();
        assert_send_sync::<EngineCache>();
        assert_send_sync::<Batch>();
        assert_send_sync::<Error>();
    }
}
