//! The shared [`EngineCache`]: the workspace's formerly scattered
//! `OnceLock` memo layers, promoted into one injectable object.
//!
//! Before the engine, memoization lived in per-crate process-wide
//! statics: the binomial-gcd table and kernel-set memo in `gsb-core`,
//! the subdivision memo in `gsb-topology`, and a classification memo
//! inside the bench crate. Those remain (they cache pure functions of
//! small keys), but the *query-level* layers — classifications,
//! no-communication witnesses, and round-bounded search verdicts with
//! their replayable decision maps — now live here, shared across a
//! [`Batch`](crate::Batch)'s rayon workers and across queries of one
//! process via [`EngineCache::global`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use std::sync::Arc;

use gsb_core::govern::{Stopped, Ticket};
use gsb_core::{Classification, GsbSpec, StopReason};
use gsb_topology::{
    shared_protocol_complex, CdclConfig, ChromaticComplex, ConstraintSystem, DecisionMap,
    OrbitFrontier, SearchMode, SearchResult, SearchStats, SymmetricSearch,
};

use crate::error::Error;

/// Hit/miss counters and entry counts of an [`EngineCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Cached classifications.
    pub classifications: usize,
    /// Cached no-communication witness answers.
    pub witnesses: usize,
    /// Cached round-bounded search verdicts.
    pub searches: usize,
    /// Protocol complexes served through the engine's construction layer.
    pub complexes: usize,
    /// Cached constraint systems (fused orbit-quotient instance preps).
    pub systems: usize,
    /// Orbit frontiers kept for incremental round extension.
    pub frontiers: usize,
    /// Frontier sweeps served by extending a cached χ^r frontier to
    /// χ^{r+1} instead of re-streaming from round 0.
    pub extensions: u64,
}

/// A cached search verdict: result, replayable witness (SAT only), and
/// the counters of the solve that produced it.
pub(crate) type SearchEntry = (SearchResult, Option<DecisionMap>, SearchStats);

/// Per-key in-flight build guards: the first thread to miss a key takes
/// its guard and builds; concurrent missers of the **same** key block on
/// that guard, re-check the result map once it frees, and are served the
/// winner's entry instead of duplicate-building a multi-hundred-ms
/// construction (the server's batch fan-outs hit one `(n, rounds)` from
/// many worker threads at once). Different keys build concurrently —
/// the map lock is only held to fetch the guard `Arc`, never across a
/// build.
#[derive(Debug)]
struct BuildGuards<K> {
    guards: Mutex<HashMap<K, Arc<Mutex<()>>>>,
}

// Manual impl: the derive would needlessly require `K: Default`.
impl<K> Default for BuildGuards<K> {
    fn default() -> Self {
        BuildGuards {
            guards: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone> BuildGuards<K> {
    /// The guard for `key` (created on first use).
    fn guard(&self, key: &K) -> Arc<Mutex<()>> {
        let mut guards = self.guards.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(guards.entry(key.clone()).or_default())
    }
}

/// The shared memo layers behind [`Query::run`](crate::Query::run) and
/// [`Batch`](crate::Batch) fan-out.
///
/// All methods take `&self` and are safe to call from rayon workers; the
/// maps are guarded by plain mutexes (lookups are tiny next to the
/// computations they save). Every lock recovers from poisoning: a
/// panicking query (isolated per-entry by [`Batch`](crate::Batch)) must
/// not wedge the shared cache, and the maps only ever hold
/// fully-constructed entries, so the recovered data is sound —
/// in-flight computations insert nothing until they complete.
#[derive(Debug, Default)]
pub struct EngineCache {
    classifications: Mutex<HashMap<GsbSpec, Classification>>,
    witnesses: Mutex<HashMap<GsbSpec, Option<Vec<usize>>>>,
    searches: Mutex<HashMap<(GsbSpec, usize), SearchEntry>>,
    complexes: Mutex<HashMap<(usize, usize), Arc<ChromaticComplex>>>,
    /// Fused instance preps per `(n, rounds)` — spec-independent, so
    /// every task searched at the same parameters shares one system.
    systems: Mutex<HashMap<(usize, usize), Arc<ConstraintSystem>>>,
    /// Deepest orbit frontier per `n`, each in its own slot: frontier
    /// sweeps extend it round by round instead of re-streaming from
    /// round 0, and the per-`n` slot lock doubles as the in-flight
    /// build guard for `systems` — concurrent first-touch of one
    /// `(n, rounds)` serializes on the slot while different `n` build
    /// in parallel (the old single map-wide lock serialized everything).
    frontiers: Mutex<HashMap<usize, Arc<Mutex<OrbitFrontier>>>>,
    /// In-flight guards for `searches`: without them, concurrent
    /// identical queries would each run the full CDCL solve and only
    /// deduplicate post-hoc at insertion.
    search_guards: BuildGuards<(GsbSpec, usize)>,
    hits: AtomicU64,
    misses: AtomicU64,
    extensions: AtomicU64,
}

impl EngineCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        EngineCache::default()
    }

    /// The process-global cache used by [`Query::run`](crate::Query::run).
    #[must_use]
    pub fn global() -> &'static EngineCache {
        static GLOBAL: OnceLock<EngineCache> = OnceLock::new();
        GLOBAL.get_or_init(EngineCache::new)
    }

    /// Classification of `spec`, memoized. Returns the verdict and
    /// whether it was served from the cache.
    #[must_use]
    pub fn classification(&self, spec: &GsbSpec) -> (Classification, bool) {
        if let Some(hit) = self
            .classifications
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(spec)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = spec.classify();
        self.classifications
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(spec.clone())
            .or_insert_with(|| computed.clone());
        (computed, false)
    }

    /// No-communication witness of `spec` (Theorem 9 / its asymmetric
    /// generalization), memoized. Returns the answer and whether it was
    /// served from the cache.
    #[must_use]
    pub fn no_comm_witness(&self, spec: &GsbSpec) -> (Option<Vec<usize>>, bool) {
        if let Some(hit) = self
            .witnesses
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(spec)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = spec.no_communication_witness();
        self.witnesses
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(spec.clone())
            .or_insert_with(|| computed.clone());
        (computed, false)
    }

    /// Round-bounded CDCL search verdict for `(spec, rounds)`, memoized
    /// with its replayable decision map and solver counters. Returns the
    /// entry and whether it was served from the cache.
    ///
    /// The key deliberately excludes `config`: verdicts (and witnesses'
    /// validity) are configuration-independent, so the entry produced by
    /// the first miss is served to every later configuration. Callers
    /// that need config-faithful *counters* (benchmarks) bypass the
    /// cache via [`EngineOpts::use_cache`](crate::EngineOpts::use_cache).
    #[must_use]
    pub fn search(
        &self,
        spec: &GsbSpec,
        rounds: usize,
        config: &CdclConfig,
    ) -> (SearchEntry, bool) {
        self.search_mode(spec, rounds, config, SearchMode::Cdcl, true)
            .expect("plain CDCL mode always reaches a verdict ungoverned")
    }

    /// [`EngineCache::search`] with an explicit [`SearchMode`] and
    /// warm-start policy. `warm_start` lifts a cached `rounds − 1` SAT
    /// decision map through the subdivision into the solver's seed when
    /// one is already present (never triggering a recursive solve);
    /// seeds are perf hints only, so the cached entry stays
    /// configuration-independent.
    ///
    /// # Errors
    ///
    /// [`SearchMode::Local`] cannot refute: when local search exhausts
    /// its restart schedule without a witness this returns
    /// [`Error::Interrupted`] with the partial counters, and nothing is
    /// cached.
    pub fn search_mode(
        &self,
        spec: &GsbSpec,
        rounds: usize,
        config: &CdclConfig,
        mode: SearchMode,
        warm_start: bool,
    ) -> Result<(SearchEntry, bool), Error> {
        let key = (spec.clone(), rounds);
        if let Some(hit) = self
            .searches
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit.clone(), true));
        }
        // In-flight guard: concurrent identical queries block here and
        // are served the winner's entry by the re-check, instead of
        // each running the full solve.
        let guard = self.search_guards.guard(&key);
        let _build = guard.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = self
            .searches
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit.clone(), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // The fused orbit-quotient prep, shared across every spec at
        // the same (n, rounds) and extended incrementally across round
        // sweeps (uncounted: this search is one logical cache lookup).
        let (system, _) = self.constraint_system_inner(spec.n(), rounds);
        let search = SymmetricSearch::with_system(spec.clone(), Some(rounds), system);
        let config = self.seeded_config(spec, rounds, config, warm_start, &search);
        let (result, stats) = search.solve_mode_with(&config, mode);
        let Some(result) = result else {
            return Err(empty_result_error(None, stats));
        };
        let map = search.decision_map(&result);
        let computed = (result, map, stats);
        self.searches
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert_with(|| computed.clone());
        Ok((computed, false))
    }

    /// `config` with the lifted warm-start seed filled in, when wanted,
    /// absent, and liftable from a cached `rounds − 1` SAT entry.
    fn seeded_config(
        &self,
        spec: &GsbSpec,
        rounds: usize,
        config: &CdclConfig,
        warm_start: bool,
        search: &SymmetricSearch,
    ) -> CdclConfig {
        let mut config = config.clone();
        if warm_start && config.warm_start.is_none() {
            config.warm_start = self.lifted_warm_start(spec, rounds, search);
        }
        config
    }

    /// The lifted warm-start seed for `(spec, rounds)`: when the cache
    /// already holds a SAT decision map at `rounds − 1` (a frontier
    /// sweep asking round counts in turn), lift it through the
    /// subdivision — each round-`rounds` class seeds the value its
    /// nested round-`(rounds − 1)` subview was assigned. Never triggers
    /// a recursive solve; a cold cache just means no seed.
    fn lifted_warm_start(
        &self,
        spec: &GsbSpec,
        rounds: usize,
        search: &SymmetricSearch,
    ) -> Option<Arc<Vec<u32>>> {
        let parent_key = (spec.clone(), rounds.checked_sub(1)?);
        let parent_map = {
            let searches = self.searches.lock().unwrap_or_else(|p| p.into_inner());
            let (result, map, _) = searches.get(&parent_key)?;
            if !result.is_solvable() {
                return None;
            }
            // Clone so the lift (signature computations per class) runs
            // outside the cache lock.
            map.clone()?
        };
        let seed = search.lift_warm_start(&parent_map);
        seed.iter().any(|&v| v != 0).then(|| Arc::new(seed))
    }

    /// [`EngineCache::search`] under a governance ticket: cache hits are
    /// served as usual (they cost nothing), misses run the governed
    /// construct + solve. A tripped ticket returns
    /// [`Error::Interrupted`] carrying the partial counters, and the
    /// incomplete result is **not** cached — a later ungoverned (or
    /// better-funded) query recomputes it cleanly.
    pub(crate) fn search_governed(
        &self,
        spec: &GsbSpec,
        rounds: usize,
        config: &CdclConfig,
        mode: SearchMode,
        warm_start: bool,
        ticket: &Ticket,
    ) -> Result<(SearchEntry, bool), Error> {
        let key = (spec.clone(), rounds);
        if let Some(hit) = self
            .searches
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit.clone(), true));
        }
        // Same in-flight guard as the ungoverned path. If the winner's
        // ticket trips it caches nothing and releases the guard; the
        // next waiter re-checks, misses, and retries under its own
        // budget.
        let guard = self.search_guards.guard(&key);
        let _build = guard.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = self
            .searches
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit.clone(), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (system, _) = self.constraint_system_inner_governed(spec.n(), rounds, Some(ticket))?;
        let search = SymmetricSearch::with_system(spec.clone(), Some(rounds), system);
        let config = self.seeded_config(spec, rounds, config, warm_start, &search);
        let (result, stats) = search.solve_mode_governed(&config, mode, Some(ticket));
        let Some(result) = result else {
            return Err(empty_result_error(Some(ticket), stats));
        };
        let map = search.decision_map(&result);
        let computed = (result, map, stats);
        self.searches
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert_with(|| computed.clone());
        Ok((computed, false))
    }

    /// The streamed protocol complex `χ^rounds(Δ^{n−1})`, served through
    /// the engine's construction layer: first use per `(n, rounds)` pulls
    /// the process-wide [`shared_protocol_complex`] build (which carries
    /// its signature quotient from the streaming pipeline) into this
    /// cache, so batch fan-outs and repeated queries account construction
    /// reuse in [`CacheStats`] like every other memo layer.
    #[must_use]
    pub fn complex(&self, n: usize, rounds: usize) -> (Arc<ChromaticComplex>, bool) {
        if let Some(hit) = self
            .complexes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&(n, rounds))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = shared_protocol_complex(n, rounds);
        self.complexes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry((n, rounds))
            .or_insert_with(|| Arc::clone(&built));
        (built, false)
    }

    /// The fused orbit-quotient constraint system for `(n, rounds)`,
    /// memoized — and **extended incrementally**: if a frontier for `n`
    /// is cached at a shallower round (a frontier sweep asking r = 0,
    /// 1, 2, … in turn), it is advanced round by round instead of
    /// re-streamed from round 0, counted in
    /// [`CacheStats::extensions`]. Returns the system and whether it
    /// was served from the cache.
    #[must_use]
    pub fn constraint_system(&self, n: usize, rounds: usize) -> (Arc<ConstraintSystem>, bool) {
        let (system, hit) = self.constraint_system_inner(n, rounds);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        (system, hit)
    }

    /// [`EngineCache::constraint_system`] under a governance ticket:
    /// construction polls the ticket and charges its memory budget. A
    /// tripped ticket returns the [`Stopped`] reason; any cached
    /// frontier is left logically at its previous round (round commits
    /// are atomic — see
    /// [`OrbitFrontier::try_advance`](gsb_topology::OrbitFrontier::try_advance)),
    /// so the cache stays valid for later queries.
    ///
    /// # Errors
    ///
    /// Returns [`Stopped`] when the ticket trips mid-construction.
    pub fn constraint_system_governed(
        &self,
        n: usize,
        rounds: usize,
        ticket: &Ticket,
    ) -> Result<(Arc<ConstraintSystem>, bool), Stopped> {
        let outcome = self.constraint_system_inner_governed(n, rounds, Some(ticket));
        match &outcome {
            Ok((_, true)) => self.hits.fetch_add(1, Ordering::Relaxed),
            _ => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    /// [`EngineCache::constraint_system`] without the shared hit/miss
    /// accounting — the nested call inside [`EngineCache::search`] (one
    /// query = one logical lookup, whatever the internal layering).
    fn constraint_system_inner(&self, n: usize, rounds: usize) -> (Arc<ConstraintSystem>, bool) {
        self.constraint_system_inner_governed(n, rounds, None)
            .expect("ungoverned construction cannot stop")
    }

    /// The frontier slot for `n` (created at round 0 on first use) and
    /// whether it already existed. The map lock is held only for the
    /// lookup — building happens under the slot's own lock.
    fn frontier_slot(&self, n: usize) -> (Arc<Mutex<OrbitFrontier>>, bool) {
        use std::collections::hash_map::Entry;
        let mut slots = self.frontiers.lock().unwrap_or_else(|p| p.into_inner());
        match slots.entry(n) {
            Entry::Occupied(e) => (Arc::clone(e.get()), true),
            Entry::Vacant(e) => (
                Arc::clone(e.insert(Arc::new(Mutex::new(OrbitFrontier::new(n))))),
                false,
            ),
        }
    }

    /// The governed core of the constraint-system layer.
    fn constraint_system_inner_governed(
        &self,
        n: usize,
        rounds: usize,
        ticket: Option<&Ticket>,
    ) -> Result<(Arc<ConstraintSystem>, bool), Stopped> {
        if let Some(hit) = self
            .systems
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&(n, rounds))
        {
            return Ok((Arc::clone(hit), true));
        }
        let (slot, preexisting) = self.frontier_slot(n);
        let mut frontier = slot.lock().unwrap_or_else(|p| p.into_inner());
        // Double-checked under the per-n build lock: a racing builder of
        // the same (n, rounds) may have published while this thread
        // waited on the slot (server worker pools and batch fan-outs hit
        // one key concurrently) — don't re-run a multi-hundred-ms
        // expansion. Builds for *different* n proceed in parallel.
        if let Some(hit) = self
            .systems
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&(n, rounds))
        {
            return Ok((Arc::clone(hit), true));
        }
        let system = if frontier.rounds() <= rounds {
            if preexisting && frontier.rounds() < rounds {
                self.extensions.fetch_add(1, Ordering::Relaxed);
            }
            while frontier.rounds() < rounds {
                // A trip mid-extension leaves the cached frontier at
                // its last completed round.
                frontier.try_advance(ticket)?;
            }
            ConstraintSystem::from_orbit_frontier_governed(&mut frontier, ticket)?
        } else {
            // Cached deeper than requested (a downward query): build
            // fresh without disturbing the deeper cache.
            let mut fresh = OrbitFrontier::new(n);
            for _ in 0..rounds {
                fresh.try_advance(ticket)?;
            }
            ConstraintSystem::from_orbit_frontier_governed(&mut fresh, ticket)?
        };
        let system = Arc::new(system);
        self.systems
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry((n, rounds))
            .or_insert_with(|| Arc::clone(&system));
        Ok((system, false))
    }

    /// Current counters and entry counts.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            classifications: self
                .classifications
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len(),
            witnesses: self
                .witnesses
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len(),
            searches: self
                .searches
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len(),
            complexes: self
                .complexes
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len(),
            systems: self.systems.lock().unwrap_or_else(|p| p.into_inner()).len(),
            frontiers: self
                .frontiers
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len(),
            extensions: self.extensions.load(Ordering::Relaxed),
        }
    }
}

/// One uncached solve through the fused orbit-quotient prep
/// (`SymmetricSearch::from_spec_streaming` — orbit representatives
/// stream straight into the solver instance, no complex is ever
/// materialized), packaging the SAT witness as a replayable
/// [`DecisionMap`]. Uncached runs have no parent entry to lift a warm
/// start from, so the config is used as given.
///
/// # Errors
///
/// [`SearchMode::Local`] exhaustion (no witness, no refutation) comes
/// back as [`Error::Interrupted`] with the partial counters.
pub(crate) fn solve_uncached(
    spec: &GsbSpec,
    rounds: usize,
    config: &CdclConfig,
    mode: SearchMode,
) -> Result<SearchEntry, Error> {
    let search = SymmetricSearch::from_spec_streaming(spec.clone(), rounds);
    let (result, stats) = search.solve_mode_with(config, mode);
    let Some(result) = result else {
        return Err(empty_result_error(None, stats));
    };
    let map = search.decision_map(&result);
    Ok((result, map, stats))
}

/// The [`Error::Interrupted`] for a solve that came back empty: a
/// tripped ticket reports its own stop reason; an *ungoverned* empty
/// result can only be local-search exhaustion, reported as a spent
/// decision budget (the restart schedule is exactly that — a built-in
/// decision budget the engine ran out of).
pub(crate) fn empty_result_error(ticket: Option<&Ticket>, stats: SearchStats) -> Error {
    match ticket {
        Some(t) if t.stop_reason().is_some() => Error::interrupted(t, stats),
        _ => Error::Interrupted {
            reason: StopReason::DecisionBudget,
            partial: Some(stats),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_core::SymmetricGsb;

    #[test]
    fn classification_hits_after_first_miss() {
        let cache = EngineCache::new();
        let spec = SymmetricGsb::wsb(6).unwrap().to_spec();
        let (first, hit1) = cache.classification(&spec);
        let (second, hit2) = cache.classification(&spec);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.classifications, 1);
    }

    #[test]
    fn search_entries_carry_the_decision_map() {
        let cache = EngineCache::new();
        let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        let ((result, map, _stats), hit) = cache.search(&spec, 1, &CdclConfig::default());
        assert!(!hit);
        assert!(result.is_solvable());
        let map = map.expect("SAT entries carry a witness");
        map.check(&spec).unwrap();
        let ((cached, cached_map, _), hit) = cache.search(&spec, 1, &CdclConfig::default());
        assert!(hit);
        assert_eq!(cached, result);
        assert_eq!(cached_map, Some(map));
    }

    #[test]
    fn witness_cache_stores_negative_answers_too() {
        let cache = EngineCache::new();
        let wsb = SymmetricGsb::wsb(4).unwrap().to_spec();
        let (none, hit) = cache.no_comm_witness(&wsb);
        assert!(none.is_none());
        assert!(!hit);
        let (none_again, hit) = cache.no_comm_witness(&wsb);
        assert!(none_again.is_none());
        assert!(hit, "negative answers are cached");
    }

    #[test]
    fn complex_layer_serves_the_streamed_build() {
        let cache = EngineCache::new();
        let (first, hit1) = cache.complex(3, 1);
        let (second, hit2) = cache.complex(3, 1);
        assert!(!hit1);
        assert!(hit2);
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert_eq!(first.facet_count(), 13);
        // The streamed build carries its quotient: this is a lookup.
        assert_eq!(first.signature_quotient().classes.len(), 6);
        assert_eq!(cache.stats().complexes, 1);
    }

    #[test]
    fn frontier_sweeps_extend_cached_rounds_incrementally() {
        let cache = EngineCache::new();
        let spec = SymmetricGsb::wsb(3).unwrap().to_spec();
        // r = 0, 1, 2 in turn: the first builds the n = 3 frontier, the
        // later rounds extend it in place instead of re-streaming.
        for rounds in 0..=2usize {
            let (entry, hit) = cache.search(&spec, rounds, &CdclConfig::default());
            assert!(!hit, "distinct (spec, rounds) keys");
            assert!(!entry.0.is_solvable(), "WSB n=3 is UNSAT through r=2");
        }
        let stats = cache.stats();
        assert_eq!(stats.frontiers, 1, "one cached frontier per n");
        assert_eq!(stats.systems, 3, "one system per (n, rounds)");
        assert_eq!(stats.extensions, 2, "r=1 and r=2 extended the cache");
        // A second task at the same parameters reuses the cached system.
        let slot = SymmetricGsb::slot(3, 2).unwrap().to_spec();
        let (_, hit) = cache.search(&slot, 2, &CdclConfig::default());
        assert!(!hit, "different spec misses the search cache");
        let after = cache.stats();
        assert_eq!(after.extensions, 2, "no new streaming work");
        assert_eq!(after.systems, 3, "the (3, 2) system was shared");
        // A downward query must not clobber the deeper cached frontier.
        let (system_low, _) = cache.constraint_system(3, 1);
        assert_eq!(system_low.class_count(), 6, "χ(Δ²) has 6 classes");
        assert_eq!(cache.stats().frontiers, 1);
    }

    #[test]
    fn global_cache_is_one_instance() {
        let a = EngineCache::global() as *const EngineCache;
        let b = EngineCache::global() as *const EngineCache;
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_first_touch_builds_the_system_once() {
        use std::sync::Barrier;
        let cache = EngineCache::new();
        let threads = 8;
        let barrier = Barrier::new(threads);
        let results: Vec<(Arc<ConstraintSystem>, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cache.constraint_system(4, 2)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let builders = results.iter().filter(|(_, hit)| !hit).count();
        assert_eq!(builders, 1, "exactly one thread builds the (4, 2) system");
        for (system, _) in &results[1..] {
            assert!(
                Arc::ptr_eq(system, &results[0].0),
                "every thread is served the same shared instance"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "losers of the build race count as hits");
        assert_eq!(stats.hits, threads as u64 - 1);
        assert_eq!(stats.systems, 1);
        assert_eq!(stats.frontiers, 1);
        assert_eq!(
            stats.extensions, 0,
            "a fresh slot is a build, not an extension"
        );
    }

    #[test]
    fn concurrent_identical_searches_solve_once() {
        use std::sync::Barrier;
        let cache = EngineCache::new();
        let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        let threads = 8;
        let barrier = Barrier::new(threads);
        let results: Vec<(SearchEntry, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cache.search(&spec, 1, &CdclConfig::default())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let solvers = results.iter().filter(|(_, hit)| !hit).count();
        assert_eq!(solvers, 1, "exactly one thread runs the CDCL solve");
        for ((result, map, _), _) in &results[1..] {
            assert_eq!(result, &results[0].0 .0);
            assert_eq!(map, &results[0].0 .1);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, threads as u64 - 1);
        assert_eq!(stats.searches, 1);
    }
}
