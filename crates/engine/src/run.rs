//! Query execution: one dispatcher from [`Question`] to engines, with
//! cross-engine agreement, evidence construction, and re-verification.

use std::time::Instant;

use gsb_algorithms::harness::{run_synchronous, AlgorithmUnderTest};
use gsb_algorithms::FreeDecisionProtocol;
use gsb_core::solvability::{binomial_gcd, BINOMIAL_GCD_MAX_N};
use gsb_core::{Classification, GsbSpec, Identity, OutputVector, Solvability, StopReason, Ticket};
use gsb_memory::ProtocolFactory;
use gsb_topology::{
    election_impossibility_certificate, shared_protocol_complex, SearchResult, SearchStats,
    SymmetricSearch,
};
use rayon::prelude::*;

use crate::cache::{empty_result_error, solve_uncached, EngineCache, SearchEntry};
use crate::error::{Error, Result};
use crate::evidence::{AtlasCell, Evidence};
use crate::governor::Governor;
use crate::query::{EngineOpts, Query, Question, SearchEngine};
use crate::verdict::{Provenance, RunStats, Verdict};

/// Identity-subset replays are capped at this many simulator runs (the
/// subsets beyond the cap are already covered by the brute-force subset
/// check; the simulator replays exist to exercise the real substrate).
const MAX_SIMULATED_RUNS: usize = 64;

/// Executes `query` against `cache`.
pub(crate) fn execute(query: &Query, cache: &EngineCache) -> Result<Verdict> {
    let start = Instant::now();
    // Governed queries get a ticket (and, with a deadline, a watchdog
    // thread); ungoverned queries take the zero-overhead `None` path.
    let governor = Governor::from_opts(query.opts());
    let ticket = governor.as_ref().map(Governor::ticket);
    // Admission: every question observes a tripped ticket at least
    // once, even closed-form ones that never reach a solver loop.
    let admitted = match ticket {
        // ticket.check poll site (query admission)
        Some(t) => t.check().map_err(Error::from),
        None => Ok(()),
    };
    let outcome = admitted.and_then(|()| match query.question() {
        Question::Classify => run_classify(require_spec(query)?, query.opts(), cache, ticket),
        Question::SolvableInRounds { rounds } => {
            run_rounds(require_spec(query)?, *rounds, query.opts(), cache, ticket)
        }
        Question::NoCommWitness => run_no_comm(require_spec(query)?, query.opts(), cache),
        Question::Certificate { rounds } => {
            run_certificate(require_spec(query)?, *rounds, query.opts(), cache, ticket)
        }
        Question::Atlas { max_n } => run_atlas(*max_n, cache, ticket),
    });
    let mut verdict = match outcome {
        Ok(verdict) => verdict,
        // A stop is a verdict about the *run*, not the task: report it
        // as indeterminate evidence instead of an error.
        Err(Error::Interrupted { reason, partial }) => {
            indeterminate_verdict(query, reason, partial)
        }
        Err(other) => return Err(other),
    };
    if query.opts().check_evidence {
        verdict.check()?;
        verdict.stats.evidence_checked = true;
    }
    if query.opts().simulate_witness {
        if let (Some(spec), Some(witness)) = (query.spec(), verdict.evidence.witness()) {
            verdict.stats.simulated_runs = simulate_witness(spec, witness)?;
        }
    }
    verdict.stats.wall = start.elapsed();
    Ok(verdict)
}

fn require_spec(query: &Query) -> Result<&GsbSpec> {
    query.spec().ok_or_else(|| Error::MissingSpec {
        question: query.question().to_string(),
    })
}

/// The verdict of a governed query that stopped before deciding
/// anything: no solvability claim, [`Evidence::Indeterminate`] carrying
/// the stop reason and whatever counters the interrupted engine kept.
fn indeterminate_verdict(
    query: &Query,
    reason: StopReason,
    partial: Option<SearchStats>,
) -> Verdict {
    Verdict {
        solvability: None,
        evidence: Evidence::Indeterminate { reason, partial },
        provenance: Provenance {
            question: query.question().clone(),
            spec: query.spec().cloned(),
            engines: vec!["governor".into()],
            justification: format!("stopped before a verdict: {reason}"),
            cache_hit: false,
        },
        stats: RunStats {
            search: partial,
            ..RunStats::default()
        },
    }
}

fn classification_of(
    spec: &GsbSpec,
    opts: &EngineOpts,
    cache: &EngineCache,
) -> (Classification, bool) {
    if opts.use_cache {
        cache.classification(spec)
    } else {
        (spec.classify(), false)
    }
}

fn witness_of(
    spec: &GsbSpec,
    opts: &EngineOpts,
    cache: &EngineCache,
) -> (Option<Vec<usize>>, bool) {
    if opts.use_cache {
        cache.no_comm_witness(spec)
    } else {
        (spec.no_communication_witness(), false)
    }
}

/// Runs the round-bounded search with the engine(s) selected in `opts`,
/// enforcing engine-vs-engine agreement when both run. A governed run
/// (ticket present) threads the ticket through construction and solve;
/// a tripped ticket surfaces as [`Error::Interrupted`] with partial
/// counters, which [`execute`] converts to an indeterminate verdict.
fn search_at(
    spec: &GsbSpec,
    rounds: usize,
    opts: &EngineOpts,
    cache: &EngineCache,
    ticket: Option<&Ticket>,
) -> Result<(SearchEntry, bool, Vec<String>)> {
    let cdcl = |cache_wanted: bool| -> Result<(SearchEntry, bool)> {
        match (ticket, cache_wanted) {
            (Some(t), true) => {
                cache.search_governed(spec, rounds, &opts.cdcl, opts.mode, opts.warm_start, t)
            }
            (Some(t), false) => {
                let search =
                    SymmetricSearch::from_spec_streaming_governed(spec.clone(), rounds, Some(t))?;
                let (result, stats) = search.solve_mode_governed(&opts.cdcl, opts.mode, Some(t));
                let Some(result) = result else {
                    return Err(empty_result_error(Some(t), stats));
                };
                let map = search.decision_map(&result);
                Ok(((result, map, stats), false))
            }
            (None, true) => cache.search_mode(spec, rounds, &opts.cdcl, opts.mode, opts.warm_start),
            (None, false) => Ok((solve_uncached(spec, rounds, &opts.cdcl, opts.mode)?, false)),
        }
    };
    let reference = || -> Result<SearchEntry> {
        match ticket {
            Some(t) => {
                let search =
                    SymmetricSearch::from_spec_streaming_governed(spec.clone(), rounds, Some(t))?;
                let (result, stats) = search.solve_reference_governed(t);
                let Some(result) = result else {
                    return Err(Error::interrupted(t, stats));
                };
                let map = search.decision_map(&result);
                Ok((result, map, stats))
            }
            None => {
                let search = SymmetricSearch::new(spec.clone(), rounds);
                let result = search
                    .solve_reference_budgeted(u64::MAX)
                    .expect("unbudgeted reference search cannot exhaust");
                let map = search.decision_map(&result);
                // The ungoverned reference engine keeps no counters;
                // report zero work under one worker so the stats stay
                // honest.
                let stats = SearchStats {
                    workers: 1,
                    ..SearchStats::default()
                };
                Ok((result, map, stats))
            }
        }
    };
    match opts.search {
        SearchEngine::Cdcl => {
            let (entry, hit) = cdcl(opts.use_cache)?;
            Ok((entry, hit, vec!["cdcl".into()]))
        }
        SearchEngine::Reference => Ok((reference()?, false, vec!["reference".into()])),
        SearchEngine::Both => {
            // Forced CDCL, bypassing the cache and the tiny-instance
            // fast path: the whole point of `Both` is a genuine
            // cdcl-vs-reference diff, and the production front door
            // routes small instances to the same backtracker as the
            // reference arm — which would make this check vacuous
            // exactly where a CDCL setup bug would first appear.
            let search =
                SymmetricSearch::from_spec_streaming_governed(spec.clone(), rounds, ticket)?;
            let entry = match ticket {
                Some(t) => {
                    let (result, stats) = search.solve_cdcl_governed(&opts.cdcl, t);
                    let Some(result) = result else {
                        return Err(Error::interrupted(t, stats));
                    };
                    let map = search.decision_map(&result);
                    (result, map, stats)
                }
                None => {
                    let (result, stats) = search.solve_cdcl_with(&opts.cdcl);
                    let map = search.decision_map(&result);
                    (result, map, stats)
                }
            };
            let (ref_result, _, _) = reference()?;
            if entry.0.is_solvable() != ref_result.is_solvable() {
                return Err(Error::Disagreement {
                    question: format!("solvable-in-rounds({rounds})"),
                    details: format!(
                        "on {spec}: cdcl says '{}', reference says '{}'",
                        entry.0, ref_result
                    ),
                });
            }
            Ok((entry, false, vec!["cdcl".into(), "reference".into()]))
        }
    }
}

/// `Question::Classify`: the closed-form classifier, with
/// structure-theory evidence and optional round-bounded agreement.
fn run_classify(
    spec: &GsbSpec,
    opts: &EngineOpts,
    cache: &EngineCache,
    ticket: Option<&Ticket>,
) -> Result<Verdict> {
    let (classification, cache_hit) = classification_of(spec, opts, cache);
    let mut engines = vec!["classifier".to_string()];
    if let Some(max_rounds) = opts.agreement_rounds {
        agreement_sweep(spec, &classification, max_rounds, opts, cache, ticket)?;
        engines.push("cdcl".into());
        engines.push("reference".into());
    }
    let evidence = classify_evidence(spec, &classification, opts, cache)?;
    Ok(Verdict {
        solvability: Some(classification.solvability),
        evidence,
        provenance: Provenance {
            question: Question::Classify,
            spec: Some(spec.clone()),
            engines,
            justification: classification.justification,
            cache_hit,
        },
        stats: RunStats::default(),
    })
}

/// Evidence for a classifier verdict, by verdict kind.
fn classify_evidence(
    spec: &GsbSpec,
    classification: &Classification,
    opts: &EngineOpts,
    cache: &EngineCache,
) -> Result<Evidence> {
    match classification.solvability {
        Solvability::Infeasible => Ok(Evidence::Infeasible {
            lower_sum: spec.lower_bounds().iter().sum(),
            upper_sum: spec.upper_bounds().iter().sum(),
        }),
        Solvability::SolvableWithoutCommunication => {
            let (witness, _) = witness_of(spec, opts, cache);
            let witness = witness.ok_or_else(|| Error::EvidenceRejected {
                details: format!(
                    "classifier ruled {spec} solvable without communication but no witness exists"
                ),
            })?;
            Ok(Evidence::NoCommunication { witness })
        }
        _ => {
            let symmetric = spec.as_symmetric();
            let canonical = symmetric.map(|t| {
                t.canonical()
                    .expect("classified non-infeasible tasks are feasible")
            });
            let n = spec.n();
            Ok(Evidence::Kernel {
                canonical,
                kernel_vectors: canonical.map(|c| c.kernel_set().len()),
                legal_outputs: spec.legal_output_count(),
                binomial_gcd: (2..=BINOMIAL_GCD_MAX_N)
                    .contains(&n)
                    .then(|| binomial_gcd(n)),
            })
        }
    }
}

/// Cross-engine agreement mode: classifier vs. both decision-map engines
/// through `0..=max_rounds`, in the sound directions.
fn agreement_sweep(
    spec: &GsbSpec,
    classification: &Classification,
    max_rounds: usize,
    opts: &EngineOpts,
    cache: &EngineCache,
    ticket: Option<&Ticket>,
) -> Result<()> {
    for rounds in 0..=max_rounds {
        let both = EngineOpts {
            search: SearchEngine::Both,
            ..opts.clone()
        };
        // `Both` enforces cdcl-vs-reference agreement internally.
        let ((result, _, _), _, _) = search_at(spec, rounds, &both, cache, ticket)?;
        // Sound direction 1: a SAT decision map is a wait-free protocol,
        // so a negative classification contradicts it.
        if result.is_solvable() && classification.solvability.is_negative() {
            return Err(Error::Disagreement {
                question: "classify".into(),
                details: format!(
                    "on {spec}: classifier says '{}' but a {rounds}-round decision map exists",
                    classification.solvability
                ),
            });
        }
        // Sound direction 2 is the same check read contrapositively; a
        // round-bounded UNSAT against a *positive* classification is NOT
        // a conflict (no-communication protocols may use identity values,
        // which comparison-based maps cannot).
    }
    Ok(())
}

/// `Question::SolvableInRounds`: the round-bounded search, combined with
/// the classifier for the task-level verdict.
fn run_rounds(
    spec: &GsbSpec,
    rounds: usize,
    opts: &EngineOpts,
    cache: &EngineCache,
    ticket: Option<&Ticket>,
) -> Result<Verdict> {
    let (classification, _) = classification_of(spec, opts, cache);
    let ((result, map, stats), cache_hit, mut engines) =
        search_at(spec, rounds, opts, cache, ticket)?;
    engines.push("classifier".into());
    let (solvability, evidence, justification) = match (&result, map) {
        (SearchResult::Solvable { .. }, Some(map)) => {
            // Always-on soundness guard: a SAT map against a negative
            // classification means one of the engines is wrong.
            if classification.solvability.is_negative() {
                return Err(Error::Disagreement {
                    question: format!("solvable-in-rounds({rounds})"),
                    details: format!(
                        "on {spec}: classifier says '{}' but the search found a map",
                        classification.solvability
                    ),
                });
            }
            let solvability =
                if classification.solvability == Solvability::SolvableWithoutCommunication {
                    Solvability::SolvableWithoutCommunication
                } else {
                    Solvability::WaitFreeSolvable
                };
            let justification = format!(
                "symmetric decision map on χ^{rounds} over {} classes",
                map.classes().len()
            );
            (solvability, Evidence::DecisionMap(map), justification)
        }
        (SearchResult::Solvable { .. }, None) => {
            unreachable!("engine searches always package SAT witnesses")
        }
        (SearchResult::Unsolvable, _) => {
            let justification = format!(
                "no symmetric decision map through {rounds} round(s); overall: {}",
                classification.justification
            );
            (
                classification.solvability,
                Evidence::RoundsUnsat { rounds, stats },
                justification,
            )
        }
    };
    Ok(Verdict {
        solvability: Some(solvability),
        evidence,
        provenance: Provenance {
            question: Question::SolvableInRounds { rounds },
            spec: Some(spec.clone()),
            engines,
            justification,
            cache_hit,
        },
        stats: RunStats {
            search: Some(stats),
            ..RunStats::default()
        },
    })
}

/// `Question::NoCommWitness`: Theorem 9 and its asymmetric
/// generalization.
fn run_no_comm(spec: &GsbSpec, opts: &EngineOpts, cache: &EngineCache) -> Result<Verdict> {
    let (witness, cache_hit) = witness_of(spec, opts, cache);
    let (solvability, evidence, justification, engines) = match witness {
        Some(witness) => (
            Solvability::SolvableWithoutCommunication,
            Evidence::NoCommunication { witness },
            if spec.is_symmetric() {
                "Theorem 9 witness partition".to_string()
            } else {
                "interval-partition generalization of Theorem 9".to_string()
            },
            vec!["theorem9".to_string()],
        ),
        None => {
            let (classification, _) = classification_of(spec, opts, cache);
            (
                classification.solvability,
                Evidence::NoCommImpossible,
                format!(
                    "no no-communication map; overall: {}",
                    classification.justification
                ),
                vec!["theorem9".to_string(), "classifier".to_string()],
            )
        }
    };
    Ok(Verdict {
        solvability: Some(solvability),
        evidence,
        provenance: Provenance {
            question: Question::NoCommWitness,
            spec: Some(spec.clone()),
            engines,
            justification,
            cache_hit,
        },
        stats: RunStats::default(),
    })
}

/// `Question::Certificate`: the strongest machine-checkable certificate
/// available at this round bound.
fn run_certificate(
    spec: &GsbSpec,
    rounds: usize,
    opts: &EngineOpts,
    cache: &EngineCache,
    ticket: Option<&Ticket>,
) -> Result<Verdict> {
    // 1. A no-communication witness is the cheapest positive certificate.
    let (witness, cache_hit) = witness_of(spec, opts, cache);
    if let Some(witness) = witness {
        return Ok(Verdict {
            solvability: Some(Solvability::SolvableWithoutCommunication),
            evidence: Evidence::NoCommunication { witness },
            provenance: Provenance {
                question: Question::Certificate { rounds },
                spec: Some(spec.clone()),
                engines: vec!["theorem9".into()],
                justification: "Theorem 9 witness partition".into(),
                cache_hit,
            },
            stats: RunStats::default(),
        });
    }
    // 2. Election gets the polynomial structural certificate (Theorem 11
    //    proper), which scales past the search.
    let n = spec.n();
    if n >= 2 && *spec == GsbSpec::election(n)? {
        election_impossibility_certificate(n, rounds).map_err(gsb_topology::Error::from)?;
        // The streamed complex, through the engine's construction layer
        // (accounted in the cache stats) — the certificate above used
        // the same shared build.
        let facets = if opts.use_cache {
            cache.complex(n, rounds).0.facet_count()
        } else {
            shared_protocol_complex(n, rounds).facet_count()
        };
        return Ok(Verdict {
            solvability: Some(Solvability::NotWaitFreeSolvable),
            evidence: Evidence::ElectionCertificate { rounds, facets },
            provenance: Provenance {
                question: Question::Certificate { rounds },
                spec: Some(spec.clone()),
                engines: vec!["theorem11-certificate".into()],
                justification: format!(
                    "pseudomanifold + per-color linkage + corner symmetry on χ^{rounds}"
                ),
                cache_hit: false,
            },
            stats: RunStats::default(),
        });
    }
    // 3. Otherwise the round-bounded search: SAT gives a replayable map,
    //    UNSAT the refutation counters.
    let mut verdict = run_rounds(spec, rounds, opts, cache, ticket)?;
    verdict.provenance.question = Question::Certificate { rounds };
    Ok(verdict)
}

/// `Question::Atlas`: classify every feasible symmetric task with
/// `n ≤ max_n`, fanned out over rayon with the shared cache.
fn run_atlas(max_n: usize, cache: &EngineCache, ticket: Option<&Ticket>) -> Result<Verdict> {
    if max_n < 2 {
        return Err(Error::Unsupported {
            reason: format!("atlas needs max_n ≥ 2, got {max_n}"),
        });
    }
    let families: Vec<(usize, usize)> = (2..=max_n)
        .flat_map(|n| (1..=n).map(move |m| (n, m)))
        .collect();
    let per_family: Vec<Result<Vec<AtlasCell>>> = families
        .into_par_iter()
        .map(|(n, m)| {
            if let Some(t) = ticket {
                // ticket.check poll site (per-family stride)
                t.check()?;
            }
            let family = gsb_core::order::feasible_family(n, m).map_err(Error::Core)?;
            Ok(family
                .into_iter()
                .map(|task| {
                    let (c, _) = cache.classification(&task.to_spec());
                    AtlasCell {
                        task,
                        solvability: c.solvability,
                        justification: c.justification,
                    }
                })
                .collect())
        })
        .collect();
    let mut rows = Vec::new();
    for family in per_family {
        rows.extend(family?);
    }
    let justification = format!("classifier sweep over {} feasible tasks", rows.len());
    Ok(Verdict {
        solvability: None,
        evidence: Evidence::Atlas { max_n, rows },
        provenance: Provenance {
            question: Question::Atlas { max_n },
            spec: None,
            engines: vec!["classifier".into()],
            justification,
            cache_hit: false,
        },
        stats: RunStats::default(),
    })
}

/// Replays a no-communication witness through the actual shared-memory
/// simulator: one synchronous run per adversarial `n`-subset of the
/// identity space (capped at [`MAX_SIMULATED_RUNS`]), each outcome
/// checked against the spec. Returns the number of runs executed.
fn simulate_witness(spec: &GsbSpec, witness: &[usize]) -> Result<usize> {
    let n = spec.n();
    let ids_space = witness.len();
    if n == 1 {
        // One process, one identity: nothing adversarial to schedule.
        return Ok(0);
    }
    let witness_owned: Vec<usize> = witness.to_vec();
    let factory: Box<ProtocolFactory<'_>> = Box::new(move |_pid, id, _n| {
        Box::new(
            FreeDecisionProtocol::from_witness(&witness_owned, id)
                .expect("identities come from the witness's space"),
        )
    });
    let algo = AlgorithmUnderTest {
        spec: spec.clone(),
        factory: &factory,
        oracles: &Vec::new,
    };
    let mut runs = 0usize;
    let mut subset: Vec<usize> = (0..n).collect();
    loop {
        let ids: Vec<Identity> = subset
            .iter()
            .map(|&i| Identity::new(i as u32 + 1).expect("identities are positive"))
            .collect();
        let outcome = run_synchronous(&algo, &ids)?;
        let output = OutputVector::try_from(&outcome).map_err(Error::Core)?;
        if !spec.is_legal_output(&output) {
            return Err(Error::EvidenceRejected {
                details: format!(
                    "simulated witness run with identities {ids:?} decided {output}, \
                     illegal for {spec}"
                ),
            });
        }
        runs += 1;
        if runs >= MAX_SIMULATED_RUNS {
            break;
        }
        if !gsb_core::counting::next_index_subset(&mut subset, ids_space) {
            break;
        }
    }
    Ok(runs)
}
