//! The workspace-unified error type.
//!
//! Before the engine, each subsystem crate answered solvability questions
//! through its own error type and callers had to juggle four `Result`
//! vocabularies. [`Error`] wraps all four per-crate errors plus the
//! engine's own failure modes (missing spec, cross-engine disagreement,
//! rejected evidence, exhausted budgets, malformed JSON). The
//! `gsb_universe` facade re-exports it as `gsb_universe::Error`.

use std::fmt;

/// A specialized [`Result`](std::result::Result) type for engine
/// operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified error type of the query→verdict engine (re-exported as
/// `gsb_universe::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A task-model error from `gsb-core` (invalid spec, infeasible…).
    Core(gsb_core::Error),
    /// A simulation error from `gsb-memory` (step limits, protocol
    /// violations…).
    Memory(gsb_memory::Error),
    /// An algorithm-layer error from `gsb-algorithms` (unsupported
    /// configuration, spec violation in a sweep…).
    Algorithms(gsb_algorithms::Error),
    /// A topology-layer error from `gsb-topology` (witness replay or
    /// certificate failure).
    Topology(gsb_topology::Error),
    /// The question needs a task specification but the query has none
    /// (only [`Question::Atlas`](crate::Question::Atlas) runs spec-less).
    MissingSpec {
        /// Label of the question that was asked.
        question: String,
    },
    /// The query is well-formed but outside what the engine supports.
    Unsupported {
        /// Human-readable description.
        reason: String,
    },
    /// **Cross-engine disagreement**: two verdict sources that must
    /// concur (classifier vs. round-bounded search, or the CDCL engine
    /// vs. the reference backtracker) produced conflicting answers. This
    /// is a diagnostic error — it means a soundness bug somewhere, not a
    /// property of the task.
    Disagreement {
        /// Label of the question being answered.
        question: String,
        /// What disagreed with what.
        details: String,
    },
    /// The verdict's evidence failed its independent re-verification.
    /// Like [`Error::Disagreement`], this flags an engine bug.
    EvidenceRejected {
        /// What the re-check found.
        details: String,
    },
    /// A budgeted engine (the reference backtracker) exhausted its node
    /// budget before reaching a verdict.
    ///
    /// **Legacy surface**: since the governance layer landed, budget and
    /// deadline exhaustion is reported as an *indeterminate verdict*
    /// ([`Evidence::Indeterminate`](crate::Evidence::Indeterminate)),
    /// not an error. The variant is kept so existing matches still
    /// compile; the engine no longer constructs it.
    BudgetExhausted {
        /// The configured node budget.
        budget: u64,
    },
    /// A governed computation stopped before reaching a verdict
    /// (cancellation, deadline, budget exhaustion, or an injected
    /// fault). Internal to the dispatcher: [`execute`](crate::Query::run)
    /// translates it into an indeterminate [`Verdict`](crate::Verdict)
    /// rather than surfacing it to callers.
    Interrupted {
        /// The first limit that tripped.
        reason: gsb_core::StopReason,
        /// Counters accumulated before the stop, when the interrupted
        /// engine kept any.
        partial: Option<gsb_topology::SearchStats>,
    },
    /// A query panicked. Only produced by [`Batch`](crate::Batch), whose
    /// per-query panic isolation converts the unwind into this error so
    /// sibling queries complete undisturbed.
    Panicked {
        /// The panic payload, when it was a string.
        details: String,
    },
    /// A JSON report could not be parsed back into a verdict.
    Json {
        /// Parse failure description.
        details: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "core error: {e}"),
            Error::Memory(e) => write!(f, "simulation error: {e}"),
            Error::Algorithms(e) => write!(f, "algorithm error: {e}"),
            Error::Topology(e) => write!(f, "topology error: {e}"),
            Error::MissingSpec { question } => {
                write!(f, "question '{question}' needs a task specification")
            }
            Error::Unsupported { reason } => write!(f, "unsupported query: {reason}"),
            Error::Disagreement { question, details } => {
                write!(f, "engines disagree on '{question}': {details}")
            }
            Error::EvidenceRejected { details } => {
                write!(f, "evidence failed re-verification: {details}")
            }
            Error::BudgetExhausted { budget } => {
                write!(f, "reference engine exhausted its {budget}-node budget")
            }
            Error::Interrupted { reason, .. } => {
                write!(f, "computation stopped: {reason}")
            }
            Error::Panicked { details } => {
                write!(f, "query panicked: {details}")
            }
            Error::Json { details } => write!(f, "malformed verdict JSON: {details}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Memory(e) => Some(e),
            Error::Algorithms(e) => Some(e),
            Error::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gsb_core::Error> for Error {
    fn from(e: gsb_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<gsb_memory::Error> for Error {
    fn from(e: gsb_memory::Error) -> Self {
        Error::Memory(e)
    }
}

impl From<gsb_algorithms::Error> for Error {
    fn from(e: gsb_algorithms::Error) -> Self {
        Error::Algorithms(e)
    }
}

impl From<gsb_topology::Error> for Error {
    fn from(e: gsb_topology::Error) -> Self {
        Error::Topology(e)
    }
}

impl Error {
    /// An [`Error::Interrupted`] carrying the ticket's recorded stop
    /// reason and the partial counters the interrupted engine returned.
    pub(crate) fn interrupted(
        ticket: &gsb_core::Ticket,
        partial: gsb_topology::SearchStats,
    ) -> Self {
        Error::Interrupted {
            reason: ticket
                .stop_reason()
                .unwrap_or(gsb_core::StopReason::Cancelled),
            partial: Some(partial),
        }
    }
}

impl From<gsb_core::Stopped> for Error {
    fn from(stopped: gsb_core::Stopped) -> Self {
        Error::Interrupted {
            reason: stopped.reason,
            partial: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_all_four_subsystem_errors() {
        let core: Error = gsb_core::Error::DuplicateIdentity { id: 3 }.into();
        assert!(core.to_string().contains("core error"));
        let memory: Error = gsb_memory::Error::InvalidConfig { reason: "x".into() }.into();
        assert!(memory.to_string().contains("simulation error"));
        let algorithms: Error = gsb_algorithms::Error::Unsupported { reason: "y".into() }.into();
        assert!(algorithms.to_string().contains("algorithm error"));
        let topology: Error =
            gsb_topology::Error::from(gsb_topology::CertificateFailure::NotPseudomanifold).into();
        assert!(topology.to_string().contains("topology error"));
        use std::error::Error as _;
        for e in [core, memory, algorithms, topology] {
            assert!(e.source().is_some(), "{e} has a source");
        }
    }

    #[test]
    fn engine_variants_display() {
        let e = Error::Disagreement {
            question: "classify".into(),
            details: "classifier says UNSAT, search found a map".into(),
        };
        assert!(e.to_string().contains("disagree"));
        assert!(Error::BudgetExhausted { budget: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
