//! The engine's resource governor: one [`Ticket`] per governed query,
//! plus a shared watchdog thread that backstops wall-clock deadlines.
//!
//! Governed loops poll their ticket cooperatively (see
//! [`gsb_core::govern`]), which bounds how late a deadline can be
//! noticed by the polling stride. For solves whose stride is long —
//! a CDCL burst between conflict checkpoints, a huge orbit expansion —
//! the [`Governor`] also registers the deadline with a watchdog that
//! trips the ticket with [`StopReason::Deadline`] the moment the
//! deadline passes, so the *next* poll anywhere in the stack observes
//! the stop immediately instead of re-deriving the deadline from
//! `Instant::now()` late.
//!
//! The watchdog is one process-wide service thread, parked on a channel
//! until the earliest registered deadline. Registering and
//! deregistering are single channel sends, so a governed query pays
//! nanoseconds for deadline coverage rather than a thread spawn + join
//! per query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, OnceLock};
use std::time::Instant;

use gsb_core::govern::{StopReason, Ticket};

use crate::query::EngineOpts;

/// Per-query governance: the ticket threaded through construct/solve
/// loops, and the watchdog registration (when a deadline is set).
///
/// Dropping the governor deregisters the deadline from the watchdog.
#[derive(Debug)]
pub struct Governor {
    ticket: Ticket,
    watch_id: Option<u64>,
}

impl Governor {
    /// A governor for the limits in `opts`, or `None` when `opts`
    /// requests no governance (the ungoverned fast path: no ticket, no
    /// polls, zero overhead).
    #[must_use]
    pub fn from_opts(opts: &EngineOpts) -> Option<Self> {
        opts.is_governed().then(|| Self::new(opts))
    }

    /// A governor for the limits in `opts`; the deadline clock starts
    /// now.
    #[must_use]
    pub fn new(opts: &EngineOpts) -> Self {
        let ticket = Ticket::new(opts.limits());
        let watch_id = opts
            .deadline
            .map(|d| watchdog_watch(ticket.clone(), Instant::now() + d));
        Governor { ticket, watch_id }
    }

    /// The ticket to thread through governed loops.
    #[must_use]
    pub fn ticket(&self) -> &Ticket {
        &self.ticket
    }
}

impl Drop for Governor {
    fn drop(&mut self) {
        if let Some(id) = self.watch_id.take() {
            watchdog_unwatch(id);
        }
    }
}

/// A watchdog registration change.
enum Command {
    /// Trip `ticket` with [`StopReason::Deadline`] once `deadline`
    /// passes (unless unwatched first).
    Watch {
        id: u64,
        ticket: Ticket,
        deadline: Instant,
    },
    /// The governed query finished — forget the registration.
    Unwatch { id: u64 },
}

/// The shared watchdog's command channel; the service thread starts on
/// first use and lives for the rest of the process, parked on the
/// channel whenever nothing is registered.
fn watchdog() -> &'static mpsc::Sender<Command> {
    static SERVICE: OnceLock<mpsc::Sender<Command>> = OnceLock::new();
    SERVICE.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<Command>();
        std::thread::spawn(move || watchdog_loop(&rx));
        tx
    })
}

/// The service body: sleep until the earliest registered deadline or
/// the next command, whichever comes first; trip everything past due.
fn watchdog_loop(rx: &mpsc::Receiver<Command>) {
    let mut watches: Vec<(u64, Instant, Ticket)> = Vec::new();
    loop {
        let now = Instant::now();
        watches.retain(|(_, deadline, ticket)| {
            let due = *deadline <= now;
            if due {
                ticket.trip(StopReason::Deadline);
            }
            !due
        });
        let next = watches.iter().map(|&(_, deadline, _)| deadline).min();
        // A disconnect means the process is tearing the statics down —
        // nothing left to watch over.
        let command = match next {
            Some(deadline) => match rx.recv_timeout(deadline.saturating_duration_since(now)) {
                Ok(command) => command,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            },
            None => match rx.recv() {
                Ok(command) => command,
                Err(mpsc::RecvError) => return,
            },
        };
        match command {
            Command::Watch {
                id,
                ticket,
                deadline,
            } => watches.push((id, deadline, ticket)),
            Command::Unwatch { id } => watches.retain(|&(watch_id, ..)| watch_id != id),
        }
    }
}

/// Registers a deadline; returns the id to deregister with.
fn watchdog_watch(ticket: Ticket, deadline: Instant) -> u64 {
    static NEXT_ID: AtomicU64 = AtomicU64::new(0);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    // A send failure means the service thread is gone (process
    // teardown); the cooperative polls still enforce the deadline.
    let _ = watchdog().send(Command::Watch {
        id,
        ticket,
        deadline,
    });
    id
}

/// Deregisters a deadline (the query finished before it passed).
fn watchdog_unwatch(id: u64) {
    let _ = watchdog().send(Command::Unwatch { id });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ungoverned_opts_get_no_governor() {
        assert!(Governor::from_opts(&EngineOpts::default()).is_none());
    }

    #[test]
    fn governed_opts_get_a_ticket_with_their_limits() {
        let opts = EngineOpts {
            conflict_budget: Some(10),
            ..EngineOpts::default()
        };
        let governor = Governor::from_opts(&opts).expect("governed");
        assert!(governor.ticket().check().is_ok());
        assert!(governor.ticket().charge_conflicts(11).is_err());
    }

    #[test]
    fn legacy_reference_budget_governs_the_node_budget() {
        #[allow(deprecated)]
        let opts = EngineOpts {
            reference_budget: Some(5),
            ..EngineOpts::default()
        };
        assert!(opts.is_governed());
        assert_eq!(opts.effective_node_budget(), Some(5));
        let governor = Governor::from_opts(&opts).expect("governed");
        assert!(governor.ticket().charge_nodes(6).is_err());
    }

    #[test]
    fn watchdog_trips_a_rarely_polling_solve() {
        let opts = EngineOpts {
            deadline: Some(Duration::from_millis(10)),
            ..EngineOpts::default()
        };
        let governor = Governor::new(&opts);
        let ticket = governor.ticket().clone();
        // Simulate a loop that never reaches a poll site: the watchdog
        // must trip the ticket on its own.
        let deadline = Instant::now() + Duration::from_secs(10);
        while ticket.stop_reason().is_none() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ticket.stop_reason(), Some(StopReason::Deadline));
    }

    #[test]
    fn dropping_the_governor_stands_the_watchdog_down() {
        let opts = EngineOpts {
            deadline: Some(Duration::from_secs(3600)),
            ..EngineOpts::default()
        };
        let governor = Governor::new(&opts);
        let ticket = governor.ticket().clone();
        drop(governor); // must not hang for an hour, must not trip
        assert_eq!(ticket.stop_reason(), None);
    }

    #[test]
    fn the_watchdog_serves_overlapping_deadlines_independently() {
        let short = EngineOpts {
            deadline: Some(Duration::from_millis(10)),
            ..EngineOpts::default()
        };
        let long = EngineOpts {
            deadline: Some(Duration::from_secs(3600)),
            ..EngineOpts::default()
        };
        let short_governor = Governor::new(&short);
        let long_governor = Governor::new(&long);
        let short_ticket = short_governor.ticket().clone();
        let stop = Instant::now() + Duration::from_secs(10);
        while short_ticket.stop_reason().is_none() {
            assert!(Instant::now() < stop, "short deadline never tripped");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(short_ticket.stop_reason(), Some(StopReason::Deadline));
        // The long watch is untouched by its neighbor tripping.
        assert_eq!(long_governor.ticket().stop_reason(), None);
    }
}
