//! Hand-rolled JSON for verdict reports: a tiny value model with a
//! writer **and** a parser, so every report the engine emits can be read
//! back ([`Verdict::from_json`]) and its evidence re-checked offline.
//!
//! This is the same dependency posture as the bench crate's
//! `BENCH_*.json` emitters (the offline build has no serde); the engine
//! adds the inverse direction, which the round-trip tests pin.
//!
//! Two conventions keep the format lossless:
//!
//! * `u128` quantities (output counts, gcds) are emitted as **strings** —
//!   JSON numbers are doubles and would silently round above `2^53`;
//! * decision maps serialize as `(n, rounds, assignment)` and are
//!   rebuilt through the deterministic signature quotient on parse.

use std::fmt::Write as _;
use std::time::Duration;

use gsb_core::{GsbSpec, Solvability, SymmetricGsb};
use gsb_topology::{DecisionMap, SearchStats};

use crate::error::{Error, Result};
use crate::evidence::{AtlasCell, Evidence};
use crate::query::Question;
use crate::verdict::{Provenance, RunStats, Verdict};

/// A JSON value. Objects preserve key order (reports stay diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (doubles, like JSON itself).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline (the
    /// report-file convention of the bench emitters).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on malformed input (with a byte offset).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            len: text.len(),
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if let Some(&(at, c)) = p.chars.peek() {
            return Err(json_err(
                at,
                format!("trailing content starting with '{c}'"),
            ));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_err(at: usize, details: impl std::fmt::Display) -> Error {
    Error::Json {
        details: format!("at byte {at}: {details}"),
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    len: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<()> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((at, c)) => Err(json_err(at, format!("expected '{want}', found '{c}'"))),
            None => Err(json_err(self.len, format!("expected '{want}', found end"))),
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => Ok(Json::Str(self.string()?)),
            Some((_, 't')) => self.keyword("true", Json::Bool(true)),
            Some((_, 'f')) => self.keyword("false", Json::Bool(false)),
            Some((_, 'n')) => self.keyword("null", Json::Null),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some((at, c)) => Err(json_err(at, format!("unexpected '{c}'"))),
            None => Err(json_err(self.len, "unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json> {
        let mut text = String::new();
        let start = self.chars.peek().map_or(self.len, |&(at, _)| at);
        while let Some(&(_, c)) = self.chars.peek() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                text.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| json_err(start, format!("bad number '{text}': {e}")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((at, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((at, c)) = self.chars.next() else {
                                return Err(json_err(self.len, "truncated \\u escape"));
                            };
                            let digit = c
                                .to_digit(16)
                                .ok_or_else(|| json_err(at, format!("bad hex digit '{c}'")))?;
                            code = code * 16 + digit;
                        }
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((at, c)) => return Err(json_err(at, format!("bad escape '\\{c}'"))),
                    None => return Err(json_err(at, "truncated escape")),
                },
                Some((_, c)) => out.push(c),
                None => return Err(json_err(self.len, "unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => {}
                Some((_, ']')) => return Ok(Json::Arr(items)),
                Some((at, c)) => {
                    return Err(json_err(at, format!("expected ',' or ']', found '{c}'")))
                }
                None => return Err(json_err(self.len, "unterminated array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => {}
                Some((_, '}')) => return Ok(Json::Obj(pairs)),
                Some((at, c)) => {
                    return Err(json_err(at, format!("expected ',' or '}}', found '{c}'")))
                }
                None => return Err(json_err(self.len, "unterminated object")),
            }
        }
    }
}

// ── field helpers ───────────────────────────────────────────────────────

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json> {
    obj.get(key).ok_or_else(|| Error::Json {
        details: format!("missing field '{key}'"),
    })
}

fn usize_field(obj: &Json, key: &str) -> Result<usize> {
    let x = field(obj, key)?.as_f64().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a number"),
    })?;
    Ok(x as usize)
}

fn u64_field(obj: &Json, key: &str) -> Result<u64> {
    let x = field(obj, key)?.as_f64().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a number"),
    })?;
    Ok(x as u64)
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str> {
    field(obj, key)?.as_str().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a string"),
    })
}

fn bool_field(obj: &Json, key: &str) -> Result<bool> {
    field(obj, key)?.as_bool().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a boolean"),
    })
}

fn usize_array(value: &Json, key: &str) -> Result<Vec<usize>> {
    let items = value.as_arr().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not an array"),
    })?;
    items
        .iter()
        .map(|item| {
            item.as_f64()
                .map(|x| x as usize)
                .ok_or_else(|| Error::Json {
                    details: format!("field '{key}' holds a non-number"),
                })
        })
        .collect()
}

fn u128_str_field(obj: &Json, key: &str) -> Result<u128> {
    str_field(obj, key)?.parse().map_err(|e| Error::Json {
        details: format!("field '{key}' is not a u128 string: {e}"),
    })
}

// ── domain (de)serialization ────────────────────────────────────────────

fn spec_to_json(spec: &GsbSpec) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::Num(spec.n() as f64)),
        (
            "lower".into(),
            Json::Arr(
                spec.lower_bounds()
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect(),
            ),
        ),
        (
            "upper".into(),
            Json::Arr(
                spec.upper_bounds()
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect(),
            ),
        ),
    ])
}

fn spec_from_json(value: &Json) -> Result<GsbSpec> {
    let n = usize_field(value, "n")?;
    let lower = usize_array(field(value, "lower")?, "lower")?;
    let upper = usize_array(field(value, "upper")?, "upper")?;
    GsbSpec::new(n, lower, upper).map_err(Error::Core)
}

fn symmetric_to_json(task: &SymmetricGsb) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::Num(task.n() as f64)),
        ("m".into(), Json::Num(task.m() as f64)),
        ("l".into(), Json::Num(task.l() as f64)),
        ("u".into(), Json::Num(task.u() as f64)),
    ])
}

fn symmetric_from_json(value: &Json) -> Result<SymmetricGsb> {
    SymmetricGsb::new(
        usize_field(value, "n")?,
        usize_field(value, "m")?,
        usize_field(value, "l")?,
        usize_field(value, "u")?,
    )
    .map_err(Error::Core)
}

fn stats_to_json(stats: &SearchStats) -> Json {
    Json::Obj(vec![
        ("decisions".into(), Json::Num(stats.decisions as f64)),
        ("conflicts".into(), Json::Num(stats.conflicts as f64)),
        ("propagations".into(), Json::Num(stats.propagations as f64)),
        ("restarts".into(), Json::Num(stats.restarts as f64)),
        ("learned".into(), Json::Num(stats.learned as f64)),
        (
            "symmetric_images".into(),
            Json::Num(stats.symmetric_images as f64),
        ),
        ("imported".into(), Json::Num(stats.imported as f64)),
        ("deleted".into(), Json::Num(stats.deleted as f64)),
        ("workers".into(), Json::Num(stats.workers as f64)),
    ])
}

fn stats_from_json(value: &Json) -> Result<SearchStats> {
    Ok(SearchStats {
        decisions: u64_field(value, "decisions")?,
        conflicts: u64_field(value, "conflicts")?,
        propagations: u64_field(value, "propagations")?,
        restarts: u64_field(value, "restarts")?,
        learned: u64_field(value, "learned")?,
        symmetric_images: u64_field(value, "symmetric_images")?,
        imported: u64_field(value, "imported")?,
        deleted: u64_field(value, "deleted")?,
        workers: usize_field(value, "workers")?,
    })
}

impl Question {
    /// Serializes the question as a tagged JSON object.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let mut pairs = vec![("kind".to_string(), Json::Str(self.label().into()))];
        match self {
            Question::SolvableInRounds { rounds } | Question::Certificate { rounds } => {
                pairs.push(("rounds".into(), Json::Num(*rounds as f64)));
            }
            Question::Atlas { max_n } => pairs.push(("max_n".into(), Json::Num(*max_n as f64))),
            Question::Classify | Question::NoCommWitness => {}
        }
        Json::Obj(pairs)
    }

    /// Parses a question from its tagged JSON object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on unknown kinds or missing fields.
    pub fn from_json_value(value: &Json) -> Result<Question> {
        match str_field(value, "kind")? {
            "classify" => Ok(Question::Classify),
            "solvable-in-rounds" => Ok(Question::SolvableInRounds {
                rounds: usize_field(value, "rounds")?,
            }),
            "no-comm-witness" => Ok(Question::NoCommWitness),
            "certificate" => Ok(Question::Certificate {
                rounds: usize_field(value, "rounds")?,
            }),
            "atlas" => Ok(Question::Atlas {
                max_n: usize_field(value, "max_n")?,
            }),
            other => Err(Error::Json {
                details: format!("unknown question kind '{other}'"),
            }),
        }
    }
}

impl crate::query::EngineOpts {
    /// Serializes the governance-relevant options (engine selection,
    /// deadline, budgets) as a JSON object. The CDCL tuning block and
    /// the verification toggles are runtime-only and not serialized.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        fn opt_u64(x: Option<u64>) -> Json {
            x.map_or(Json::Null, |v| Json::Num(v as f64))
        }
        Json::Obj(vec![
            ("search".into(), Json::Str(self.search.label().into())),
            (
                "deadline_ms".into(),
                self.deadline
                    .map_or(Json::Null, |d| Json::Num(d.as_secs_f64() * 1e3)),
            ),
            ("decision_budget".into(), opt_u64(self.decision_budget)),
            ("conflict_budget".into(), opt_u64(self.conflict_budget)),
            // The deprecated `reference_budget` alias folds in here.
            ("node_budget".into(), opt_u64(self.effective_node_budget())),
            ("memory_budget".into(), opt_u64(self.memory_budget)),
        ])
    }

    /// Parses options back from [`to_json_value`](Self::to_json_value)
    /// output. Missing budget fields stay `None`, so pre-governance
    /// `EngineOpts` JSON (which only carried `search` and possibly the
    /// legacy `reference_budget` key) still parses; a `reference_budget`
    /// key is honored as an alias of `node_budget`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on unknown engine labels or non-numeric
    /// budget fields.
    pub fn from_json_value(value: &Json) -> Result<Self> {
        fn opt_u64(value: &Json, key: &str) -> Result<Option<u64>> {
            match value.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(other) => other
                    .as_f64()
                    .map(|x| Some(x as u64))
                    .ok_or_else(|| Error::Json {
                        details: format!("field '{key}' is not a number"),
                    }),
            }
        }
        let label = str_field(value, "search")?;
        let search = crate::query::SearchEngine::from_label(label).ok_or_else(|| Error::Json {
            details: format!("unknown search engine '{label}'"),
        })?;
        let deadline = match value.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(other) => Some(Duration::from_secs_f64(
                other
                    .as_f64()
                    .ok_or_else(|| Error::Json {
                        details: "field 'deadline_ms' is not a number".into(),
                    })?
                    .max(0.0)
                    / 1e3,
            )),
        };
        let mut opts = crate::query::EngineOpts {
            search,
            deadline,
            decision_budget: opt_u64(value, "decision_budget")?,
            conflict_budget: opt_u64(value, "conflict_budget")?,
            node_budget: opt_u64(value, "node_budget")?,
            memory_budget: opt_u64(value, "memory_budget")?,
            ..Default::default()
        };
        if opts.node_budget.is_none() {
            opts.node_budget = opt_u64(value, "reference_budget")?;
        }
        Ok(opts)
    }
}

impl Evidence {
    /// Serializes the evidence as a tagged JSON object.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let mut pairs = vec![("kind".to_string(), Json::Str(self.label().into()))];
        match self {
            Evidence::Infeasible {
                lower_sum,
                upper_sum,
            } => {
                pairs.push(("lower_sum".into(), Json::Num(*lower_sum as f64)));
                pairs.push(("upper_sum".into(), Json::Num(*upper_sum as f64)));
            }
            Evidence::NoCommunication { witness } => {
                pairs.push((
                    "witness".into(),
                    Json::Arr(witness.iter().map(|&v| Json::Num(v as f64)).collect()),
                ));
            }
            Evidence::NoCommImpossible => {}
            Evidence::DecisionMap(map) => {
                pairs.push(("n".into(), Json::Num(map.n() as f64)));
                pairs.push(("rounds".into(), Json::Num(map.rounds() as f64)));
                pairs.push((
                    "assignment".into(),
                    Json::Arr(
                        map.assignment()
                            .iter()
                            .map(|&v| Json::Num(v as f64))
                            .collect(),
                    ),
                ));
            }
            Evidence::RoundsUnsat { rounds, stats } => {
                pairs.push(("rounds".into(), Json::Num(*rounds as f64)));
                pairs.push(("search".into(), stats_to_json(stats)));
            }
            Evidence::Kernel {
                canonical,
                kernel_vectors,
                legal_outputs,
                binomial_gcd,
            } => {
                pairs.push((
                    "canonical".into(),
                    canonical.as_ref().map_or(Json::Null, symmetric_to_json),
                ));
                pairs.push((
                    "kernel_vectors".into(),
                    kernel_vectors.map_or(Json::Null, |k| Json::Num(k as f64)),
                ));
                pairs.push(("legal_outputs".into(), Json::Str(legal_outputs.to_string())));
                pairs.push((
                    "binomial_gcd".into(),
                    binomial_gcd.map_or(Json::Null, |g| Json::Str(g.to_string())),
                ));
            }
            Evidence::ElectionCertificate { rounds, facets } => {
                pairs.push(("rounds".into(), Json::Num(*rounds as f64)));
                pairs.push(("facets".into(), Json::Num(*facets as f64)));
            }
            Evidence::Indeterminate { reason, partial } => {
                pairs.push(("reason".into(), Json::Str(reason.label().into())));
                pairs.push((
                    "partial".into(),
                    partial.as_ref().map_or(Json::Null, stats_to_json),
                ));
            }
            Evidence::Atlas { max_n, rows } => {
                pairs.push(("max_n".into(), Json::Num(*max_n as f64)));
                pairs.push((
                    "rows".into(),
                    Json::Arr(
                        rows.iter()
                            .map(|row| {
                                Json::Obj(vec![
                                    ("task".into(), symmetric_to_json(&row.task)),
                                    (
                                        "solvability".into(),
                                        Json::Str(row.solvability.label().into()),
                                    ),
                                    ("justification".into(), Json::Str(row.justification.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        Json::Obj(pairs)
    }

    /// Parses evidence from its tagged JSON object. Decision maps are
    /// rebuilt through the deterministic signature quotient
    /// ([`DecisionMap::rebuild`]), so a parsed report is as replayable
    /// as a fresh one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on malformed shapes and wraps replay
    /// failures from the decision-map rebuild.
    pub fn from_json_value(value: &Json) -> Result<Evidence> {
        match str_field(value, "kind")? {
            "infeasible" => Ok(Evidence::Infeasible {
                lower_sum: usize_field(value, "lower_sum")?,
                upper_sum: usize_field(value, "upper_sum")?,
            }),
            "no-communication" => Ok(Evidence::NoCommunication {
                witness: usize_array(field(value, "witness")?, "witness")?,
            }),
            "no-comm-impossible" => Ok(Evidence::NoCommImpossible),
            "decision-map" => {
                let n = usize_field(value, "n")?;
                let rounds = usize_field(value, "rounds")?;
                let assignment = usize_array(field(value, "assignment")?, "assignment")?;
                let map = DecisionMap::rebuild(n, rounds, assignment).map_err(Error::Topology)?;
                Ok(Evidence::DecisionMap(map))
            }
            "rounds-unsat" => Ok(Evidence::RoundsUnsat {
                rounds: usize_field(value, "rounds")?,
                stats: stats_from_json(field(value, "search")?)?,
            }),
            "kernel" => {
                let canonical = match field(value, "canonical")? {
                    Json::Null => None,
                    other => Some(symmetric_from_json(other)?),
                };
                let kernel_vectors = match field(value, "kernel_vectors")? {
                    Json::Null => None,
                    other => Some(other.as_f64().ok_or_else(|| Error::Json {
                        details: "field 'kernel_vectors' is not a number".into(),
                    })? as usize),
                };
                let binomial_gcd = match field(value, "binomial_gcd")? {
                    Json::Null => None,
                    Json::Str(s) => Some(s.parse().map_err(|e| Error::Json {
                        details: format!("field 'binomial_gcd' is not a u128 string: {e}"),
                    })?),
                    _ => {
                        return Err(Error::Json {
                            details: "field 'binomial_gcd' must be a string or null".into(),
                        })
                    }
                };
                Ok(Evidence::Kernel {
                    canonical,
                    kernel_vectors,
                    legal_outputs: u128_str_field(value, "legal_outputs")?,
                    binomial_gcd,
                })
            }
            "election-certificate" => Ok(Evidence::ElectionCertificate {
                rounds: usize_field(value, "rounds")?,
                facets: usize_field(value, "facets")?,
            }),
            "indeterminate" => {
                let label = str_field(value, "reason")?;
                let reason =
                    gsb_core::StopReason::from_label(label).ok_or_else(|| Error::Json {
                        details: format!("unknown stop reason '{label}'"),
                    })?;
                let partial = match field(value, "partial")? {
                    Json::Null => None,
                    other => Some(stats_from_json(other)?),
                };
                Ok(Evidence::Indeterminate { reason, partial })
            }
            "atlas" => {
                let rows = field(value, "rows")?
                    .as_arr()
                    .ok_or_else(|| Error::Json {
                        details: "field 'rows' is not an array".into(),
                    })?
                    .iter()
                    .map(|row| {
                        let label = str_field(row, "solvability")?;
                        Ok(AtlasCell {
                            task: symmetric_from_json(field(row, "task")?)?,
                            solvability: Solvability::from_label(label).ok_or_else(|| {
                                Error::Json {
                                    details: format!("unknown solvability '{label}'"),
                                }
                            })?,
                            justification: str_field(row, "justification")?.to_string(),
                        })
                    })
                    .collect::<Result<Vec<AtlasCell>>>()?;
                Ok(Evidence::Atlas {
                    max_n: usize_field(value, "max_n")?,
                    rows,
                })
            }
            other => Err(Error::Json {
                details: format!("unknown evidence kind '{other}'"),
            }),
        }
    }
}

impl Verdict {
    /// Serializes the verdict as a JSON value.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            (
                "solvability".into(),
                self.solvability
                    .map_or(Json::Null, |s| Json::Str(s.label().into())),
            ),
            ("evidence".into(), self.evidence.to_json_value()),
            (
                "provenance".into(),
                Json::Obj(vec![
                    ("question".into(), self.provenance.question.to_json_value()),
                    (
                        "spec".into(),
                        self.provenance
                            .spec
                            .as_ref()
                            .map_or(Json::Null, spec_to_json),
                    ),
                    (
                        "engines".into(),
                        Json::Arr(
                            self.provenance
                                .engines
                                .iter()
                                .map(|e| Json::Str(e.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "justification".into(),
                        Json::Str(self.provenance.justification.clone()),
                    ),
                    ("cache_hit".into(), Json::Bool(self.provenance.cache_hit)),
                ]),
            ),
            (
                "stats".into(),
                Json::Obj(vec![
                    (
                        "wall_ms".into(),
                        Json::Num(self.stats.wall.as_secs_f64() * 1e3),
                    ),
                    (
                        "evidence_checked".into(),
                        Json::Bool(self.stats.evidence_checked),
                    ),
                    (
                        "simulated_runs".into(),
                        Json::Num(self.stats.simulated_runs as f64),
                    ),
                    (
                        "search".into(),
                        self.stats.search.as_ref().map_or(Json::Null, stats_to_json),
                    ),
                ]),
            ),
        ])
    }

    /// Renders the verdict as a pretty-printed JSON report (the format
    /// the `gsb` CLI emits under `--json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a verdict back from [`Verdict::to_json`] output. The
    /// result is fully usable: its evidence can be re-checked with
    /// [`Verdict::check`](crate::Verdict::check).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<Verdict> {
        let value = Json::parse(text)?;
        let solvability = match field(&value, "solvability")? {
            Json::Null => None,
            Json::Str(s) => Some(Solvability::from_label(s).ok_or_else(|| Error::Json {
                details: format!("unknown solvability '{s}'"),
            })?),
            _ => {
                return Err(Error::Json {
                    details: "field 'solvability' must be a string or null".into(),
                })
            }
        };
        let evidence = Evidence::from_json_value(field(&value, "evidence")?)?;
        let prov = field(&value, "provenance")?;
        let provenance = Provenance {
            question: Question::from_json_value(field(prov, "question")?)?,
            spec: match field(prov, "spec")? {
                Json::Null => None,
                other => Some(spec_from_json(other)?),
            },
            engines: field(prov, "engines")?
                .as_arr()
                .ok_or_else(|| Error::Json {
                    details: "field 'engines' is not an array".into(),
                })?
                .iter()
                .map(|e| {
                    e.as_str().map(str::to_string).ok_or_else(|| Error::Json {
                        details: "field 'engines' holds a non-string".into(),
                    })
                })
                .collect::<Result<Vec<String>>>()?,
            justification: str_field(prov, "justification")?.to_string(),
            cache_hit: bool_field(prov, "cache_hit")?,
        };
        let stats_value = field(&value, "stats")?;
        let wall_ms = field(stats_value, "wall_ms")?
            .as_f64()
            .ok_or_else(|| Error::Json {
                details: "field 'wall_ms' is not a number".into(),
            })?;
        let stats = RunStats {
            wall: Duration::from_secs_f64(wall_ms.max(0.0) / 1e3),
            evidence_checked: bool_field(stats_value, "evidence_checked")?,
            simulated_runs: usize_field(stats_value, "simulated_runs")?,
            search: match field(stats_value, "search")? {
                Json::Null => None,
                other => Some(stats_from_json(other)?),
            },
        };
        Ok(Verdict {
            solvability,
            evidence,
            provenance,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(v.render().trim()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"a": [1, 2, {"b": "x\n\"y\"", "c": null}], "d": {}}"#;
        let v = Json::parse(text).unwrap();
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn unicode_survives() {
        // The justification strings are full of ⟨, ℓ, ⌈ …
        let v = Json::Str("⟨6, 3, 1, 4⟩-GSB: ℓ = 0 ∧ ⌈(2n−1)/m⌉ ≤ u".into());
        let again = Json::parse(v.render().trim()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn escapes_parse() {
        let v = Json::parse(r#""aA\t\\b""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\\b"));
    }

    #[test]
    fn parse_errors_carry_context() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "tru", "1e", "[] []"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(matches!(err, Error::Json { .. }), "{bad}");
        }
    }

    #[test]
    fn question_json_round_trips() {
        for q in [
            Question::Classify,
            Question::SolvableInRounds { rounds: 2 },
            Question::NoCommWitness,
            Question::Certificate { rounds: 1 },
            Question::Atlas { max_n: 5 },
        ] {
            let value = q.to_json_value();
            assert_eq!(Question::from_json_value(&value).unwrap(), q);
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = GsbSpec::election(4).unwrap();
        assert_eq!(spec_from_json(&spec_to_json(&spec)).unwrap(), spec);
    }
}
