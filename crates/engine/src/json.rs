//! Hand-rolled JSON for verdict reports: a tiny value model with a
//! writer **and** a parser, so every report the engine emits can be read
//! back ([`Verdict::from_json`]) and its evidence re-checked offline.
//!
//! This is the same dependency posture as the bench crate's
//! `BENCH_*.json` emitters (the offline build has no serde); the engine
//! adds the inverse direction, which the round-trip tests pin.
//!
//! Two conventions keep the format lossless:
//!
//! * `u128` quantities (output counts, gcds) are emitted as **strings** —
//!   JSON numbers are doubles and would silently round above `2^53`;
//! * decision maps serialize as `(n, rounds, assignment)` and are
//!   rebuilt through the deterministic signature quotient on parse.

use std::fmt::Write as _;
use std::time::Duration;

use gsb_core::{GsbSpec, Solvability, SymmetricGsb};
use gsb_topology::{DecisionMap, SearchStats};

use crate::error::{Error, Result};
use crate::evidence::{AtlasCell, Evidence};
use crate::query::Question;
use crate::verdict::{Provenance, RunStats, Verdict};

/// A JSON value. Objects preserve key order (reports stay diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (doubles, like JSON itself).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline (the
    /// report-file convention of the bench emitters).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value on a single line with no decorative whitespace
    /// — the JSON-lines convention of the serve wire protocol and the
    /// verdict store, where one value must occupy exactly one line.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on malformed input (with a byte offset).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            len: text.len(),
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if let Some(&(at, c)) = p.chars.peek() {
            return Err(json_err(
                at,
                format!("trailing content starting with '{c}'"),
            ));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_err(at: usize, details: impl std::fmt::Display) -> Error {
    Error::Json {
        details: format!("at byte {at}: {details}"),
    }
}

/// Nesting ceiling for parsed documents. The parser recurses per
/// container level, so without a ceiling a `[[[[…` bomb from an
/// untrusted peer overflows the stack; every report the engine itself
/// writes is a handful of levels deep.
const MAX_JSON_DEPTH: usize = 128;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    len: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<()> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((at, c)) => Err(json_err(at, format!("expected '{want}', found '{c}'"))),
            None => Err(json_err(self.len, format!("expected '{want}', found end"))),
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => Ok(Json::Str(self.string()?)),
            Some((_, 't')) => self.keyword("true", Json::Bool(true)),
            Some((_, 'f')) => self.keyword("false", Json::Bool(false)),
            Some((_, 'n')) => self.keyword("null", Json::Null),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some((at, c)) => Err(json_err(at, format!("unexpected '{c}'"))),
            None => Err(json_err(self.len, "unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json> {
        let mut text = String::new();
        let start = self.chars.peek().map_or(self.len, |&(at, _)| at);
        while let Some(&(_, c)) = self.chars.peek() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                text.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| json_err(start, format!("bad number '{text}': {e}")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((at, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((at, c)) = self.chars.next() else {
                                return Err(json_err(self.len, "truncated \\u escape"));
                            };
                            let digit = c
                                .to_digit(16)
                                .ok_or_else(|| json_err(at, format!("bad hex digit '{c}'")))?;
                            code = code * 16 + digit;
                        }
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((at, c)) => return Err(json_err(at, format!("bad escape '\\{c}'"))),
                    None => return Err(json_err(at, "truncated escape")),
                },
                Some((_, c)) => out.push(c),
                None => return Err(json_err(self.len, "unterminated string")),
            }
        }
    }

    /// Enters one container level, failing on pathological nesting.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_JSON_DEPTH {
            let at = self.chars.peek().map_or(self.len, |&(at, _)| at);
            return Err(json_err(
                at,
                format!("nesting exceeds {MAX_JSON_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json> {
        self.descend()?;
        let out = self.array_body();
        self.depth -= 1;
        out
    }

    fn array_body(&mut self) -> Result<Json> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => {}
                Some((_, ']')) => return Ok(Json::Arr(items)),
                Some((at, c)) => {
                    return Err(json_err(at, format!("expected ',' or ']', found '{c}'")))
                }
                None => return Err(json_err(self.len, "unterminated array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.descend()?;
        let out = self.object_body();
        self.depth -= 1;
        out
    }

    fn object_body(&mut self) -> Result<Json> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => {}
                Some((_, '}')) => return Ok(Json::Obj(pairs)),
                Some((at, c)) => {
                    return Err(json_err(at, format!("expected ',' or '}}', found '{c}'")))
                }
                None => return Err(json_err(self.len, "unterminated object")),
            }
        }
    }
}

// ── field helpers ───────────────────────────────────────────────────────

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json> {
    obj.get(key).ok_or_else(|| Error::Json {
        details: format!("missing field '{key}'"),
    })
}

/// Interprets a JSON number as a non-negative integer. Untrusted bytes
/// must not alias legal values through float→int truncation (`-1 as
/// usize` is 0, `1.5 as usize` is 1), so negative, fractional,
/// non-finite, and beyond-2^53 numbers are rejected outright.
fn checked_uint(x: f64, key: &str) -> Result<u64> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= MAX_EXACT {
        Ok(x as u64)
    } else {
        Err(Error::Json {
            details: format!("field '{key}' is not a non-negative integer"),
        })
    }
}

fn usize_field(obj: &Json, key: &str) -> Result<usize> {
    let x = field(obj, key)?.as_f64().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a number"),
    })?;
    checked_uint(x, key).map(|v| v as usize)
}

fn u64_field(obj: &Json, key: &str) -> Result<u64> {
    let x = field(obj, key)?.as_f64().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a number"),
    })?;
    checked_uint(x, key)
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str> {
    field(obj, key)?.as_str().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a string"),
    })
}

fn bool_field(obj: &Json, key: &str) -> Result<bool> {
    field(obj, key)?.as_bool().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not a boolean"),
    })
}

fn usize_array(value: &Json, key: &str) -> Result<Vec<usize>> {
    let items = value.as_arr().ok_or_else(|| Error::Json {
        details: format!("field '{key}' is not an array"),
    })?;
    items
        .iter()
        .map(|item| {
            let x = item.as_f64().ok_or_else(|| Error::Json {
                details: format!("field '{key}' holds a non-number"),
            })?;
            checked_uint(x, key).map(|v| v as usize)
        })
        .collect()
}

fn u128_str_field(obj: &Json, key: &str) -> Result<u128> {
    str_field(obj, key)?.parse().map_err(|e| Error::Json {
        details: format!("field '{key}' is not a u128 string: {e}"),
    })
}

/// A millisecond count as a [`Duration`], rejecting the values
/// `Duration::from_secs_f64` would panic on (NaN, infinities — which
/// untrusted numbers like `1e999` parse to — and overflow).
fn duration_from_ms(ms: f64, key: &str) -> Result<Duration> {
    Duration::try_from_secs_f64(ms.max(0.0) / 1e3).map_err(|e| Error::Json {
        details: format!("field '{key}' is not a finite duration: {e}"),
    })
}

/// Facet ceiling for decision-map rebuilds parsed from untrusted bytes.
/// `χ^r(Δ^{n−1})` has `fubini(n)^r` facets and
/// [`DecisionMap::rebuild`] materializes the whole complex, so a crafted
/// `(n, rounds)` pair would otherwise turn a parse into an
/// out-of-memory build. The ceiling comfortably covers every complex
/// the engine has ever searched (χ³(Δ³) = 421,875, χ²(Δ⁴) = 292,681,
/// χ²(Δ⁵) = 21,932,489 facets).
const MAX_REBUILD_FACETS: u128 = 30_000_000;

/// Rejects `(n, rounds)` pairs whose rebuild would materialize more
/// than [`MAX_REBUILD_FACETS`] facets (or a degenerate `n = 0`).
fn rebuild_cost_guard(n: usize, rounds: usize) -> Result<()> {
    let oversized = || Error::Json {
        details: format!(
            "decision map over χ^{rounds}(Δ^{}) exceeds the \
             {MAX_REBUILD_FACETS}-facet rebuild ceiling",
            n.saturating_sub(1)
        ),
    };
    if n == 0 {
        return Err(Error::Json {
            details: "decision map needs at least one process".into(),
        });
    }
    if rounds > 64 {
        return Err(oversized());
    }
    // fubini(k) = Σ_{j=1..k} C(k, j)·fubini(k−j); fubini(11) > 10^9
    // already exceeds the ceiling at a single round, so larger n are
    // rejected without computing further.
    if n > 11 {
        return Err(oversized());
    }
    let mut fubini: Vec<u128> = vec![1];
    for k in 1..=n {
        let mut total: u128 = 0;
        let mut binom: u128 = 1;
        for j in 1..=k {
            binom = binom * (k + 1 - j) as u128 / j as u128;
            total = total.saturating_add(binom.saturating_mul(fubini[k - j]));
        }
        fubini.push(total);
    }
    let per_round = fubini[n];
    let mut facets: u128 = 1;
    for _ in 0..rounds {
        facets = facets.checked_mul(per_round).ok_or_else(oversized)?;
        if facets > MAX_REBUILD_FACETS {
            return Err(oversized());
        }
    }
    Ok(())
}

// ── domain (de)serialization ────────────────────────────────────────────

/// Serializes a task specification as the JSON object the verdict
/// report format uses (`{"n": …, "lower": […], "upper": […]}`). Public
/// so wire protocols (the serve crate's request format, the verdict
/// store's canonical keys) speak the exact same spec encoding as the
/// reports.
#[must_use]
pub fn spec_to_json(spec: &GsbSpec) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::Num(spec.n() as f64)),
        (
            "lower".into(),
            Json::Arr(
                spec.lower_bounds()
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect(),
            ),
        ),
        (
            "upper".into(),
            Json::Arr(
                spec.upper_bounds()
                    .iter()
                    .map(|&x| Json::Num(x as f64))
                    .collect(),
            ),
        ),
    ])
}

/// Parses a task specification back from [`spec_to_json`] output.
///
/// # Errors
///
/// Returns [`Error::Json`] on malformed shapes and wraps the core
/// validation error for inconsistent bounds.
pub fn spec_from_json(value: &Json) -> Result<GsbSpec> {
    let n = usize_field(value, "n")?;
    let lower = usize_array(field(value, "lower")?, "lower")?;
    let upper = usize_array(field(value, "upper")?, "upper")?;
    GsbSpec::new(n, lower, upper).map_err(Error::Core)
}

fn symmetric_to_json(task: &SymmetricGsb) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::Num(task.n() as f64)),
        ("m".into(), Json::Num(task.m() as f64)),
        ("l".into(), Json::Num(task.l() as f64)),
        ("u".into(), Json::Num(task.u() as f64)),
    ])
}

fn symmetric_from_json(value: &Json) -> Result<SymmetricGsb> {
    SymmetricGsb::new(
        usize_field(value, "n")?,
        usize_field(value, "m")?,
        usize_field(value, "l")?,
        usize_field(value, "u")?,
    )
    .map_err(Error::Core)
}

fn stats_to_json(stats: &SearchStats) -> Json {
    Json::Obj(vec![
        ("decisions".into(), Json::Num(stats.decisions as f64)),
        ("conflicts".into(), Json::Num(stats.conflicts as f64)),
        ("propagations".into(), Json::Num(stats.propagations as f64)),
        ("restarts".into(), Json::Num(stats.restarts as f64)),
        ("learned".into(), Json::Num(stats.learned as f64)),
        (
            "symmetric_images".into(),
            Json::Num(stats.symmetric_images as f64),
        ),
        ("imported".into(), Json::Num(stats.imported as f64)),
        ("deleted".into(), Json::Num(stats.deleted as f64)),
        (
            "orbit_decisions".into(),
            Json::Num(stats.orbit_decisions as f64),
        ),
        ("warm_seeded".into(), Json::Num(stats.warm_seeded as f64)),
        ("local_steps".into(), Json::Num(stats.local_steps as f64)),
        (
            "local_restarts".into(),
            Json::Num(stats.local_restarts as f64),
        ),
        ("local_won".into(), Json::Bool(stats.local_won)),
        ("workers".into(), Json::Num(stats.workers as f64)),
    ])
}

fn stats_from_json(value: &Json) -> Result<SearchStats> {
    // The orbit/warm/local fields postdate stored verdict records;
    // absent keys read as zero so old store entries keep parsing.
    let opt_u64 = |key: &str| -> Result<u64> {
        match value.get(key) {
            None | Some(Json::Null) => Ok(0),
            Some(_) => u64_field(value, key),
        }
    };
    Ok(SearchStats {
        decisions: u64_field(value, "decisions")?,
        conflicts: u64_field(value, "conflicts")?,
        propagations: u64_field(value, "propagations")?,
        restarts: u64_field(value, "restarts")?,
        learned: u64_field(value, "learned")?,
        symmetric_images: u64_field(value, "symmetric_images")?,
        imported: u64_field(value, "imported")?,
        deleted: u64_field(value, "deleted")?,
        orbit_decisions: opt_u64("orbit_decisions")?,
        warm_seeded: opt_u64("warm_seeded")?,
        local_steps: opt_u64("local_steps")?,
        local_restarts: opt_u64("local_restarts")?,
        local_won: matches!(value.get("local_won"), Some(Json::Bool(true))),
        workers: usize_field(value, "workers")?,
    })
}

impl Question {
    /// Serializes the question as a tagged JSON object.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let mut pairs = vec![("kind".to_string(), Json::Str(self.label().into()))];
        match self {
            Question::SolvableInRounds { rounds } | Question::Certificate { rounds } => {
                pairs.push(("rounds".into(), Json::Num(*rounds as f64)));
            }
            Question::Atlas { max_n } => pairs.push(("max_n".into(), Json::Num(*max_n as f64))),
            Question::Classify | Question::NoCommWitness => {}
        }
        Json::Obj(pairs)
    }

    /// Parses a question from its tagged JSON object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on unknown kinds or missing fields.
    pub fn from_json_value(value: &Json) -> Result<Question> {
        match str_field(value, "kind")? {
            "classify" => Ok(Question::Classify),
            "solvable-in-rounds" => Ok(Question::SolvableInRounds {
                rounds: usize_field(value, "rounds")?,
            }),
            "no-comm-witness" => Ok(Question::NoCommWitness),
            "certificate" => Ok(Question::Certificate {
                rounds: usize_field(value, "rounds")?,
            }),
            "atlas" => Ok(Question::Atlas {
                max_n: usize_field(value, "max_n")?,
            }),
            other => Err(Error::Json {
                details: format!("unknown question kind '{other}'"),
            }),
        }
    }
}

impl crate::query::EngineOpts {
    /// Serializes the governance-relevant options (engine selection,
    /// deadline, budgets) as a JSON object. The CDCL tuning block and
    /// the verification toggles are runtime-only and not serialized.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        fn opt_u64(x: Option<u64>) -> Json {
            x.map_or(Json::Null, |v| Json::Num(v as f64))
        }
        Json::Obj(vec![
            ("search".into(), Json::Str(self.search.label().into())),
            (
                "deadline_ms".into(),
                self.deadline
                    .map_or(Json::Null, |d| Json::Num(d.as_secs_f64() * 1e3)),
            ),
            ("decision_budget".into(), opt_u64(self.decision_budget)),
            ("conflict_budget".into(), opt_u64(self.conflict_budget)),
            // The deprecated `reference_budget` alias folds in here.
            ("node_budget".into(), opt_u64(self.effective_node_budget())),
            ("memory_budget".into(), opt_u64(self.memory_budget)),
            ("mode".into(), Json::Str(self.mode.label().into())),
            ("warm_start".into(), Json::Bool(self.warm_start)),
        ])
    }

    /// Parses options back from [`to_json_value`](Self::to_json_value)
    /// output. Missing budget fields stay `None`, so pre-governance
    /// `EngineOpts` JSON (which only carried `search` and possibly the
    /// legacy `reference_budget` key) still parses; a `reference_budget`
    /// key is honored as an alias of `node_budget`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on unknown engine labels or non-numeric
    /// budget fields.
    pub fn from_json_value(value: &Json) -> Result<Self> {
        fn opt_u64(value: &Json, key: &str) -> Result<Option<u64>> {
            match value.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(other) => {
                    let x = other.as_f64().ok_or_else(|| Error::Json {
                        details: format!("field '{key}' is not a number"),
                    })?;
                    checked_uint(x, key).map(Some)
                }
            }
        }
        let label = str_field(value, "search")?;
        let search = crate::query::SearchEngine::from_label(label).ok_or_else(|| Error::Json {
            details: format!("unknown search engine '{label}'"),
        })?;
        let deadline = match value.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(other) => {
                let ms = other.as_f64().ok_or_else(|| Error::Json {
                    details: "field 'deadline_ms' is not a number".into(),
                })?;
                Some(duration_from_ms(ms, "deadline_ms")?)
            }
        };
        // Pre-race `EngineOpts` JSON carries neither key: default to
        // plain CDCL with warm starts on, matching `EngineOpts::default`.
        let mode = match value.get("mode") {
            None | Some(Json::Null) => gsb_topology::SearchMode::default(),
            Some(other) => {
                let label = other.as_str().ok_or_else(|| Error::Json {
                    details: "field 'mode' is not a string".into(),
                })?;
                gsb_topology::SearchMode::from_label(label).ok_or_else(|| Error::Json {
                    details: format!("unknown search mode '{label}'"),
                })?
            }
        };
        let warm_start = !matches!(value.get("warm_start"), Some(Json::Bool(false)));
        let mut opts = crate::query::EngineOpts {
            search,
            deadline,
            decision_budget: opt_u64(value, "decision_budget")?,
            conflict_budget: opt_u64(value, "conflict_budget")?,
            node_budget: opt_u64(value, "node_budget")?,
            memory_budget: opt_u64(value, "memory_budget")?,
            mode,
            warm_start,
            ..Default::default()
        };
        if opts.node_budget.is_none() {
            opts.node_budget = opt_u64(value, "reference_budget")?;
        }
        Ok(opts)
    }
}

impl Evidence {
    /// Serializes the evidence as a tagged JSON object.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let mut pairs = vec![("kind".to_string(), Json::Str(self.label().into()))];
        match self {
            Evidence::Infeasible {
                lower_sum,
                upper_sum,
            } => {
                pairs.push(("lower_sum".into(), Json::Num(*lower_sum as f64)));
                pairs.push(("upper_sum".into(), Json::Num(*upper_sum as f64)));
            }
            Evidence::NoCommunication { witness } => {
                pairs.push((
                    "witness".into(),
                    Json::Arr(witness.iter().map(|&v| Json::Num(v as f64)).collect()),
                ));
            }
            Evidence::NoCommImpossible => {}
            Evidence::DecisionMap(map) => {
                pairs.push(("n".into(), Json::Num(map.n() as f64)));
                pairs.push(("rounds".into(), Json::Num(map.rounds() as f64)));
                pairs.push((
                    "assignment".into(),
                    Json::Arr(
                        map.assignment()
                            .iter()
                            .map(|&v| Json::Num(v as f64))
                            .collect(),
                    ),
                ));
            }
            Evidence::RoundsUnsat { rounds, stats } => {
                pairs.push(("rounds".into(), Json::Num(*rounds as f64)));
                pairs.push(("search".into(), stats_to_json(stats)));
            }
            Evidence::Kernel {
                canonical,
                kernel_vectors,
                legal_outputs,
                binomial_gcd,
            } => {
                pairs.push((
                    "canonical".into(),
                    canonical.as_ref().map_or(Json::Null, symmetric_to_json),
                ));
                pairs.push((
                    "kernel_vectors".into(),
                    kernel_vectors.map_or(Json::Null, |k| Json::Num(k as f64)),
                ));
                pairs.push(("legal_outputs".into(), Json::Str(legal_outputs.to_string())));
                pairs.push((
                    "binomial_gcd".into(),
                    binomial_gcd.map_or(Json::Null, |g| Json::Str(g.to_string())),
                ));
            }
            Evidence::ElectionCertificate { rounds, facets } => {
                pairs.push(("rounds".into(), Json::Num(*rounds as f64)));
                pairs.push(("facets".into(), Json::Num(*facets as f64)));
            }
            Evidence::Indeterminate { reason, partial } => {
                pairs.push(("reason".into(), Json::Str(reason.label().into())));
                pairs.push((
                    "partial".into(),
                    partial.as_ref().map_or(Json::Null, stats_to_json),
                ));
            }
            Evidence::Atlas { max_n, rows } => {
                pairs.push(("max_n".into(), Json::Num(*max_n as f64)));
                pairs.push((
                    "rows".into(),
                    Json::Arr(
                        rows.iter()
                            .map(|row| {
                                Json::Obj(vec![
                                    ("task".into(), symmetric_to_json(&row.task)),
                                    (
                                        "solvability".into(),
                                        Json::Str(row.solvability.label().into()),
                                    ),
                                    ("justification".into(), Json::Str(row.justification.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        Json::Obj(pairs)
    }

    /// Parses evidence from its tagged JSON object. Decision maps are
    /// rebuilt through the deterministic signature quotient
    /// ([`DecisionMap::rebuild`]), so a parsed report is as replayable
    /// as a fresh one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on malformed shapes and wraps replay
    /// failures from the decision-map rebuild.
    pub fn from_json_value(value: &Json) -> Result<Evidence> {
        match str_field(value, "kind")? {
            "infeasible" => Ok(Evidence::Infeasible {
                lower_sum: usize_field(value, "lower_sum")?,
                upper_sum: usize_field(value, "upper_sum")?,
            }),
            "no-communication" => Ok(Evidence::NoCommunication {
                witness: usize_array(field(value, "witness")?, "witness")?,
            }),
            "no-comm-impossible" => Ok(Evidence::NoCommImpossible),
            "decision-map" => {
                let n = usize_field(value, "n")?;
                let rounds = usize_field(value, "rounds")?;
                rebuild_cost_guard(n, rounds)?;
                let assignment = usize_array(field(value, "assignment")?, "assignment")?;
                let map = DecisionMap::rebuild(n, rounds, assignment).map_err(Error::Topology)?;
                Ok(Evidence::DecisionMap(map))
            }
            "rounds-unsat" => Ok(Evidence::RoundsUnsat {
                rounds: usize_field(value, "rounds")?,
                stats: stats_from_json(field(value, "search")?)?,
            }),
            "kernel" => {
                let canonical = match field(value, "canonical")? {
                    Json::Null => None,
                    other => Some(symmetric_from_json(other)?),
                };
                let kernel_vectors = match field(value, "kernel_vectors")? {
                    Json::Null => None,
                    other => Some(other.as_f64().ok_or_else(|| Error::Json {
                        details: "field 'kernel_vectors' is not a number".into(),
                    })? as usize),
                };
                let binomial_gcd = match field(value, "binomial_gcd")? {
                    Json::Null => None,
                    Json::Str(s) => Some(s.parse().map_err(|e| Error::Json {
                        details: format!("field 'binomial_gcd' is not a u128 string: {e}"),
                    })?),
                    _ => {
                        return Err(Error::Json {
                            details: "field 'binomial_gcd' must be a string or null".into(),
                        })
                    }
                };
                Ok(Evidence::Kernel {
                    canonical,
                    kernel_vectors,
                    legal_outputs: u128_str_field(value, "legal_outputs")?,
                    binomial_gcd,
                })
            }
            "election-certificate" => Ok(Evidence::ElectionCertificate {
                rounds: usize_field(value, "rounds")?,
                facets: usize_field(value, "facets")?,
            }),
            "indeterminate" => {
                let label = str_field(value, "reason")?;
                let reason =
                    gsb_core::StopReason::from_label(label).ok_or_else(|| Error::Json {
                        details: format!("unknown stop reason '{label}'"),
                    })?;
                let partial = match field(value, "partial")? {
                    Json::Null => None,
                    other => Some(stats_from_json(other)?),
                };
                Ok(Evidence::Indeterminate { reason, partial })
            }
            "atlas" => {
                let rows = field(value, "rows")?
                    .as_arr()
                    .ok_or_else(|| Error::Json {
                        details: "field 'rows' is not an array".into(),
                    })?
                    .iter()
                    .map(|row| {
                        let label = str_field(row, "solvability")?;
                        Ok(AtlasCell {
                            task: symmetric_from_json(field(row, "task")?)?,
                            solvability: Solvability::from_label(label).ok_or_else(|| {
                                Error::Json {
                                    details: format!("unknown solvability '{label}'"),
                                }
                            })?,
                            justification: str_field(row, "justification")?.to_string(),
                        })
                    })
                    .collect::<Result<Vec<AtlasCell>>>()?;
                Ok(Evidence::Atlas {
                    max_n: usize_field(value, "max_n")?,
                    rows,
                })
            }
            other => Err(Error::Json {
                details: format!("unknown evidence kind '{other}'"),
            }),
        }
    }
}

impl crate::cache::CacheStats {
    /// Serializes the cache counters as a JSON object (the payload of
    /// the serve metrics endpoint and `gsb cache-stats`). Counters are
    /// emitted as plain numbers: they count in-process events and stay
    /// far below the 2^53 double-precision ceiling.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("hits".into(), Json::Num(self.hits as f64)),
            ("misses".into(), Json::Num(self.misses as f64)),
            (
                "classifications".into(),
                Json::Num(self.classifications as f64),
            ),
            ("witnesses".into(), Json::Num(self.witnesses as f64)),
            ("searches".into(), Json::Num(self.searches as f64)),
            ("complexes".into(), Json::Num(self.complexes as f64)),
            ("systems".into(), Json::Num(self.systems as f64)),
            ("frontiers".into(), Json::Num(self.frontiers as f64)),
            ("extensions".into(), Json::Num(self.extensions as f64)),
        ])
    }

    /// Parses counters back from [`to_json_value`](Self::to_json_value)
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on missing or non-numeric fields.
    pub fn from_json_value(value: &Json) -> Result<Self> {
        Ok(crate::cache::CacheStats {
            hits: u64_field(value, "hits")?,
            misses: u64_field(value, "misses")?,
            classifications: usize_field(value, "classifications")?,
            witnesses: usize_field(value, "witnesses")?,
            searches: usize_field(value, "searches")?,
            complexes: usize_field(value, "complexes")?,
            systems: usize_field(value, "systems")?,
            frontiers: usize_field(value, "frontiers")?,
            extensions: u64_field(value, "extensions")?,
        })
    }
}

impl Verdict {
    /// Serializes the verdict as a JSON value.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            (
                "solvability".into(),
                self.solvability
                    .map_or(Json::Null, |s| Json::Str(s.label().into())),
            ),
            ("evidence".into(), self.evidence.to_json_value()),
            (
                "provenance".into(),
                Json::Obj(vec![
                    ("question".into(), self.provenance.question.to_json_value()),
                    (
                        "spec".into(),
                        self.provenance
                            .spec
                            .as_ref()
                            .map_or(Json::Null, spec_to_json),
                    ),
                    (
                        "engines".into(),
                        Json::Arr(
                            self.provenance
                                .engines
                                .iter()
                                .map(|e| Json::Str(e.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "justification".into(),
                        Json::Str(self.provenance.justification.clone()),
                    ),
                    ("cache_hit".into(), Json::Bool(self.provenance.cache_hit)),
                ]),
            ),
            (
                "stats".into(),
                Json::Obj(vec![
                    (
                        "wall_ms".into(),
                        Json::Num(self.stats.wall.as_secs_f64() * 1e3),
                    ),
                    (
                        "evidence_checked".into(),
                        Json::Bool(self.stats.evidence_checked),
                    ),
                    (
                        "simulated_runs".into(),
                        Json::Num(self.stats.simulated_runs as f64),
                    ),
                    (
                        "search".into(),
                        self.stats.search.as_ref().map_or(Json::Null, stats_to_json),
                    ),
                ]),
            ),
        ])
    }

    /// Renders the verdict as a pretty-printed JSON report (the format
    /// the `gsb` CLI emits under `--json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a verdict back from [`Verdict::to_json`] output. The
    /// result is fully usable: its evidence can be re-checked with
    /// [`Verdict::check`](crate::Verdict::check).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<Verdict> {
        let value = Json::parse(text)?;
        let solvability = match field(&value, "solvability")? {
            Json::Null => None,
            Json::Str(s) => Some(Solvability::from_label(s).ok_or_else(|| Error::Json {
                details: format!("unknown solvability '{s}'"),
            })?),
            _ => {
                return Err(Error::Json {
                    details: "field 'solvability' must be a string or null".into(),
                })
            }
        };
        let evidence = Evidence::from_json_value(field(&value, "evidence")?)?;
        let prov = field(&value, "provenance")?;
        let provenance = Provenance {
            question: Question::from_json_value(field(prov, "question")?)?,
            spec: match field(prov, "spec")? {
                Json::Null => None,
                other => Some(spec_from_json(other)?),
            },
            engines: field(prov, "engines")?
                .as_arr()
                .ok_or_else(|| Error::Json {
                    details: "field 'engines' is not an array".into(),
                })?
                .iter()
                .map(|e| {
                    e.as_str().map(str::to_string).ok_or_else(|| Error::Json {
                        details: "field 'engines' holds a non-string".into(),
                    })
                })
                .collect::<Result<Vec<String>>>()?,
            justification: str_field(prov, "justification")?.to_string(),
            cache_hit: bool_field(prov, "cache_hit")?,
        };
        let stats_value = field(&value, "stats")?;
        let wall_ms = field(stats_value, "wall_ms")?
            .as_f64()
            .ok_or_else(|| Error::Json {
                details: "field 'wall_ms' is not a number".into(),
            })?;
        let stats = RunStats {
            wall: duration_from_ms(wall_ms, "wall_ms")?,
            evidence_checked: bool_field(stats_value, "evidence_checked")?,
            simulated_runs: usize_field(stats_value, "simulated_runs")?,
            search: match field(stats_value, "search")? {
                Json::Null => None,
                other => Some(stats_from_json(other)?),
            },
        };
        Ok(Verdict {
            solvability,
            evidence,
            provenance,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(v.render().trim()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"a": [1, 2, {"b": "x\n\"y\"", "c": null}], "d": {}}"#;
        let v = Json::parse(text).unwrap();
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn unicode_survives() {
        // The justification strings are full of ⟨, ℓ, ⌈ …
        let v = Json::Str("⟨6, 3, 1, 4⟩-GSB: ℓ = 0 ∧ ⌈(2n−1)/m⌉ ≤ u".into());
        let again = Json::parse(v.render().trim()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn escapes_parse() {
        let v = Json::parse(r#""aA\t\\b""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\\b"));
    }

    #[test]
    fn parse_errors_carry_context() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "tru", "1e", "[] []"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(matches!(err, Error::Json { .. }), "{bad}");
        }
    }

    #[test]
    fn question_json_round_trips() {
        for q in [
            Question::Classify,
            Question::SolvableInRounds { rounds: 2 },
            Question::NoCommWitness,
            Question::Certificate { rounds: 1 },
            Question::Atlas { max_n: 5 },
        ] {
            let value = q.to_json_value();
            assert_eq!(Question::from_json_value(&value).unwrap(), q);
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = GsbSpec::election(4).unwrap();
        assert_eq!(spec_from_json(&spec_to_json(&spec)).unwrap(), spec);
    }

    #[test]
    fn compact_rendering_is_one_line_and_parses_back() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "x\n", "c": null}], "d": {}}"#).unwrap();
        let line = v.render_compact();
        assert!(!line.contains('\n'));
        assert!(!line.contains(": "));
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn nesting_bombs_are_rejected_not_overflowed() {
        for bomb in ["[".repeat(100_000), "{\"a\":".repeat(50_000)] {
            let err = Json::parse(&bomb).unwrap_err();
            assert!(err.to_string().contains("nesting"), "{err}");
        }
        // Deep-but-legal nesting still parses.
        let legal = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&legal).is_ok());
    }

    #[test]
    fn rebuild_guard_rejects_oversized_maps() {
        assert!(rebuild_cost_guard(3, 2).is_ok());
        assert!(rebuild_cost_guard(5, 2).is_ok());
        assert!(rebuild_cost_guard(0, 1).is_err());
        assert!(rebuild_cost_guard(6, 3).is_err());
        assert!(rebuild_cost_guard(12, 1).is_err());
        assert!(rebuild_cost_guard(4, 64).is_err());
        assert!(rebuild_cost_guard(1, 64).is_ok());
    }

    #[test]
    fn cache_stats_round_trip() {
        let stats = crate::cache::CacheStats {
            hits: 7,
            misses: 3,
            classifications: 2,
            witnesses: 1,
            searches: 4,
            complexes: 1,
            systems: 2,
            frontiers: 1,
            extensions: 5,
        };
        let parsed = crate::cache::CacheStats::from_json_value(&stats.to_json_value()).unwrap();
        assert_eq!(parsed, stats);
    }
}
