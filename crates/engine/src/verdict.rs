//! The unified answer type: [`Verdict`] = solvability + machine-checkable
//! [`Evidence`] + [`Provenance`] + [`RunStats`].

use std::time::Duration;

use gsb_core::{GsbSpec, Solvability};
use gsb_topology::SearchStats;

use crate::error::Result;
use crate::evidence::Evidence;
use crate::query::Question;

/// Where a verdict came from: the question asked, the spec it was asked
/// about, and the engines whose answers concurred.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The question this verdict answers.
    pub question: Question,
    /// The task it was asked about (`None` for the atlas sweep).
    pub spec: Option<GsbSpec>,
    /// Engines that produced or corroborated the answer, e.g.
    /// `["classifier"]` or `["cdcl", "reference", "classifier"]`.
    pub engines: Vec<String>,
    /// Human-readable justification (the classifier's theorem chain, or
    /// a search summary).
    pub justification: String,
    /// Whether the answer was served from the [`EngineCache`](crate::EngineCache).
    pub cache_hit: bool,
}

/// Counters of one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Wall time of the whole query (including evidence checking).
    pub wall: Duration,
    /// Solver counters, when a round-bounded search ran.
    pub search: Option<SearchStats>,
    /// Whether the evidence was re-verified before returning.
    pub evidence_checked: bool,
    /// Simulator runs executed while replaying witness evidence.
    pub simulated_runs: usize,
}

/// The unified answer to a [`Query`](crate::Query).
///
/// `solvability` is the task-level verdict (`None` only for the
/// spec-less atlas sweep, whose per-task verdicts live in the evidence
/// rows). `evidence` is machine-checkable independently of the engine
/// that produced it — see [`Evidence::check`] — and [`Verdict::check`]
/// re-runs that verification against the provenance spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The task-level verdict (`None` for [`Question::Atlas`]).
    pub solvability: Option<Solvability>,
    /// Machine-checkable evidence backing the verdict.
    pub evidence: Evidence,
    /// Which question, which task, which engines.
    pub provenance: Provenance,
    /// Execution counters.
    pub stats: RunStats,
}

impl Verdict {
    /// Whether the verdict asserts wait-free solvability (with or
    /// without communication); `None` when undetermined (`Open`) or for
    /// the atlas sweep.
    #[must_use]
    pub fn is_solvable(&self) -> Option<bool> {
        let s = self.solvability?;
        if s.is_positive() {
            Some(true)
        } else if s.is_negative() {
            Some(false)
        } else {
            None
        }
    }

    /// Whether a governed run stopped (cancellation, deadline, budget,
    /// injected fault) before reaching a verdict — the evidence is
    /// [`Evidence::Indeterminate`] and no solvability is claimed.
    #[must_use]
    pub fn is_indeterminate(&self) -> bool {
        matches!(self.evidence, Evidence::Indeterminate { .. })
    }

    /// Re-verifies this verdict's evidence against its provenance spec,
    /// independently of the engine that produced it (see
    /// [`Evidence::check`]). Atlas verdicts re-classify every row.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EvidenceRejected`](crate::Error::EvidenceRejected)
    /// (or a wrapped per-crate error) when the evidence does not hold up.
    pub fn check(&self) -> Result<()> {
        match &self.provenance.spec {
            Some(spec) => self.evidence.check(spec),
            // The atlas is the one spec-less question; its evidence rows
            // carry their own specs and ignore the argument.
            None => self.evidence.check_rows(),
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.provenance.spec, self.solvability) {
            (Some(spec), Some(s)) => {
                write!(f, "{spec}: {s} ({})", self.provenance.justification)
            }
            _ => write!(f, "{}: {}", self.provenance.question, self.evidence),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_solvable_maps_polarity() {
        let mut v = Verdict {
            solvability: Some(Solvability::WaitFreeSolvable),
            evidence: Evidence::NoCommImpossible,
            provenance: Provenance {
                question: Question::Classify,
                spec: None,
                engines: vec!["classifier".into()],
                justification: "test".into(),
                cache_hit: false,
            },
            stats: RunStats::default(),
        };
        assert_eq!(v.is_solvable(), Some(true));
        v.solvability = Some(Solvability::NotWaitFreeSolvable);
        assert_eq!(v.is_solvable(), Some(false));
        v.solvability = Some(Solvability::Open);
        assert_eq!(v.is_solvable(), None);
        v.solvability = None;
        assert_eq!(v.is_solvable(), None);
    }
}
