//! The typed entry point: [`Query`] = specification + [`Question`] +
//! [`EngineOpts`].
//!
//! Every solvability surface of the workspace — the arithmetic
//! classifier, the no-communication characterization, the round-bounded
//! decision-map searches, the Theorem 11 structural certificate, and the
//! atlas sweep — is asked through one `Query` whose
//! [`run`](Query::run) returns a unified [`Verdict`](crate::Verdict)
//! with machine-checkable [`Evidence`](crate::Evidence).

use gsb_core::GsbSpec;
use gsb_topology::{CdclConfig, SearchMode};

use crate::cache::EngineCache;
use crate::error::Result;
use crate::verdict::Verdict;

/// What is being asked about a task.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Question {
    /// Wait-free solvability per the paper's Section 5 results (the
    /// closed-form classifier), with structure-theory evidence.
    Classify,
    /// Is the task solvable by an `rounds`-round comparison-based IIS
    /// protocol? SAT verdicts carry a replayable decision map.
    SolvableInRounds {
        /// Round bound of the protocol complex.
        rounds: usize,
    },
    /// Is the task solvable with **no communication at all** (Theorem 9
    /// and its asymmetric generalization)? Positive verdicts carry the
    /// witness decision map over the identity space.
    NoCommWitness,
    /// The strongest machine-checkable certificate the engine can
    /// produce at this round bound: a no-communication witness, a
    /// replayable decision map, the Theorem 11 structural certificate
    /// (election), or round-bounded UNSAT search counters.
    Certificate {
        /// Round bound for the topological certificates.
        rounds: usize,
    },
    /// Classify every feasible symmetric task with `n ≤ max_n` (the
    /// atlas sweep). The only spec-less question.
    Atlas {
        /// Largest process count swept.
        max_n: usize,
    },
}

impl Question {
    /// Stable machine-readable label (JSON `kind`, error messages).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Question::Classify => "classify",
            Question::SolvableInRounds { .. } => "solvable-in-rounds",
            Question::NoCommWitness => "no-comm-witness",
            Question::Certificate { .. } => "certificate",
            Question::Atlas { .. } => "atlas",
        }
    }
}

impl std::fmt::Display for Question {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Question::SolvableInRounds { rounds } => write!(f, "solvable-in-rounds({rounds})"),
            Question::Certificate { rounds } => write!(f, "certificate({rounds})"),
            Question::Atlas { max_n } => write!(f, "atlas({max_n})"),
            other => f.write_str(other.label()),
        }
    }
}

/// Which engine answers round-bounded search questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchEngine {
    /// The conflict-driven engine (clause learning, orbit pruning,
    /// portfolio) — the production default.
    #[default]
    Cdcl,
    /// The retained backtracking oracle (optionally node-budgeted).
    Reference,
    /// Run both and require them to concur; a mismatch is returned as a
    /// diagnostic [`Error::Disagreement`](crate::Error::Disagreement).
    Both,
}

impl SearchEngine {
    /// Stable machine-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SearchEngine::Cdcl => "cdcl",
            SearchEngine::Reference => "reference",
            SearchEngine::Both => "both",
        }
    }

    /// The engine for a [`label`](SearchEngine::label), if known.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "cdcl" => Some(SearchEngine::Cdcl),
            "reference" => Some(SearchEngine::Reference),
            "both" => Some(SearchEngine::Both),
            _ => None,
        }
    }
}

/// Budgets and engine-selection knobs of a query.
#[derive(Debug, Clone)]
pub struct EngineOpts {
    /// Engine used for round-bounded searches (default: CDCL).
    pub search: SearchEngine,
    /// Wall-clock deadline for the whole query. Construction and solve
    /// loops poll it cooperatively, and a watchdog thread backstops
    /// solves that poll too rarely. Exhaustion yields an indeterminate
    /// verdict ([`Evidence::Indeterminate`](crate::Evidence)).
    pub deadline: Option<std::time::Duration>,
    /// CDCL decision budget across all portfolio members.
    pub decision_budget: Option<u64>,
    /// CDCL conflict budget across all portfolio members.
    pub conflict_budget: Option<u64>,
    /// Node budget for the reference backtracker.
    pub node_budget: Option<u64>,
    /// Approximate memory budget in bytes, charged at frontier/arena
    /// growth points during streamed construction.
    pub memory_budget: Option<u64>,
    /// Node budget for the reference backtracker, `None` = unbounded.
    ///
    /// **Deprecated alias** of [`EngineOpts::node_budget`]: still
    /// honored (and still parsed from existing `EngineOpts` JSON), but
    /// exhaustion now yields an indeterminate verdict instead of
    /// [`Error::BudgetExhausted`](crate::Error::BudgetExhausted).
    #[deprecated(note = "use `node_budget`; exhaustion now yields an indeterminate verdict")]
    pub reference_budget: Option<u64>,
    /// **Cross-engine agreement mode** for [`Question::Classify`]: when
    /// `Some(r)`, the classifier's verdict is checked against both
    /// decision-map engines for every round count `0..=r` (in the sound
    /// direction — a SAT map contradicts a negative classification, and
    /// vice versa). Any conflict aborts the query with a diagnostic
    /// [`Error::Disagreement`](crate::Error::Disagreement). Exponential
    /// in `r` and `n`; meant for small instances and CI sweeps.
    pub agreement_rounds: Option<usize>,
    /// Re-verify the verdict's evidence before returning it (decision
    /// maps facet-by-facet, witnesses against every adversarial identity
    /// subset). Default `true`.
    pub check_evidence: bool,
    /// Additionally replay no-communication witnesses through the actual
    /// shared-memory simulator (one run per adversarial identity subset,
    /// capped). Default `false`.
    pub simulate_witness: bool,
    /// Serve and populate the [`EngineCache`]. Benchmarks that time the
    /// underlying engines set this to `false`. Default `true`.
    pub use_cache: bool,
    /// Configuration handed to the conflict-driven engine.
    pub cdcl: CdclConfig,
    /// How the CDCL engine attacks a round-bounded search: plain CDCL,
    /// a CDCL-vs-local-search completion race, or local search alone
    /// (which can only produce SAT witnesses — exhaustion comes back
    /// indeterminate, never UNSAT). Ignored by the reference engine.
    pub mode: SearchMode,
    /// Seed the solver with the lifted `r − 1` decision map when the
    /// cache already holds one (phase saving + initial VSIDS order for
    /// CDCL, first-restart construction pin for local search). Purely
    /// a performance hint: seeds never constrain the search, so
    /// verdicts are unaffected. Default `true`.
    pub warm_start: bool,
}

impl Default for EngineOpts {
    #[allow(deprecated)] // initializes the legacy `reference_budget` alias
    fn default() -> Self {
        EngineOpts {
            search: SearchEngine::Cdcl,
            deadline: None,
            decision_budget: None,
            conflict_budget: None,
            node_budget: None,
            memory_budget: None,
            reference_budget: None,
            agreement_rounds: None,
            check_evidence: true,
            simulate_witness: false,
            use_cache: true,
            cdcl: CdclConfig::default(),
            mode: SearchMode::default(),
            warm_start: true,
        }
    }
}

impl EngineOpts {
    /// The effective node budget: [`EngineOpts::node_budget`], falling
    /// back to the deprecated `reference_budget` alias.
    #[must_use]
    pub fn effective_node_budget(&self) -> Option<u64> {
        #[allow(deprecated)] // the alias is exactly what this merges
        self.node_budget.or(self.reference_budget)
    }

    /// True when any governance limit is set — the dispatcher then runs
    /// the query under a [`Governor`](crate::Governor) ticket.
    #[must_use]
    pub fn is_governed(&self) -> bool {
        self.deadline.is_some()
            || self.decision_budget.is_some()
            || self.conflict_budget.is_some()
            || self.memory_budget.is_some()
            || self.effective_node_budget().is_some()
    }

    /// The governance limits these options describe.
    #[must_use]
    pub fn limits(&self) -> gsb_core::Limits {
        gsb_core::Limits {
            deadline: self.deadline,
            decisions: self.decision_budget,
            conflicts: self.conflict_budget,
            nodes: self.effective_node_budget(),
            memory_bytes: self.memory_budget,
        }
    }
}

/// One solvability question about one task (or one atlas sweep),
/// runnable against the process-global [`EngineCache`] or an explicit
/// one.
///
/// # Examples
///
/// ```
/// use gsb_engine::{Query, Question};
/// use gsb_core::{Solvability, SymmetricGsb};
///
/// let wsb6 = SymmetricGsb::wsb(6)?.to_spec();
/// let verdict = Query::classify(wsb6).run()?;
/// assert_eq!(verdict.solvability, Some(Solvability::WaitFreeSolvable));
/// # Ok::<(), gsb_engine::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    spec: Option<GsbSpec>,
    question: Question,
    opts: EngineOpts,
}

impl Query {
    /// A query with explicit question (and default options).
    #[must_use]
    pub fn new(spec: GsbSpec, question: Question) -> Self {
        Query {
            spec: Some(spec),
            question,
            opts: EngineOpts::default(),
        }
    }

    /// Ask for the closed-form classification of `spec`.
    #[must_use]
    pub fn classify(spec: GsbSpec) -> Self {
        Query::new(spec, Question::Classify)
    }

    /// Ask whether `spec` is solvable by an `rounds`-round
    /// comparison-based IIS protocol.
    #[must_use]
    pub fn solvable_in_rounds(spec: GsbSpec, rounds: usize) -> Self {
        Query::new(spec, Question::SolvableInRounds { rounds })
    }

    /// Ask for Theorem 9's no-communication witness.
    #[must_use]
    pub fn no_comm_witness(spec: GsbSpec) -> Self {
        Query::new(spec, Question::NoCommWitness)
    }

    /// Ask for the strongest machine-checkable certificate at `rounds`.
    #[must_use]
    pub fn certificate(spec: GsbSpec, rounds: usize) -> Self {
        Query::new(spec, Question::Certificate { rounds })
    }

    /// Ask for the atlas sweep over every feasible symmetric task with
    /// `n ≤ max_n` (the spec-less question).
    #[must_use]
    pub fn atlas(max_n: usize) -> Self {
        Query {
            spec: None,
            question: Question::Atlas { max_n },
            opts: EngineOpts::default(),
        }
    }

    /// Replaces the options (builder style).
    #[must_use]
    pub fn with_opts(mut self, opts: EngineOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Mutable access to the options.
    pub fn opts_mut(&mut self) -> &mut EngineOpts {
        &mut self.opts
    }

    /// The options this query will run with.
    #[must_use]
    pub fn opts(&self) -> &EngineOpts {
        &self.opts
    }

    /// The task specification, if the question has one.
    #[must_use]
    pub fn spec(&self) -> Option<&GsbSpec> {
        self.spec.as_ref()
    }

    /// The question.
    #[must_use]
    pub fn question(&self) -> &Question {
        &self.question
    }

    /// Runs the query against the process-global cache.
    ///
    /// # Errors
    ///
    /// Returns the unified [`Error`](crate::Error): per-crate failures,
    /// [`Disagreement`](crate::Error::Disagreement) when engines that
    /// must concur do not, and
    /// [`EvidenceRejected`](crate::Error::EvidenceRejected) when the
    /// produced evidence fails its independent re-check.
    pub fn run(&self) -> Result<Verdict> {
        self.run_with(EngineCache::global())
    }

    /// Runs the query against an explicit cache (the [`Batch`] path —
    /// see [`Batch::run_with`](crate::Batch::run_with)).
    ///
    /// # Errors
    ///
    /// As [`Query::run`].
    pub fn run_with(&self, cache: &EngineCache) -> Result<Verdict> {
        crate::run::execute(self, cache)
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.spec {
            Some(spec) => write!(f, "{} on {spec}", self.question),
            None => write!(f, "{}", self.question),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_core::SymmetricGsb;

    #[test]
    fn question_labels_and_display() {
        assert_eq!(Question::Classify.label(), "classify");
        assert_eq!(
            Question::SolvableInRounds { rounds: 2 }.to_string(),
            "solvable-in-rounds(2)"
        );
        assert_eq!(Question::Atlas { max_n: 5 }.to_string(), "atlas(5)");
        assert_eq!(SearchEngine::Both.label(), "both");
    }

    #[test]
    fn query_display_includes_the_spec() {
        let spec = SymmetricGsb::wsb(3).unwrap().to_spec();
        let q = Query::classify(spec);
        assert!(q.to_string().contains("classify"));
        assert!(q.to_string().contains("GSB"));
        assert!(Query::atlas(4).spec().is_none());
    }

    #[test]
    fn default_opts_are_production_settings() {
        let opts = EngineOpts::default();
        assert_eq!(opts.search, SearchEngine::Cdcl);
        assert!(opts.check_evidence);
        assert!(opts.use_cache);
        assert!(!opts.simulate_witness);
        assert_eq!(opts.agreement_rounds, None);
    }
}
