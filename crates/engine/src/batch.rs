//! Batched execution: fan a query set out over rayon with one shared
//! [`EngineCache`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use rayon::prelude::*;

use crate::cache::EngineCache;
use crate::error::{Error, Result};
use crate::query::Query;
use crate::verdict::Verdict;

/// A set of queries executed together.
///
/// `run` fans the queries out over rayon; every worker shares one
/// [`EngineCache`], so repeated specs (atlas sweeps over synonym-heavy
/// families, zoo sweeps at one `n`) are classified and searched once.
/// Results come back in query order, one `Result` per query — a failing
/// query does not poison its batch-mates.
///
/// # Examples
///
/// ```
/// use gsb_engine::{Batch, Query};
/// use gsb_core::zoo::catalog;
///
/// let batch: Batch = catalog(3)?
///     .into_iter()
///     .map(|entry| Query::classify(entry.spec))
///     .collect();
/// let verdicts = batch.run();
/// assert_eq!(verdicts.len(), batch.len());
/// assert!(verdicts.iter().all(Result::is_ok));
/// # Ok::<(), gsb_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Batch {
    queries: Vec<Query>,
}

impl Batch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Batch::default()
    }

    /// Adds a query.
    pub fn push(&mut self, query: Query) {
        self.queries.push(query);
    }

    /// Number of queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch holds no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries, in execution order.
    #[must_use]
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Runs every query against the process-global cache; results in
    /// query order.
    #[must_use]
    pub fn run(&self) -> Vec<Result<Verdict>> {
        self.run_with(EngineCache::global())
    }

    /// Runs every query against an explicit shared cache; results in
    /// query order. Each query runs under panic isolation: a panicking
    /// query yields [`Error::Panicked`] in its slot (the results stay
    /// index-aligned with [`Batch::queries`]) and its batch-mates
    /// complete undisturbed.
    #[must_use]
    pub fn run_with(&self, cache: &EngineCache) -> Vec<Result<Verdict>> {
        self.queries
            .par_iter()
            .map(|query| {
                // `&Query`/`&EngineCache` are only read on the other
                // side of the boundary, and the cache's locks recover
                // from poisoning — safe to assert unwind safety.
                catch_unwind(AssertUnwindSafe(|| query.run_with(cache))).unwrap_or_else(|payload| {
                    Err(Error::Panicked {
                        details: panic_details(payload),
                    })
                })
            })
            .collect()
    }
}

/// The panic payload as a string, when it was one (the common
/// `panic!("…")` case); a placeholder otherwise.
fn panic_details(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<&str>() {
        Ok(s) => (*s).to_string(),
        Err(payload) => match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

impl FromIterator<Query> for Batch {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        Batch {
            queries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Query> for Batch {
    fn extend<I: IntoIterator<Item = Query>>(&mut self, iter: I) {
        self.queries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Question;
    use gsb_core::{Solvability, SymmetricGsb};

    #[test]
    fn batch_preserves_query_order_and_shares_the_cache() {
        let cache = EngineCache::new();
        let specs: Vec<_> = (2..=6)
            .map(|n| SymmetricGsb::wsb(n).unwrap().to_spec())
            .collect();
        let mut batch = Batch::new();
        for spec in &specs {
            batch.push(Query::classify(spec.clone()));
            // The duplicate hits the shared cache.
            batch.push(Query::classify(spec.clone()));
        }
        let verdicts = batch.run_with(&cache);
        assert_eq!(verdicts.len(), 10);
        for (i, spec) in specs.iter().enumerate() {
            for j in [2 * i, 2 * i + 1] {
                let v = verdicts[j].as_ref().unwrap();
                assert_eq!(v.provenance.spec.as_ref(), Some(spec));
            }
        }
        let stats = cache.stats();
        assert!(stats.hits >= 5, "duplicates must hit: {stats:?}");
    }

    #[test]
    fn failing_queries_do_not_poison_the_batch() {
        let cache = EngineCache::new();
        let mut batch = Batch::new();
        batch.push(Query::classify(SymmetricGsb::wsb(4).unwrap().to_spec()));
        batch.push(Query::atlas(0)); // unsupported: max_n < 2
        let verdicts = batch.run_with(&cache);
        assert!(verdicts[0].is_ok());
        assert!(verdicts[1].is_err());
    }

    #[test]
    fn collected_batches_answer_mixed_questions() {
        let spec = SymmetricGsb::wsb(4).unwrap().to_spec();
        let batch: Batch = [
            Query::classify(spec.clone()),
            Query::no_comm_witness(spec.clone()),
            Query::new(spec, Question::SolvableInRounds { rounds: 0 }),
        ]
        .into_iter()
        .collect();
        let verdicts = batch.run_with(&EngineCache::new());
        assert_eq!(verdicts.len(), 3);
        let classify = verdicts[0].as_ref().unwrap();
        assert_eq!(classify.solvability, Some(Solvability::NotWaitFreeSolvable));
        let witness = verdicts[1].as_ref().unwrap();
        assert_eq!(witness.is_solvable(), Some(false));
        let rounds = verdicts[2].as_ref().unwrap();
        assert_eq!(rounds.evidence.unsat_rounds(), Some(0));
    }
}
