//! Named-task parsing: the zoo's vocabulary as CLI-friendly strings.
//!
//! The `gsb` binary (and anything else that takes task names from users)
//! resolves names like `wsb`, `election` or `renaming` here, instead of
//! every caller keeping its own constructor table.

use gsb_core::{GsbSpec, SymmetricGsb};

use crate::error::{Error, Result};

/// The task names [`named_task`] understands, with the meaning of the
/// optional `k` parameter.
pub const KNOWN_TASKS: &[(&str, &str)] = &[
    ("election", "one leader, n−1 followers (asymmetric)"),
    ("wsb", "weak symmetry breaking ⟨n,2,1,n−1⟩"),
    ("k-wsb", "k-weak symmetry breaking ⟨n,2,k,n−k⟩ (k required)"),
    ("perfect-renaming", "⟨n,n,1,1⟩ — the hardest renaming"),
    ("loose-renaming", "(2n−1)-renaming ⟨n,2n−1,0,1⟩"),
    (
        "renaming",
        "m-renaming ⟨n,k,0,1⟩ (k = name-space size, required)",
    ),
    ("slot", "k-slot ⟨n,k,1,n⟩ (k required)"),
    (
        "homonymous",
        "x-bounded homonymous renaming (k = x, required)",
    ),
    (
        "hardest",
        "hardest ⟨n,k,·,·⟩ task of Theorem 5 (k = m, required)",
    ),
];

/// Instantiates the named task for `n` processes. Some names take a
/// parameter `k` (see [`KNOWN_TASKS`]); passing or omitting it wrongly
/// is an error, as is an unknown name.
///
/// Accepts both `kebab-case` and `snake_case` spellings.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for unknown names or missing/extra
/// parameters, and wraps [`gsb_core::Error`] for out-of-range `n`/`k`.
pub fn named_task(name: &str, n: usize, k: Option<usize>) -> Result<GsbSpec> {
    let canonical_name = name.replace('_', "-");
    let require_k = || {
        k.ok_or_else(|| Error::Unsupported {
            reason: format!("task '{canonical_name}' needs a parameter (--k)"),
        })
    };
    let forbid_k = |spec: GsbSpec| {
        if k.is_some() {
            Err(Error::Unsupported {
                reason: format!("task '{canonical_name}' takes no parameter"),
            })
        } else {
            Ok(spec)
        }
    };
    match canonical_name.as_str() {
        "election" => forbid_k(GsbSpec::election(n)?),
        "wsb" | "weak-symmetry-breaking" => forbid_k(SymmetricGsb::wsb(n)?.to_spec()),
        "k-wsb" => Ok(SymmetricGsb::k_wsb(n, require_k()?)?.to_spec()),
        "perfect-renaming" => forbid_k(SymmetricGsb::perfect_renaming(n)?.to_spec()),
        "loose-renaming" | "2n-1-renaming" => forbid_k(SymmetricGsb::loose_renaming(n)?.to_spec()),
        "renaming" => Ok(SymmetricGsb::renaming(n, require_k()?)?.to_spec()),
        "slot" => Ok(SymmetricGsb::slot(n, require_k()?)?.to_spec()),
        "homonymous" | "homonymous-renaming" => {
            Ok(SymmetricGsb::homonymous_renaming(n, require_k()?)?.to_spec())
        }
        "hardest" => Ok(SymmetricGsb::hardest(n, require_k()?)?.to_spec()),
        other => Err(Error::Unsupported {
            reason: format!(
                "unknown task '{other}'; known: {}",
                KNOWN_TASKS
                    .iter()
                    .map(|&(name, _)| name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_known_task_instantiates() {
        for &(name, help) in KNOWN_TASKS {
            let k = help.contains("required").then_some(2);
            let spec = named_task(name, 6, k).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.n(), 6, "{name}");
        }
    }

    #[test]
    fn snake_case_and_parameters() {
        assert_eq!(
            named_task("perfect_renaming", 4, None).unwrap(),
            SymmetricGsb::perfect_renaming(4).unwrap().to_spec()
        );
        assert_eq!(
            named_task("renaming", 4, Some(7)).unwrap(),
            SymmetricGsb::loose_renaming(4).unwrap().to_spec()
        );
    }

    #[test]
    fn errors_are_informative() {
        let err = named_task("no-such-task", 4, None).unwrap_err();
        assert!(err.to_string().contains("known:"));
        let err = named_task("slot", 4, None).unwrap_err();
        assert!(err.to_string().contains("--k"));
        let err = named_task("wsb", 4, Some(2)).unwrap_err();
        assert!(err.to_string().contains("no parameter"));
        // Core errors propagate wrapped.
        assert!(matches!(
            named_task("election", 1, None),
            Err(Error::Core(_))
        ));
    }
}
