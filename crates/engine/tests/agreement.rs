//! Cross-engine agreement over the full task zoo at `n ≤ 4`: the
//! closed-form classifier, the CDCL decision-map engine, and the
//! retained backtracking oracle must tell one consistent story.
//!
//! The engine's agreement mode
//! ([`EngineOpts::agreement_rounds`](gsb_engine::EngineOpts)) does the
//! checking: for every round count up to the bound it runs **both**
//! search engines (erroring on any CDCL-vs-reference divergence) and
//! rejects SAT maps against negative classifications. A clean verdict
//! therefore certifies three-way consistency; any soundness bug in any
//! engine surfaces as [`gsb_engine::Error::Disagreement`].

use gsb_core::zoo::catalog;
use gsb_engine::{EngineCache, Evidence, Query, SearchEngine};

#[test]
fn zoo_classifier_vs_cdcl_vs_reference() {
    let cache = EngineCache::new();
    for n in 2..=4usize {
        for entry in catalog(n).expect("zoo instantiates") {
            let mut query = Query::classify(entry.spec.clone());
            // One round per task: the reference oracle is exponential,
            // and r = 1 is what the topology crate's own equivalence
            // suite sustains in debug builds (r = 2 is spot-checked on
            // election below).
            query.opts_mut().agreement_rounds = Some(1);
            let verdict = query
                .run_with(&cache)
                .unwrap_or_else(|e| panic!("{} at n = {n}: {e}", entry.name));
            // Agreement mode records all three corroborating engines.
            for engine in ["classifier", "cdcl", "reference"] {
                assert!(
                    verdict.provenance.engines.iter().any(|e| e == engine),
                    "{} at n = {n} missing engine {engine}",
                    entry.name
                );
            }
            assert!(verdict.stats.evidence_checked);
        }
    }
}

#[test]
fn zoo_round_bounded_verdicts_run_both_engines() {
    // `SearchEngine::Both` enforces cdcl-vs-reference agreement inside
    // every round-bounded query; sweep the zoo once at one round.
    let cache = EngineCache::new();
    for n in 2..=4usize {
        for entry in catalog(n).expect("zoo instantiates") {
            let mut query = Query::solvable_in_rounds(entry.spec.clone(), 1);
            query.opts_mut().search = SearchEngine::Both;
            let verdict = query
                .run_with(&cache)
                .unwrap_or_else(|e| panic!("{} at n = {n}: {e}", entry.name));
            match &verdict.evidence {
                Evidence::DecisionMap(map) => {
                    // SAT: replay the witness facet-by-facet once more,
                    // from the parsed-back JSON to cover that path too.
                    map.check(&entry.spec).expect("witness replays");
                    assert_eq!(verdict.is_solvable(), Some(true));
                }
                Evidence::RoundsUnsat { rounds, .. } => {
                    assert_eq!(*rounds, 1);
                }
                other => panic!("{}: unexpected evidence {other:?}", entry.name),
            }
        }
    }
}

#[test]
fn election_agreement_extends_to_two_rounds() {
    // The deepest instance the reference oracle sustains in debug mode.
    let spec = gsb_core::GsbSpec::election(2).expect("well-formed");
    let mut query = Query::classify(spec);
    query.opts_mut().agreement_rounds = Some(2);
    query.run().expect("three-way agreement at r ≤ 2");
}

#[test]
fn budget_exhaustion_is_an_indeterminate_verdict() {
    // The legacy `reference_budget` alias still governs the node budget,
    // but exhaustion now surfaces as an indeterminate verdict instead of
    // `Error::BudgetExhausted`.
    let spec = gsb_core::SymmetricGsb::wsb(3)
        .expect("well-formed")
        .to_spec();
    let mut query = Query::solvable_in_rounds(spec, 1);
    query.opts_mut().search = SearchEngine::Reference;
    #[allow(deprecated)]
    {
        query.opts_mut().reference_budget = Some(1);
    }
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("exhaustion is a verdict, not an error");
    assert!(verdict.is_indeterminate(), "got {verdict:?}");
    assert_eq!(verdict.solvability, None);
    match &verdict.evidence {
        Evidence::Indeterminate { reason, .. } => {
            assert_eq!(*reason, gsb_engine::StopReason::NodeBudget);
        }
        other => panic!("expected indeterminate evidence, got {other:?}"),
    }
}
