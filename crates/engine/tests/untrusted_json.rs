//! Fuzz-style hardening tests: the serve path feeds attacker-controlled
//! bytes into `Json::parse`, `Verdict::from_json`, and the
//! `Question`/`EngineOpts`/spec value parsers. Every input here must
//! come back as a clean `Err` — never a panic, stack overflow, or
//! runaway allocation.

use gsb_engine::json::{spec_from_json, spec_to_json};
use gsb_engine::{EngineCache, EngineOpts, Json, Query, Question, Verdict};

/// A genuine verdict report to mutate: classify WSB for 6 processes.
fn valid_report() -> String {
    let spec = gsb_engine::named_task("wsb", 6, None).expect("known task");
    let verdict = Query::new(spec, Question::Classify)
        .run_with(&EngineCache::new())
        .expect("classification succeeds");
    verdict.to_json()
}

#[test]
fn truncated_reports_error_cleanly() {
    let report = valid_report();
    // Every char-boundary prefix short of the closing brace: parseable
    // only once complete, and never a panic along the way.
    let complete = report.trim_end();
    for (at, _) in complete.char_indices() {
        let truncated = &complete[..at];
        assert!(
            Verdict::from_json(truncated).is_err(),
            "prefix of {at} bytes must not parse"
        );
    }
    assert!(Verdict::from_json(&report).is_ok());
}

#[test]
fn garbage_inputs_error_cleanly() {
    let garbage = [
        "",
        " ",
        "null",
        "true",
        "[]",
        "{}",
        "\"verdict\"",
        "{",
        "}",
        "\"",
        "[1,2,",
        "{\"solvability\":",
        "nul",
        "tru",
        "-",
        "1e",
        "\u{0}\u{1}\u{2}",
        "{\"solvability\":\"maybe\"}",
        "{\"solvability\":null,\"evidence\":42}",
        "\u{feff}{}",
    ];
    for text in garbage {
        assert!(
            Verdict::from_json(text).is_err(),
            "garbage {text:?} must not parse as a verdict"
        );
    }
}

#[test]
fn nesting_bombs_do_not_overflow_the_stack() {
    // Without the parser depth limit these recurse ~10^5 frames deep
    // and abort the process; with it they are ordinary errors.
    let bombs = [
        "[".repeat(200_000),
        "{\"a\":".repeat(100_000),
        format!("{}1{}", "[".repeat(200_000), "]".repeat(200_000)),
        format!("{{\"evidence\":{}", "[".repeat(150_000)),
    ];
    for bomb in &bombs {
        assert!(Json::parse(bomb).is_err());
        assert!(Verdict::from_json(bomb).is_err());
    }
}

#[test]
fn huge_numbers_do_not_panic_duration_conversion() {
    // `Duration::from_secs_f64` panics on non-finite or out-of-range
    // input; the parser must reject 1e999 (infinity after parsing) and
    // absurd-but-finite magnitudes without panicking.
    let mut report = valid_report();
    let needle = "\"wall_ms\": ";
    let at = report.find(needle).expect("report carries wall_ms");
    for huge in ["1e999", "-1e999", "1e308", "-1"] {
        let end = report[at..].find(',').expect("wall_ms is not last") + at;
        report.replace_range(at + needle.len()..end, huge);
        let parsed = Verdict::from_json(&report);
        match huge {
            // Overflows every Duration: must be a clean error.
            "1e999" => assert!(parsed.is_err(), "{huge} must not produce a Duration"),
            // Absurd but representable magnitudes error without panicking.
            "1e308" => assert!(parsed.is_err(), "{huge} overflows Duration"),
            // Negative walls clamp to zero (a hostile field is not
            // worth rejecting the whole report over).
            "-1e999" | "-1" => {
                let verdict = parsed.expect("negative wall clamps to zero");
                assert_eq!(verdict.stats.wall, std::time::Duration::ZERO);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn oversized_decision_maps_are_rejected_before_rebuild() {
    // A crafted decision-map evidence names (n, rounds) whose rebuild
    // would materialize fubini(n)^rounds facets — an OOM vector. The
    // cost guard must reject it during parsing, quickly.
    let craft = |n: usize, rounds: usize| {
        format!(
            concat!(
                // Null solvability: parsing must get past this field and
                // actually reach the evidence guard under test.
                "{{\"solvability\":null,",
                "\"evidence\":{{\"kind\":\"decision-map\",\"n\":{},\"rounds\":{},\"assignment\":[]}},",
                "\"provenance\":{{\"question\":{{\"kind\":\"classify\"}},\"spec\":null,",
                "\"engines\":[],\"justification\":\"\",\"cache_hit\":false}},",
                "\"stats\":{{\"wall_ms\":0,\"evidence_checked\":false,",
                "\"simulated_runs\":0,\"search\":null}}}}"
            ),
            n, rounds
        )
    };
    for (n, rounds) in [(12, 1), (6, 3), (5, 60), (1_000_000, 1_000_000), (0, 1)] {
        let start = std::time::Instant::now();
        assert!(
            Verdict::from_json(&craft(n, rounds)).is_err(),
            "({n}, {rounds}) rebuild must be rejected"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "rejection must not first materialize the complex"
        );
    }
}

#[test]
fn question_and_opts_values_reject_malformed_shapes() {
    let malformed = [
        "null",
        "42",
        "[]",
        "{\"kind\":\"solvable-in-rounds\"}",
        "{\"kind\":\"solvable-in-rounds\",\"rounds\":-1}",
        "{\"kind\":\"solvable-in-rounds\",\"rounds\":1.5}",
        "{\"kind\":\"atlas\",\"max_n\":\"six\"}",
        "{\"kind\":\"no-such-question\"}",
    ];
    for text in malformed {
        let value = Json::parse(text).expect("syntactically valid JSON");
        assert!(
            Question::from_json_value(&value).is_err(),
            "{text} must not parse as a question"
        );
    }
    let bad_opts = [
        "null",
        "[]",
        "{\"search\":\"cdcl\",\"deadline_ms\":1e999}",
        "{\"search\":\"no-such-engine\"}",
        "{\"deadline_ms\":10}",
    ];
    for text in bad_opts {
        let value = Json::parse(text).expect("syntactically valid JSON");
        assert!(
            EngineOpts::from_json_value(&value).is_err(),
            "{text} must not parse as opts"
        );
    }
}

#[test]
fn spec_values_reject_malformed_shapes() {
    let spec = gsb_engine::named_task("renaming", 3, Some(4)).expect("known task");
    let round_tripped = spec_from_json(&spec_to_json(&spec)).expect("round trip");
    assert_eq!(round_tripped, spec);
    for text in [
        "null",
        "{}",
        "{\"n\":0}",
        "{\"n\":3,\"m\":\"four\"}",
        "{\"n\":1e18,\"m\":1e18}",
    ] {
        let value = Json::parse(text).expect("syntactically valid JSON");
        assert!(
            spec_from_json(&value).is_err(),
            "{text} must not parse as a spec"
        );
    }
}
