//! Governance integration: every governed loop — CDCL portfolio,
//! reference backtracker, streamed orbit construction — stops when its
//! ticket trips, and the engine reports the stop as an *indeterminate
//! verdict* (never a hang, never an abort). The deterministic
//! fault-injection harness drives the cancellation/panic paths from
//! explicit seeds.
//!
//! The fault harness is process-global (any `Ticket::check` in the
//! process can consume an armed plan), so every test here serializes on
//! one mutex — the fault tests via the harness's own gate would not
//! protect the budget/deadline tests from consuming a plan armed by a
//! concurrently running fault test.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use gsb_core::govern::fault::{self, FaultAction};
use gsb_core::SymmetricGsb;
use gsb_engine::{Batch, EngineCache, Error, Evidence, Query, SearchEngine, StopReason, Verdict};

/// Serializes all governance tests in this binary (see module docs).
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

fn wsb(n: usize) -> gsb_core::GsbSpec {
    SymmetricGsb::wsb(n).expect("well-formed").to_spec()
}

/// Asserts the indeterminate shape and returns the stop reason.
fn stop_reason_of(verdict: &Verdict) -> StopReason {
    assert!(verdict.is_indeterminate(), "got {verdict:?}");
    assert_eq!(verdict.solvability, None);
    assert_eq!(verdict.provenance.engines, vec!["governor".to_string()]);
    match &verdict.evidence {
        Evidence::Indeterminate { reason, .. } => *reason,
        other => panic!("expected indeterminate evidence, got {other:?}"),
    }
}

/// A long-running solve under a short deadline stops within a polling
/// interval instead of hanging: wsb(3) at three rounds is far beyond
/// the deadline, and the watchdog backstops any stride the CDCL
/// portfolio runs between polls.
#[test]
fn deadline_stops_a_long_cdcl_solve() {
    let _g = lock();
    let mut query = Query::solvable_in_rounds(wsb(3), 3);
    query.opts_mut().deadline = Some(Duration::from_millis(40));
    let start = Instant::now();
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("a deadline is a verdict, not an error");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "governed solve must stop within a polling interval"
    );
    assert_eq!(stop_reason_of(&verdict), StopReason::Deadline);
}

/// A conflict budget trips the CDCL portfolio at a strided poll site
/// and the verdict carries the busiest member's partial counters.
#[test]
fn conflict_budget_stops_cdcl_with_partial_counters() {
    let _g = lock();
    let mut query = Query::solvable_in_rounds(wsb(3), 3);
    query.opts_mut().conflict_budget = Some(1);
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("budget exhaustion is a verdict");
    assert_eq!(stop_reason_of(&verdict), StopReason::ConflictBudget);
    let partial = verdict.stats.search.expect("partial counters survive");
    assert!(
        partial.conflicts + partial.decisions > 0,
        "interrupted solve reports the work it did: {partial:?}"
    );
}

/// The `node_budget` field governs the reference backtracker (the
/// deprecated `reference_budget` alias is covered in `agreement.rs`).
#[test]
fn node_budget_stops_the_reference_backtracker() {
    let _g = lock();
    let mut query = Query::solvable_in_rounds(wsb(3), 1);
    query.opts_mut().search = SearchEngine::Reference;
    query.opts_mut().node_budget = Some(1);
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("budget exhaustion is a verdict");
    assert_eq!(stop_reason_of(&verdict), StopReason::NodeBudget);
}

/// A one-byte memory budget trips during streamed construction (the
/// frontier/arena growth charges), before any solving happens.
#[test]
fn memory_budget_stops_streamed_construction() {
    let _g = lock();
    let mut query = Query::solvable_in_rounds(wsb(3), 2);
    query.opts_mut().memory_budget = Some(1);
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("budget exhaustion is a verdict");
    assert_eq!(stop_reason_of(&verdict), StopReason::MemoryBudget);
}

/// The ungoverned paths still reach real verdicts while limits are off.
#[test]
fn generous_limits_do_not_change_the_verdict() {
    let _g = lock();
    let mut query = Query::solvable_in_rounds(wsb(3), 1);
    query.opts_mut().deadline = Some(Duration::from_secs(3600));
    query.opts_mut().conflict_budget = Some(u64::MAX / 4);
    let verdict = query.run_with(&EngineCache::new()).expect("clean run");
    assert!(!verdict.is_indeterminate());
    assert_eq!(verdict.is_solvable(), Some(false));
}

/// Seeded fault injection cancels the CDCL portfolio at a counted poll
/// site: construction runs ungoverned, so the countdown-zero seed lands
/// on the solver's first strided conflict/decision poll. The solve
/// returns no result, reports the cancellation on the ticket, and keeps
/// the partial counters it accumulated before the trip.
#[test]
fn seeded_fault_cancels_the_cdcl_path() {
    let _g = lock();
    let search = gsb_topology::SymmetricSearch::from_spec_streaming(wsb(3), 3);
    let ticket = gsb_core::Ticket::unlimited();
    // splitmix64(6) % 32 == 0: the very first counted poll fires.
    let guard = fault::arm_action(6, FaultAction::Cancel);
    let start = Instant::now();
    let (result, stats) = search.solve_cdcl_governed(&gsb_topology::CdclConfig::default(), &ticket);
    drop(guard);
    assert!(start.elapsed() < Duration::from_secs(30));
    assert!(result.is_none(), "a cancelled solve reaches no result");
    assert_eq!(ticket.stop_reason(), Some(StopReason::Cancelled));
    // Countdown zero lands on the solver's first poll (decision count 0
    // is a multiple of the stride), so only propagation work precedes
    // it — the stats are partial but well-formed.
    assert!(
        stats.propagations + stats.decisions + stats.conflicts > 0,
        "the interrupted solve reports the work it did: {stats:?}"
    );
}

/// The same seed cancels at the same counted poll site every run.
#[test]
fn seeded_fault_cancellation_is_deterministic() {
    let _g = lock();
    let reasons: Vec<StopReason> = (0..2)
        .map(|_| {
            // splitmix64(12) % 32 == 3: lands in the governed
            // construction polls, the same site each run.
            let guard = fault::arm_action(12, FaultAction::TripBudget);
            let mut query = Query::solvable_in_rounds(wsb(3), 2);
            query.opts_mut().conflict_budget = Some(u64::MAX / 4);
            query.opts_mut().use_cache = false;
            let verdict = query
                .run_with(&EngineCache::new())
                .expect("an injected trip is a verdict");
            drop(guard);
            stop_reason_of(&verdict)
        })
        .collect();
    assert_eq!(reasons, vec![StopReason::Fault, StopReason::Fault]);
}

/// Seeded fault injection cancels the reference backtracker, which
/// polls on every visited node.
#[test]
fn seeded_fault_cancels_the_reference_backtracker() {
    let _g = lock();
    let guard = fault::arm_action(0xBEEF, FaultAction::Cancel);
    let mut query = Query::solvable_in_rounds(wsb(3), 1);
    query.opts_mut().search = SearchEngine::Reference;
    query.opts_mut().node_budget = Some(u64::MAX / 4);
    query.opts_mut().use_cache = false;
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("an injected cancellation is a verdict");
    drop(guard);
    assert_eq!(stop_reason_of(&verdict), StopReason::Cancelled);
}

/// Seeded fault injection cancels the orbit-frontier expansion loops
/// directly at the topology layer: `try_advance`/`try_expand` return
/// `Stopped` and leave the frontier at its last completed round.
#[test]
fn seeded_fault_cancels_orbit_frontier_expansion() {
    let _g = lock();
    let ticket = gsb_core::Ticket::unlimited();
    // Countdown for this seed lands inside the construction loops of a
    // 4-process, 2-round streamed build (hundreds of poll sites).
    let guard = fault::arm_action(0x0B17, FaultAction::Cancel);
    let outcome = gsb_topology::ConstraintSystem::streamed_governed(4, 2, Some(&ticket));
    drop(guard);
    let stopped = outcome.expect_err("the armed cancel must land mid-construction");
    assert_eq!(stopped.reason, gsb_core::StopReason::Cancelled);
    // The ungoverned build still works afterwards (no shared-state
    // corruption from the aborted one).
    let (system, _) = gsb_topology::ConstraintSystem::streamed(4, 2);
    assert!(system.facet_count() > 0);
}

/// **Batch panic isolation**: a deliberately poisoned query (injected
/// panic at a counted poll site) yields `Error::Panicked` in its own
/// slot while its batch-mates complete undisturbed, and the results
/// stay index-aligned with the queries.
#[test]
fn poisoned_batch_query_leaves_siblings_intact() {
    let _g = lock();
    let guard = fault::arm_action(3, FaultAction::Panic);
    let mut poisoned = Query::solvable_in_rounds(wsb(3), 2);
    // Only this query is governed, so only it polls — the injected
    // panic lands in slot 1 deterministically.
    poisoned.opts_mut().conflict_budget = Some(u64::MAX / 4);
    poisoned.opts_mut().use_cache = false;
    let batch: Batch = [Query::classify(wsb(4)), poisoned, Query::classify(wsb(5))]
        .into_iter()
        .collect();
    let results = batch.run_with(&EngineCache::new());
    drop(guard);
    assert_eq!(results.len(), 3, "results stay index-aligned");
    match &results[1] {
        Err(Error::Panicked { details }) => {
            assert!(details.contains("injected fault"), "details: {details}");
        }
        other => panic!("expected Panicked in slot 1, got {other:?}"),
    }
    for (i, n) in [(0usize, 4usize), (2, 5)] {
        let sibling = results[i].as_ref().expect("siblings complete");
        assert_eq!(sibling.provenance.spec.as_ref(), Some(&wsb(n)));
    }
}

/// Batch results stay index-aligned when a member comes back
/// indeterminate (budget-tripped) rather than panicked.
#[test]
fn indeterminate_batch_member_keeps_result_alignment() {
    let _g = lock();
    let mut tripped = Query::solvable_in_rounds(wsb(3), 3);
    tripped.opts_mut().conflict_budget = Some(1);
    let batch: Batch = [Query::classify(wsb(4)), tripped, Query::classify(wsb(6))]
        .into_iter()
        .collect();
    let results = batch.run_with(&EngineCache::new());
    assert_eq!(results.len(), 3);
    assert!(results[1].as_ref().expect("a verdict").is_indeterminate());
    assert!(!results[0].as_ref().expect("clean").is_indeterminate());
    assert!(!results[2].as_ref().expect("clean").is_indeterminate());
}

/// Interrupted searches are never cached: after a budget-tripped run,
/// the same query with generous limits recomputes a real verdict.
#[test]
fn interrupted_results_are_not_cached() {
    let _g = lock();
    let cache = EngineCache::new();
    // One node is not enough for wsb(3) at one round (five visits), so
    // the governed tiny-instance path trips on its per-node poll.
    let mut tripped = Query::solvable_in_rounds(wsb(3), 1);
    tripped.opts_mut().node_budget = Some(1);
    let first = tripped.run_with(&cache).expect("tripped verdict");
    assert_eq!(stop_reason_of(&first), StopReason::NodeBudget);
    let clean = Query::solvable_in_rounds(wsb(3), 1)
        .run_with(&cache)
        .expect("clean verdict");
    assert!(!clean.is_indeterminate());
    assert_eq!(clean.is_solvable(), Some(false));
    assert!(
        !clean.provenance.cache_hit,
        "the interrupted run must not have populated the cache"
    );
    // The clean run *does* populate it.
    let again = Query::solvable_in_rounds(wsb(3), 1)
        .run_with(&cache)
        .expect("cached verdict");
    assert!(again.provenance.cache_hit);
}

/// Every question — including the closed-form ones that never reach a
/// solver loop — accepts a deadline: a zero deadline stops each before
/// any real work (the admission poll observes the tripped ticket).
#[test]
fn certificate_and_atlas_respect_deadlines() {
    let _g = lock();
    for mut query in [
        Query::certificate(wsb(3), 2),
        Query::atlas(6),
        Query::classify(wsb(4)),
        Query::no_comm_witness(wsb(4)),
    ] {
        query.opts_mut().deadline = Some(Duration::ZERO);
        let verdict = query
            .run_with(&EngineCache::new())
            .expect("a deadline is a verdict");
        assert_eq!(stop_reason_of(&verdict), StopReason::Deadline);
    }
}
