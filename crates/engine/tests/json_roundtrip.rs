//! JSON round-trip: every evidence kind the engine emits must parse
//! back losslessly and remain machine-checkable afterwards.

use gsb_core::{GsbSpec, SymmetricGsb};
use gsb_engine::{EngineCache, Evidence, Query, Verdict};

/// One query per evidence kind.
fn sample_queries() -> Vec<(&'static str, Query)> {
    vec![
        (
            "kernel",
            Query::classify(SymmetricGsb::wsb(6).unwrap().to_spec()),
        ),
        (
            "no-communication",
            Query::classify(SymmetricGsb::loose_renaming(4).unwrap().to_spec()),
        ),
        (
            "infeasible",
            Query::classify(SymmetricGsb::renaming(5, 4).unwrap().to_spec()),
        ),
        (
            "decision-map",
            Query::solvable_in_rounds(SymmetricGsb::renaming(3, 6).unwrap().to_spec(), 1),
        ),
        (
            "rounds-unsat",
            Query::solvable_in_rounds(SymmetricGsb::wsb(3).unwrap().to_spec(), 1),
        ),
        (
            "no-comm-impossible",
            Query::no_comm_witness(SymmetricGsb::wsb(4).unwrap().to_spec()),
        ),
        (
            "election-certificate",
            Query::certificate(GsbSpec::election(4).unwrap(), 1),
        ),
        ("atlas", Query::atlas(3)),
    ]
}

#[test]
fn every_evidence_kind_round_trips() {
    let cache = EngineCache::new();
    for (expected_kind, query) in sample_queries() {
        let verdict = query
            .run_with(&cache)
            .unwrap_or_else(|e| panic!("{expected_kind}: {e}"));
        assert_eq!(
            verdict.evidence.label(),
            expected_kind,
            "query produced unexpected evidence"
        );
        let json = verdict.to_json();
        let parsed = Verdict::from_json(&json)
            .unwrap_or_else(|e| panic!("{expected_kind} failed to parse: {e}\n{json}"));
        // Everything except wall time is lossless; wall time survives to
        // f64 precision, which re-rendering pins exactly.
        assert_eq!(parsed.solvability, verdict.solvability, "{expected_kind}");
        assert_eq!(parsed.evidence, verdict.evidence, "{expected_kind}");
        assert_eq!(parsed.provenance, verdict.provenance, "{expected_kind}");
        assert_eq!(parsed.stats.search, verdict.stats.search, "{expected_kind}");
        assert_eq!(parsed.to_json(), json, "{expected_kind} not idempotent");
        // The parsed verdict is still independently checkable.
        parsed
            .check()
            .unwrap_or_else(|e| panic!("{expected_kind} re-check after parse: {e}"));
    }
}

#[test]
fn tampered_reports_fail_the_recheck() {
    let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
    let verdict = Query::solvable_in_rounds(spec, 1)
        .run_with(&EngineCache::new())
        .unwrap();
    let Evidence::DecisionMap(map) = &verdict.evidence else {
        panic!("expected a decision map");
    };
    // Forge the witness (everyone decides 1 — renaming's u = 1 tolerates
    // no duplicated value inside a facet), ship it through JSON, and
    // verify the parsed report's facet-by-facet replay rejects it.
    let forged = gsb_topology::DecisionMap::rebuild(3, 1, vec![1; map.assignment().len()])
        .expect("right arity");
    let mut bad = verdict.clone();
    bad.evidence = Evidence::DecisionMap(forged);
    let parsed = Verdict::from_json(&bad.to_json()).expect("well-formed JSON");
    assert!(parsed.check().is_err(), "forged witness must be rejected");
}

#[test]
fn malformed_reports_are_rejected_with_context() {
    for bad in [
        "",
        "{}",
        "{\"solvability\": 3}",
        "{\"solvability\": \"sideways\", \"evidence\": {\"kind\": \"no-comm-impossible\"}}",
    ] {
        let err = Verdict::from_json(bad).unwrap_err();
        assert!(matches!(err, gsb_engine::Error::Json { .. }), "{bad}");
    }
}
