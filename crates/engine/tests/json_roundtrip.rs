//! JSON round-trip: every evidence kind the engine emits must parse
//! back losslessly and remain machine-checkable afterwards.

use std::time::Duration;

use gsb_core::{GsbSpec, SymmetricGsb};
use gsb_engine::{EngineCache, EngineOpts, Evidence, Json, Query, SearchEngine, Verdict};

/// One query per evidence kind.
fn sample_queries() -> Vec<(&'static str, Query)> {
    vec![
        (
            "kernel",
            Query::classify(SymmetricGsb::wsb(6).unwrap().to_spec()),
        ),
        (
            "no-communication",
            Query::classify(SymmetricGsb::loose_renaming(4).unwrap().to_spec()),
        ),
        (
            "infeasible",
            Query::classify(SymmetricGsb::renaming(5, 4).unwrap().to_spec()),
        ),
        (
            "decision-map",
            Query::solvable_in_rounds(SymmetricGsb::renaming(3, 6).unwrap().to_spec(), 1),
        ),
        (
            "rounds-unsat",
            Query::solvable_in_rounds(SymmetricGsb::wsb(3).unwrap().to_spec(), 1),
        ),
        (
            "no-comm-impossible",
            Query::no_comm_witness(SymmetricGsb::wsb(4).unwrap().to_spec()),
        ),
        (
            "election-certificate",
            Query::certificate(GsbSpec::election(4).unwrap(), 1),
        ),
        ("atlas", Query::atlas(3)),
    ]
}

#[test]
fn every_evidence_kind_round_trips() {
    let cache = EngineCache::new();
    for (expected_kind, query) in sample_queries() {
        let verdict = query
            .run_with(&cache)
            .unwrap_or_else(|e| panic!("{expected_kind}: {e}"));
        assert_eq!(
            verdict.evidence.label(),
            expected_kind,
            "query produced unexpected evidence"
        );
        let json = verdict.to_json();
        let parsed = Verdict::from_json(&json)
            .unwrap_or_else(|e| panic!("{expected_kind} failed to parse: {e}\n{json}"));
        // Everything except wall time is lossless; wall time survives to
        // f64 precision, which re-rendering pins exactly.
        assert_eq!(parsed.solvability, verdict.solvability, "{expected_kind}");
        assert_eq!(parsed.evidence, verdict.evidence, "{expected_kind}");
        assert_eq!(parsed.provenance, verdict.provenance, "{expected_kind}");
        assert_eq!(parsed.stats.search, verdict.stats.search, "{expected_kind}");
        assert_eq!(parsed.to_json(), json, "{expected_kind} not idempotent");
        // The parsed verdict is still independently checkable.
        parsed
            .check()
            .unwrap_or_else(|e| panic!("{expected_kind} re-check after parse: {e}"));
    }
}

/// A governed run stopped by its limits emits `indeterminate` evidence,
/// and that verdict survives JSON like every other kind: lossless,
/// idempotent, and still checkable after parsing. A zero deadline makes
/// the interruption deterministic (the first poll trips).
#[test]
fn indeterminate_verdicts_round_trip() {
    let mut query = Query::solvable_in_rounds(SymmetricGsb::wsb(3).unwrap().to_spec(), 2);
    query.opts_mut().deadline = Some(Duration::ZERO);
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("a tripped deadline is a verdict, not an error");
    assert!(verdict.is_indeterminate());
    assert_eq!(verdict.evidence.label(), "indeterminate");
    let json = verdict.to_json();
    let parsed = Verdict::from_json(&json).expect("indeterminate verdicts parse back");
    assert!(parsed.is_indeterminate());
    assert_eq!(parsed.solvability, None);
    assert_eq!(parsed.evidence, verdict.evidence);
    assert_eq!(parsed.provenance, verdict.provenance);
    assert_eq!(parsed.to_json(), json, "not idempotent");
    parsed
        .check()
        .expect("indeterminate evidence makes no claim and must pass the recheck");
}

/// `EngineOpts` governance fields (deadline + the four budgets) round
/// trip through their JSON form, including through a render/parse of
/// the text itself — and so do the search-mode and warm-start toggles
/// behind `--search-mode` / `--no-warm-start`.
#[test]
fn engine_opts_round_trip_through_json() {
    let opts = EngineOpts {
        search: SearchEngine::Both,
        deadline: Some(Duration::from_millis(1500)),
        decision_budget: Some(10_000),
        conflict_budget: None,
        node_budget: Some(77),
        memory_budget: Some(64 * 1024 * 1024),
        mode: gsb_topology::SearchMode::Race,
        warm_start: false,
        ..EngineOpts::default()
    };
    let text = opts.to_json_value().render();
    assert!(text.contains("\"mode\": \"race\""), "{text}");
    assert!(text.contains("\"warm_start\": false"), "{text}");
    let parsed = EngineOpts::from_json_value(&Json::parse(&text).expect("well-formed"))
        .expect("options parse back");
    assert_eq!(parsed.search, opts.search);
    assert_eq!(parsed.deadline, opts.deadline);
    assert_eq!(parsed.decision_budget, opts.decision_budget);
    assert_eq!(parsed.conflict_budget, opts.conflict_budget);
    assert_eq!(parsed.node_budget, opts.node_budget);
    assert_eq!(parsed.memory_budget, opts.memory_budget);
    assert_eq!(parsed.mode, opts.mode);
    assert_eq!(parsed.warm_start, opts.warm_start);
}

/// Search-mode defaults and rejects: a payload without the new keys
/// parses to plain CDCL with warm starts on (pre-PR payloads keep their
/// meaning), every mode label round-trips, and an unknown label is a
/// structured JSON error rather than a silent fallback.
#[test]
fn search_mode_json_defaults_and_rejects() {
    let legacy = Json::parse("{\"search\": \"cdcl\"}").expect("well-formed");
    let parsed = EngineOpts::from_json_value(&legacy).expect("legacy options parse");
    assert_eq!(parsed.mode, gsb_topology::SearchMode::Cdcl);
    assert!(parsed.warm_start);
    for mode in [
        gsb_topology::SearchMode::Cdcl,
        gsb_topology::SearchMode::Race,
        gsb_topology::SearchMode::Local,
    ] {
        let opts = EngineOpts {
            mode,
            ..EngineOpts::default()
        };
        let text = opts.to_json_value().render();
        let parsed = EngineOpts::from_json_value(&Json::parse(&text).expect("well-formed"))
            .expect("mode label parses back");
        assert_eq!(parsed.mode, mode);
    }
    let bad = Json::parse("{\"mode\": \"quantum\"}").expect("well-formed");
    assert!(matches!(
        EngineOpts::from_json_value(&bad),
        Err(gsb_engine::Error::Json { .. })
    ));
}

/// A local-search SAT witness is indistinguishable from a CDCL one to
/// the evidence layer: it ships as a decision map, survives JSON, and
/// replays facet by facet through the independent checker.
#[test]
fn local_search_witness_replays_through_evidence_check() {
    let spec = SymmetricGsb::loose_renaming(4).unwrap().to_spec();
    let mut query = Query::solvable_in_rounds(spec, 2);
    query.opts_mut().mode = gsb_topology::SearchMode::Local;
    query.opts_mut().use_cache = false;
    let verdict = query
        .run_with(&EngineCache::new())
        .expect("local search cracks the n=4 SAT instance");
    assert_eq!(verdict.evidence.label(), "decision-map");
    assert!(
        verdict.stats.search.expect("a search ran").local_won,
        "the witness must come from the local engine, not CDCL"
    );
    let parsed = Verdict::from_json(&verdict.to_json()).expect("round trips");
    parsed
        .check()
        .expect("local-search witness replays facet by facet");
}

/// Pre-governance options JSON still parses: missing budget fields stay
/// `None`, and the legacy `reference_budget` key is honored as an alias
/// of `node_budget`. The deprecated field itself serializes *as*
/// `node_budget`, so re-rendering migrates old payloads forward.
#[test]
fn legacy_reference_budget_key_parses_as_node_budget() {
    let legacy =
        Json::parse("{\"search\": \"reference\", \"reference_budget\": 42}").expect("well-formed");
    let parsed = EngineOpts::from_json_value(&legacy).expect("legacy options parse");
    assert_eq!(parsed.search, SearchEngine::Reference);
    assert_eq!(parsed.node_budget, Some(42));
    assert_eq!(parsed.deadline, None);
    assert_eq!(parsed.memory_budget, None);
    // An explicit node_budget wins over the alias.
    let both = Json::parse("{\"search\": \"cdcl\", \"node_budget\": 7, \"reference_budget\": 42}")
        .expect("well-formed");
    assert_eq!(
        EngineOpts::from_json_value(&both).unwrap().node_budget,
        Some(7)
    );
    // The deprecated setter folds into node_budget on the way out.
    let mut opts = EngineOpts::default();
    #[allow(deprecated)]
    {
        opts.reference_budget = Some(9);
    }
    let rendered = opts.to_json_value();
    assert_eq!(
        rendered.get("node_budget").and_then(Json::as_f64),
        Some(9.0)
    );
}

#[test]
fn tampered_reports_fail_the_recheck() {
    let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
    let verdict = Query::solvable_in_rounds(spec, 1)
        .run_with(&EngineCache::new())
        .unwrap();
    let Evidence::DecisionMap(map) = &verdict.evidence else {
        panic!("expected a decision map");
    };
    // Forge the witness (everyone decides 1 — renaming's u = 1 tolerates
    // no duplicated value inside a facet), ship it through JSON, and
    // verify the parsed report's facet-by-facet replay rejects it.
    let forged = gsb_topology::DecisionMap::rebuild(3, 1, vec![1; map.assignment().len()])
        .expect("right arity");
    let mut bad = verdict.clone();
    bad.evidence = Evidence::DecisionMap(forged);
    let parsed = Verdict::from_json(&bad.to_json()).expect("well-formed JSON");
    assert!(parsed.check().is_err(), "forged witness must be rejected");
}

#[test]
fn malformed_reports_are_rejected_with_context() {
    for bad in [
        "",
        "{}",
        "{\"solvability\": 3}",
        "{\"solvability\": \"sideways\", \"evidence\": {\"kind\": \"no-comm-impossible\"}}",
    ] {
        let err = Verdict::from_json(bad).unwrap_err();
        assert!(matches!(err, gsb_engine::Error::Json { .. }), "{bad}");
    }
}
