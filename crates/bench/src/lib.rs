//! # gsb-bench — benchmark harness and paper-style reports
//!
//! Criterion benches (one per reproduced table/figure/experiment, see
//! `DESIGN.md` §3) and report binaries that print the paper's artifacts:
//!
//! * `cargo run -p gsb-bench --bin table1` — Table 1 (kernel table).
//! * `cargo run -p gsb-bench --bin figure1` — Figure 1 (canonical order).
//! * `cargo run -p gsb-bench --bin figure2` — Theorem 12 validation sweep.
//! * `cargo run -p gsb-bench --bin atlas` — solvability atlas (Theorems
//!   9–11 across parameter sweeps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gsb_core::{Solvability, SymmetricGsb};

/// Rows of the solvability atlas: one classified task.
#[derive(Debug, Clone)]
pub struct AtlasRow {
    /// The task.
    pub task: SymmetricGsb,
    /// Classifier verdict.
    pub verdict: Solvability,
    /// Justification string from the classifier.
    pub justification: String,
}

/// Classifies every feasible `⟨n, m, −, −⟩` task for `n ∈ 2..=max_n`,
/// `m ∈ 1..=n`.
#[must_use]
pub fn atlas(max_n: usize) -> Vec<AtlasRow> {
    let mut rows = Vec::new();
    for n in 2..=max_n {
        for m in 1..=n {
            for task in gsb_core::order::feasible_family(n, m).expect("valid family") {
                let class = task.classify();
                rows.push(AtlasRow {
                    task,
                    verdict: class.solvability,
                    justification: class.justification,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_covers_all_verdicts() {
        let rows = atlas(6);
        assert!(!rows.is_empty());
        let has = |v: Solvability| rows.iter().any(|r| r.verdict == v);
        assert!(has(Solvability::SolvableWithoutCommunication));
        assert!(has(Solvability::NotWaitFreeSolvable));
        assert!(has(Solvability::WaitFreeSolvable));
        assert!(has(Solvability::Open));
    }
}
