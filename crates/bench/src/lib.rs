//! # gsb-bench — benchmark harness and paper-style reports
//!
//! Criterion benches (one per reproduced table/figure/experiment, see
//! `DESIGN.md` §4) and report binaries that print the paper's artifacts:
//!
//! * `cargo run -p gsb-bench --bin table1` — Table 1 (kernel table).
//! * `cargo run -p gsb-bench --bin figure1` — Figure 1 (canonical order).
//! * `cargo run -p gsb-bench --bin figure2` — Theorem 12 validation sweep.
//! * `cargo run -p gsb-bench --bin atlas` — solvability atlas (Theorems
//!   9–11 across parameter sweeps) + the `BENCH_atlas.json` perf record.
//!
//! ## The two atlas engines
//!
//! [`atlas`] is the production path: families fan out over rayon, kernel
//! sets come from the process-wide memo table, per-synonym-class artifacts
//! (kernel statistics, output counts) are computed once per class, and
//! anchoring uses the paper's closed forms (Theorems 3–4).
//!
//! [`atlas_naive`] is the seed's serial path, retained as the benchmark
//! baseline: one task at a time, kernel sets recomputed from scratch for
//! every row, anchoring by definitional kernel-set comparison. The
//! `naive-atlas` feature rebinds [`atlas`] to it, so
//! `--features naive-atlas` benchmarks the pre-optimization behaviour
//! under the production entry point. Both engines produce identical rows
//! (asserted by tests and by the `atlas` criterion bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use gsb_core::kernel::{KernelSet, KernelVector};
use gsb_core::order::feasible_family;
use gsb_core::{Anchoring, Solvability, SymmetricGsb};
use gsb_memory::{
    enumerate_decisions_memoized, enumerate_decisions_naive, Action, Executor, Observation,
    Protocol, Symmetry,
};
use gsb_topology::SearchMode;
use rayon::prelude::*;

/// Rows of the solvability atlas: one classified task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtlasRow {
    /// The task.
    pub task: SymmetricGsb,
    /// Its canonical representative (Theorem 7).
    pub canonical: SymmetricGsb,
    /// Classifier verdict.
    pub verdict: Solvability,
    /// Justification string from the classifier.
    pub justification: String,
    /// Anchoring classification (Definition 5).
    pub anchoring: Anchoring,
    /// Size of the task's kernel set (number of orbit representatives).
    pub kernel_vectors: usize,
    /// Number of legal output vectors.
    pub legal_outputs: u128,
    /// Depth of the task in its `(n, m)` family's strict-inclusion order
    /// (the paper's Figure 1): 0 for the loosest task, growing toward the
    /// hardest. Synonyms share a depth.
    pub inclusion_depth: usize,
}

/// Classifies every feasible `⟨n, m, −, −⟩` task for `n ∈ 2..=max_n`,
/// `m ∈ 1..=n`, with the parallel memoized engine (or the naive serial
/// baseline when the `naive-atlas` feature is on — see the crate docs).
#[must_use]
pub fn atlas(max_n: usize) -> Vec<AtlasRow> {
    #[cfg(feature = "naive-atlas")]
    {
        atlas_naive(max_n)
    }
    #[cfg(not(feature = "naive-atlas"))]
    {
        atlas_engine(max_n)
    }
}

/// The parallel memoized atlas engine (the default behind [`atlas`]).
#[must_use]
pub fn atlas_engine(max_n: usize) -> Vec<AtlasRow> {
    let families: Vec<(usize, usize)> = (2..=max_n)
        .flat_map(|n| (1..=n).map(move |m| (n, m)))
        .collect();
    let per_family: Vec<Vec<AtlasRow>> = families
        .into_par_iter()
        .map(|(n, m)| family_rows(n, m))
        .collect();
    per_family.into_iter().flatten().collect()
}

/// Longest-chain depths over a strict-inclusion relation given each
/// node's kernel set: `strict(i, j)` ⇔ `j`'s set ⊊ `i`'s set; depth 0 =
/// maximal (loosest) nodes.
fn inclusion_depths(kernel_sets: &[&KernelSet]) -> Vec<usize> {
    let k = kernel_sets.len();
    let mut strict = vec![vec![false; k]; k];
    for (i, row) in strict.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = kernel_sets[j].len() < kernel_sets[i].len()
                && kernel_sets[j].is_subset_of(kernel_sets[i]);
        }
    }
    longest_chain_depths(&strict)
}

/// Longest-chain depths over a precomputed strict-inclusion matrix.
/// Longest chains only descend in kernel-set size, so `k` relaxation
/// passes converge — family sizes are tiny, keep it obviously correct.
///
/// `gsb_core::order::TaskOrder::to_ascii` computes the same depth notion
/// for Figure 1; the copies are deliberate: the two engines here are the
/// benchmark's paired cost models (per-member fresh sets vs. per-class
/// bitmasks) and must not share `TaskOrder`'s heavier per-class work.
fn longest_chain_depths(strict: &[Vec<bool>]) -> Vec<usize> {
    let k = strict.len();
    let mut depth = vec![0usize; k];
    for _ in 0..k {
        let mut changed = false;
        for j in 0..k {
            for i in 0..k {
                if strict[i][j] && depth[j] < depth[i] + 1 {
                    depth[j] = depth[i] + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    depth
}

/// Kernel sets as Table-1 bitmask rows: each set becomes a bitmask over
/// the family's kernel-column universe (the loosest task's kernel set),
/// so subset tests collapse to word-wide `a & b == a`.
fn kernel_masks(sets: &[&KernelSet], universe: &KernelSet) -> Vec<Vec<u64>> {
    let index: HashMap<&KernelVector, usize> =
        universe.iter().enumerate().map(|(i, k)| (k, i)).collect();
    let blocks = universe.len().div_ceil(64).max(1);
    sets.iter()
        .map(|set| {
            let mut mask = vec![0u64; blocks];
            for kernel in set.iter() {
                let bit = index[kernel];
                mask[bit / 64] |= 1 << (bit % 64);
            }
            mask
        })
        .collect()
}

/// Longest-chain depths over bitmask-encoded kernel sets (the engine's
/// fast path; semantics identical to [`inclusion_depths`]).
fn inclusion_depths_masked(masks: &[Vec<u64>], lens: &[usize]) -> Vec<usize> {
    let k = masks.len();
    let subset = |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(&x, &y)| x & y == x);
    let mut strict = vec![vec![false; k]; k];
    for (i, row) in strict.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = lens[j] < lens[i] && subset(&masks[j], &masks[i]);
        }
    }
    longest_chain_depths(&strict)
}

/// One `(n, m)` family of the fast engine: classification, kernel
/// statistics, output counts, and inclusion depths are computed once per
/// **synonym class** (with memo-table kernel sets and Table-1 bitmask
/// subset tests) and shared by every member row; anchoring uses the
/// Theorem 3–4 closed forms.
fn family_rows(n: usize, m: usize) -> Vec<AtlasRow> {
    let family = feasible_family(n, m).expect("valid family");
    let canonicals: Vec<SymmetricGsb> = family
        .iter()
        .map(|t| t.canonical().expect("family members are feasible"))
        .collect();

    // One entry per synonym class, in first-appearance order.
    let mut class_index: HashMap<(usize, usize), usize> = HashMap::new();
    let mut reps: Vec<SymmetricGsb> = Vec::new();
    for canonical in &canonicals {
        class_index
            .entry((canonical.l(), canonical.u()))
            .or_insert_with(|| {
                reps.push(*canonical);
                reps.len() - 1
            });
    }
    let kernel_sets: Vec<std::sync::Arc<KernelSet>> =
        reps.iter().map(SymmetricGsb::kernel_set_cached).collect();
    let set_refs: Vec<&KernelSet> = kernel_sets
        .iter()
        .map(std::convert::AsRef::as_ref)
        .collect();
    let universe = SymmetricGsb::new(n, m, 0, n)
        .expect("loosest task is well-formed")
        .kernel_set_cached();
    let masks = kernel_masks(&set_refs, &universe);
    let lens: Vec<usize> = set_refs.iter().map(|s| s.len()).collect();
    let depths = inclusion_depths_masked(&masks, &lens);
    let counts: Vec<u128> = reps.iter().map(SymmetricGsb::legal_output_count).collect();
    let classifications: Vec<gsb_core::Classification> =
        reps.iter().map(classification_cached).collect();
    // Pre-render the one "…; via canonical X" string each class's
    // non-canonical members share, instead of re-formatting per row —
    // built lazily, only for classes that actually have such members.
    let mut suffixed: Vec<Option<String>> = vec![None; reps.len()];
    for (task, canonical) in family.iter().zip(&canonicals) {
        let class = class_index[&(canonical.l(), canonical.u())];
        if task != canonical
            && suffixed[class].is_none()
            && classifications[class].solvability != Solvability::SolvableWithoutCommunication
        {
            suffixed[class] = Some(format!(
                "{}; via canonical {}",
                classifications[class].justification, canonical
            ));
        }
    }

    family
        .into_iter()
        .zip(canonicals)
        .map(|(task, canonical)| {
            let class = class_index[&(canonical.l(), canonical.u())];
            let classification = &classifications[class];
            // Reconstruct exactly what `task.classify()` would say: the
            // "via canonical" suffix appears only when the verdict comes
            // from the post-canonicalization branches and the task is not
            // its own representative.
            let justification = if task == canonical
                || classification.solvability == Solvability::SolvableWithoutCommunication
            {
                classification.justification.clone()
            } else {
                suffixed[class]
                    .clone()
                    .expect("suffix pre-rendered for classes with non-canonical members")
            };
            let anchoring = task
                .anchoring_closed_form()
                .expect("family members are feasible");
            AtlasRow {
                task,
                canonical,
                verdict: classification.solvability,
                justification,
                anchoring,
                kernel_vectors: kernel_sets[class].len(),
                legal_outputs: counts[class],
                inclusion_depth: depths[class],
            }
        })
        .collect()
}

/// The retained **naive serial baseline**: the seed's one-task-at-a-time
/// pipeline — kernel sets recomputed from scratch per row, anchoring by
/// definitional kernel-set comparison, no sharing across synonyms, no
/// parallelism. Produces exactly the same rows as [`atlas_engine`].
///
/// One shared component is deliberately *not* de-optimized: both paths
/// call the same `classify()`, whose Theorem-10 gcd lookup reads the
/// process-wide `binomial_gcd` table. That quantity is O(n) arithmetic
/// either way — noise next to the kernel-set work the baseline
/// recomputes — and forking the classifier to dodge it would risk the
/// row-identity guarantee the benchmark rests on.
#[must_use]
pub fn atlas_naive(max_n: usize) -> Vec<AtlasRow> {
    let mut rows = Vec::new();
    for n in 2..=max_n {
        for m in 1..=n {
            let family = feasible_family(n, m).expect("valid family");
            // Member-level inclusion order: every pairwise test recomputes
            // both kernel sets (no memo table, no synonym grouping).
            let member_sets: Vec<KernelSet> = family.iter().map(KernelSet::of_task).collect();
            let set_refs: Vec<&KernelSet> = member_sets.iter().collect();
            let depths = inclusion_depths(&set_refs);
            for (idx, task) in family.into_iter().enumerate() {
                let canonical = task.canonical().expect("family members are feasible");
                let class = task.classify();
                let kernel_set = KernelSet::of_task(&task);
                let legal_outputs = kernel_set
                    .iter()
                    .map(KernelVector::output_vector_count)
                    .fold(0u128, u128::saturating_add);
                let anchoring = anchoring_definitional_uncached(&task);
                rows.push(AtlasRow {
                    kernel_vectors: kernel_set.len(),
                    legal_outputs,
                    canonical,
                    verdict: class.solvability,
                    justification: class.justification,
                    anchoring,
                    inclusion_depth: depths[idx],
                    task,
                });
            }
        }
    }
    rows
}

/// Classification of a canonical representative, served from the
/// engine's process-global [`EngineCache`](gsb_engine::EngineCache) —
/// the memo layer this crate used to keep privately, now shared with
/// every `Query`/`Batch` caller in the process.
fn classification_cached(canonical: &SymmetricGsb) -> gsb_core::Classification {
    gsb_engine::EngineCache::global()
        .classification(&canonical.to_spec())
        .0
}

/// Definition-5 anchoring by explicit kernel-set comparison against the
/// perturbed tasks, recomputing every kernel set — a faithful translation
/// of the seed's `anchoring()` (whose two independent definitional checks
/// each rebuilt the task's own kernel set as well).
fn anchoring_definitional_uncached(task: &SymmetricGsb) -> Anchoring {
    let bumped = task
        .with_u((task.u() + 1).min(task.n()))
        .expect("bumping u keeps the spec well-formed");
    let lowered = task
        .with_l(task.l().saturating_sub(1))
        .expect("lowering l keeps the spec well-formed");
    let l_anchored = KernelSet::of_task(task) == KernelSet::of_task(&bumped);
    let u_anchored = KernelSet::of_task(task) == KernelSet::of_task(&lowered);
    match (l_anchored, u_anchored) {
        (true, true) => Anchoring::Both,
        (true, false) => Anchoring::L,
        (false, true) => Anchoring::U,
        (false, false) => Anchoring::None,
    }
}

/// The exchangeable write–snapshot–decide protocol used by the
/// enumeration benchmarks (every machine identical, decisions depend on
/// the view only through the count of non-empty cells).
#[derive(Debug, Clone)]
pub struct SeenCountProtocol;

impl Protocol for SeenCountProtocol {
    fn next_action(&mut self, obs: Observation) -> Action {
        match obs {
            Observation::Start => Action::Write(vec![1]),
            Observation::Written => Action::Snapshot,
            Observation::Snapshot(view) => Action::Decide(view.iter().flatten().count()),
            _ => unreachable!("SeenCount never reads cells or calls oracles"),
        }
    }
    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
    fn state_key(&self) -> Option<Vec<u64>> {
        Some(Vec::new()) // stateless machine
    }
}

/// Builds an `n`-process executor of [`SeenCountProtocol`] machines.
#[must_use]
pub fn seen_count_executor(n: usize) -> Executor {
    let protocols = (0..n)
        .map(|_| Box::new(SeenCountProtocol) as Box<dyn Protocol>)
        .collect();
    Executor::new(protocols, vec![])
}

/// Node-count and wall-time comparison of the enumeration engines on the
/// `n`-process [`SeenCountProtocol`] system.
#[derive(Debug, Clone)]
pub struct EnumerationComparison {
    /// System size.
    pub n: usize,
    /// Complete runs (identical across engines).
    pub runs: usize,
    /// Nodes visited by the naive reference DFS.
    pub naive_nodes: usize,
    /// Nodes visited by the memoized symmetry-reduced engine.
    pub memoized_nodes: usize,
    /// Wall time of the naive reference DFS.
    pub naive_wall: Duration,
    /// Wall time of the memoized engine.
    pub memoized_wall: Duration,
}

/// Runs both enumeration engines on the `n`-process benchmark system and
/// cross-checks that their decision multisets agree.
///
/// # Panics
///
/// Panics if the engines disagree (that would be a soundness bug).
#[must_use]
pub fn compare_enumeration_engines(n: usize) -> EnumerationComparison {
    let exec = seen_count_executor(n);
    let start = Instant::now();
    let (naive_set, naive_stats) =
        enumerate_decisions_naive(&exec, 1_000_000).expect("bounded protocol");
    let naive_wall = start.elapsed();
    let start = Instant::now();
    let (memo_set, memo_stats) =
        enumerate_decisions_memoized(&exec, 1_000_000, Symmetry::Exchangeable)
            .expect("bounded protocol");
    let memoized_wall = start.elapsed();
    assert_eq!(naive_set, memo_set, "engines must agree on the run set");
    EnumerationComparison {
        n,
        runs: naive_stats.runs,
        naive_nodes: naive_stats.nodes,
        memoized_nodes: memo_stats.nodes,
        naive_wall,
        memoized_wall,
    }
}

/// The machine-readable performance record emitted as `BENCH_atlas.json`.
#[derive(Debug, Clone)]
pub struct AtlasReport {
    /// Largest `n` swept.
    pub max_n: usize,
    /// Total rows classified.
    pub rows: usize,
    /// Wall time of the parallel memoized engine.
    pub engine_wall: Duration,
    /// Wall time of the naive serial baseline (same rows).
    pub naive_wall: Duration,
    /// Worker threads available to rayon.
    pub threads: usize,
    /// Enumeration engine comparison (fixed `n = 3` system).
    pub enumeration: EnumerationComparison,
}

impl AtlasReport {
    /// Naive-over-engine wall-time ratio (≥ 1 means the engine wins).
    #[must_use]
    pub fn atlas_speedup(&self) -> f64 {
        self.naive_wall.as_secs_f64() / self.engine_wall.as_secs_f64().max(f64::EPSILON)
    }

    /// Serializes the report as JSON (hand-rolled; the offline build has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let e = &self.enumeration;
        format!(
            "{{\n  \"max_n\": {},\n  \"rows\": {},\n  \"threads\": {},\n  \
             \"atlas\": {{\n    \"engine_wall_ms\": {:.3},\n    \"naive_wall_ms\": {:.3},\n    \
             \"speedup\": {:.2}\n  }},\n  \
             \"enumeration\": {{\n    \"n\": {},\n    \"runs\": {},\n    \
             \"naive_nodes\": {},\n    \"memoized_nodes\": {},\n    \
             \"node_reduction\": {:.2},\n    \"naive_wall_ms\": {:.3},\n    \
             \"memoized_wall_ms\": {:.3}\n  }}\n}}\n",
            self.max_n,
            self.rows,
            self.threads,
            self.engine_wall.as_secs_f64() * 1e3,
            self.naive_wall.as_secs_f64() * 1e3,
            self.atlas_speedup(),
            e.n,
            e.runs,
            e.naive_nodes,
            e.memoized_nodes,
            e.naive_nodes as f64 / e.memoized_nodes as f64,
            e.naive_wall.as_secs_f64() * 1e3,
            e.memoized_wall.as_secs_f64() * 1e3,
        )
    }
}

/// Times both atlas engines (verifying they agree row-for-row), runs the
/// enumeration comparison, and assembles the perf record.
///
/// Each engine is timed best-of-5 after a warm-up pass, so the record
/// reflects steady-state behaviour (the memoized design the optimization
/// gates on) rather than first-touch cache population or scheduler noise.
/// The naive baseline recomputes its kernel-set work from scratch on
/// every call (its only shared cache is `classify()`'s trivial gcd
/// table — see [`atlas_naive`]), so warm-up effectively only speeds up
/// the engine side.
///
/// # Panics
///
/// Panics if the engines produce different rows.
#[must_use]
pub fn atlas_report(max_n: usize) -> AtlasReport {
    const TRIALS: usize = 5;
    let engine_rows = atlas_engine(max_n); // warm the memo tables
    let mut engine_wall = Duration::MAX;
    let mut naive_wall = Duration::MAX;
    let mut naive_rows = Vec::new();
    for _ in 0..TRIALS {
        let start = Instant::now();
        let rows = atlas_engine(max_n);
        engine_wall = engine_wall.min(start.elapsed());
        std::hint::black_box(rows);
        let start = Instant::now();
        naive_rows = atlas_naive(max_n);
        naive_wall = naive_wall.min(start.elapsed());
    }
    assert_eq!(engine_rows, naive_rows, "atlas engines must agree");
    AtlasReport {
        max_n,
        rows: engine_rows.len(),
        engine_wall,
        naive_wall,
        threads: rayon::current_num_threads(),
        enumeration: compare_enumeration_engines(3),
    }
}

/// Writes `BENCH_atlas.json` (see [`AtlasReport::to_json`]) to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(report: &AtlasReport, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}

/// One row of the decision-map search performance record
/// (`BENCH_search.json`): the CDCL engine vs. the retained backtracking
/// baseline on a named instance.
#[derive(Debug, Clone)]
pub struct SearchBenchRow {
    /// Instance label, e.g. `"wsb(3) r=2"`.
    pub instance: String,
    /// Search-mode label (`"cdcl"`, `"race"`, or `"local"`).
    pub mode: String,
    /// Whether the CDCL side branched at orbit/class granularity.
    pub orbit_decisions: bool,
    /// Whether a lifted warm-start seed was installed before the trials.
    pub warm_seeded: bool,
    /// Symmetry classes of the quotiented instance.
    pub classes: usize,
    /// Deduplicated facet constraints.
    pub facets: usize,
    /// Whether a decision map exists.
    pub solvable: bool,
    /// Engine wall time (median of 5 after a warmup pair; heavyweight
    /// rows keep their single warmup sample).
    pub cdcl_wall: Duration,
    /// Wall time of the same query run *governed* — generous deadline
    /// (watchdog armed) plus never-tripping budgets, so every poll site
    /// pays its check (same sampling as `cdcl_wall`). The gap to
    /// `cdcl_wall` is what governance costs.
    pub governed_wall: Duration,
    /// Winner's solver counters.
    pub cdcl_stats: gsb_topology::SearchStats,
    /// Wall time of the backtracking baseline run (zero when the row
    /// skipped the baseline — mode variants of an already-baselined
    /// instance).
    pub baseline_wall: Duration,
    /// `true` when the baseline hit its node budget before a verdict —
    /// its wall time is then a *lower bound*, and so is the speedup.
    pub baseline_censored: bool,
}

impl SearchBenchRow {
    /// Baseline-over-engine wall ratio (a lower bound when censored), or
    /// `None` when the row skipped the baseline or the *uncensored*
    /// baseline simply won — tiny instances where a "0.2×" figure would
    /// misread as a regression instead of "both sides finish in
    /// microseconds".
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        if self.baseline_wall.is_zero() {
            return None;
        }
        let ratio =
            self.baseline_wall.as_secs_f64() / self.cdcl_wall.as_secs_f64().max(f64::EPSILON);
        (self.baseline_censored || ratio >= 1.0).then_some(ratio)
    }

    /// Governed-over-ungoverned wall overhead as a fraction (`0.01` =
    /// 1%); negative when scheduler noise made the governed run win.
    #[must_use]
    pub fn governed_overhead(&self) -> f64 {
        self.governed_wall.as_secs_f64() / self.cdcl_wall.as_secs_f64().max(f64::EPSILON) - 1.0
    }
}

/// The machine-readable record emitted as `BENCH_search.json`.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Per-instance engine comparison.
    pub rows: Vec<SearchBenchRow>,
    /// Worker threads available to the portfolio.
    pub threads: usize,
}

impl SearchReport {
    /// Serializes the report as JSON (hand-rolled; the offline build has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"threads\": ");
        out.push_str(&self.threads.to_string());
        out.push_str(",\n  \"instances\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let s = &row.cdcl_stats;
            out.push_str(&format!(
                "    {{\n      \"instance\": \"{}\",\n      \"mode\": \"{}\",\n      \
                 \"orbit_decisions\": {},\n      \"warm_seeded\": {},\n      \
                 \"classes\": {},\n      \
                 \"facets\": {},\n      \"solvable\": {},\n      \
                 \"cdcl_wall_ms\": {:.3},\n      \"governed_wall_ms\": {:.3},\n      \
                 \"governed_overhead_pct\": {:.2},\n      \
                 \"baseline_wall_ms\": {:.3},\n      \
                 \"baseline_censored\": {},\n      \"speedup\": {},\n      \
                 \"conflicts\": {},\n      \"decisions\": {},\n      \
                 \"propagations\": {},\n      \"learned\": {},\n      \
                 \"symmetric_images\": {},\n      \"restarts\": {},\n      \
                 \"local_steps\": {},\n      \"local_restarts\": {},\n      \
                 \"local_won\": {}\n    }}{}\n",
                row.instance,
                row.mode,
                row.orbit_decisions,
                row.warm_seeded,
                row.classes,
                row.facets,
                row.solvable,
                row.cdcl_wall.as_secs_f64() * 1e3,
                row.governed_wall.as_secs_f64() * 1e3,
                row.governed_overhead() * 100.0,
                row.baseline_wall.as_secs_f64() * 1e3,
                row.baseline_censored,
                row.speedup()
                    .map_or("null".to_string(), |ratio| format!("{ratio:.1}")),
                s.conflicts,
                s.decisions,
                s.propagations,
                s.learned,
                s.symmetric_images,
                s.restarts,
                s.local_steps,
                s.local_restarts,
                s.local_won,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One instance of the search-bench suite: what to solve, how the
/// engine attacks it, and how much baseline work it may spend.
#[derive(Debug, Clone)]
pub struct SearchCase {
    /// Row label, e.g. `"loose_renaming(5) r=2 [race]"`.
    pub label: String,
    /// The task under search.
    pub spec: gsb_core::GsbSpec,
    /// Round bound.
    pub rounds: usize,
    /// Backtracking-baseline node budget in the default mode.
    pub default_budget: u64,
    /// Backtracking-baseline node budget under `--full`.
    pub full_budget: u64,
    /// How the engine attacks the row (plain CDCL, the CDCL-vs-local
    /// completion race, or local search alone).
    pub mode: SearchMode,
    /// Branch at orbit/class granularity (the `[orbit]` A/B rows).
    pub orbit_decisions: bool,
    /// Lift a warm-start seed from this round count's decision map
    /// before the timed trials (the `[warm]` rows).
    pub warm_from: Option<usize>,
    /// Whether to run the backtracking baseline at all — mode-variant
    /// rows of an instance the suite already baselines skip the
    /// duplicate run (their `baseline_wall` is zero, `speedup` null).
    pub baseline: bool,
}

impl SearchCase {
    /// A plain-CDCL case with a baseline run — the historical suite row.
    fn plain(
        label: &str,
        spec: gsb_core::GsbSpec,
        rounds: usize,
        default_budget: u64,
        full_budget: u64,
    ) -> SearchCase {
        SearchCase {
            label: label.into(),
            spec,
            rounds,
            default_budget,
            full_budget,
            mode: SearchMode::Cdcl,
            orbit_decisions: false,
            warm_from: None,
            baseline: true,
        }
    }

    /// A mode/toggle variant of an instance the suite already
    /// baselines: no duplicate baseline run.
    fn variant(
        label: &str,
        spec: gsb_core::GsbSpec,
        rounds: usize,
        mode: SearchMode,
    ) -> SearchCase {
        SearchCase {
            label: label.into(),
            spec,
            rounds,
            default_budget: 0,
            full_budget: 0,
            mode,
            orbit_decisions: false,
            warm_from: None,
            baseline: false,
        }
    }
}

/// The search-bench instance suite: the frontier certificates plus fast
/// sanity rows. The per-case node budgets bound the backtracking
/// baseline — the default budgets keep the exponential baseline from
/// dominating a smoke run (~1 s censored rows); `--full` budgets let
/// the `wsb(3) r=2` row run to its ~10 s verdict while still bounding
/// `loose_renaming(4) r=2`, whose plain search would not terminate in
/// any useful time (the row is then an explicit lower bound).
#[must_use]
pub fn search_suite() -> Vec<SearchCase> {
    let loose4 = SymmetricGsb::loose_renaming(4)
        .expect("well-formed")
        .to_spec();
    vec![
        SearchCase::plain(
            "renaming(3,6) r=1",
            SymmetricGsb::renaming(3, 6).expect("well-formed").to_spec(),
            1,
            u64::MAX,
            u64::MAX,
        ),
        SearchCase::plain(
            "wsb(3) r=2",
            SymmetricGsb::wsb(3).expect("well-formed").to_spec(),
            2,
            1_000_000,
            u64::MAX,
        ),
        SearchCase::plain(
            "election(3) r=2",
            gsb_core::GsbSpec::election(3).expect("well-formed"),
            2,
            u64::MAX,
            u64::MAX,
        ),
        SearchCase::plain(
            "loose_renaming(4) r=2",
            loose4.clone(),
            2,
            1_000_000,
            100_000_000,
        ),
        // The completion-race smoke: the same SAT instance through the
        // CDCL-vs-local race, cheap enough for every CI run. The search
        // bin asserts its verdict matches the plain row's.
        SearchCase::variant("loose_renaming(4) r=2 [race]", loose4, 2, SearchMode::Race),
        // The n = 5 frontier, opened by the streaming construction
        // pipeline: χ(Δ⁴) (541 facets) streams through prep in under a
        // millisecond. One round renames 5 processes into
        // n(n+1)/2 = 15 names and provably not into 2n−1 = 9.
        SearchCase::plain(
            "renaming(5,15) r=1",
            SymmetricGsb::renaming(5, 15)
                .expect("well-formed")
                .to_spec(),
            1,
            u64::MAX,
            u64::MAX,
        ),
        SearchCase::plain(
            "loose_renaming(5) r=1",
            SymmetricGsb::loose_renaming(5)
                .expect("well-formed")
                .to_spec(),
            1,
            u64::MAX,
            u64::MAX,
        ),
    ]
}

/// [`search_suite`] plus the heavyweight `--full`-only rows — the
/// frontier records and the mechanism splits that justify them:
///
/// * `wsb(3) r = 3` — the index-lemma UNSAT over `χ³(Δ²)`'s 1,086
///   classes (~136k conflicts, seconds of CDCL), plus its `[orbit]`
///   A/B twin recording what class-granularity decisions *cost* on a
///   refutation (a measured negative result, gated against silent
///   drift).
/// * `loose_renaming(5) r = 2` — the 10,945-class SAT record, as the
///   plain-CDCL reference, the `[race]` row (the ≤ 20 s production
///   configuration), and the `[local]` row (the completion engine
///   alone).
/// * `renaming(3,6) r = 2` — the warm-start split: the same instance
///   cold vs. `[warm]`-seeded from its own r = 1 decision map lifted
///   through the subdivision (the lift of a SAT map is SAT, so the
///   seeded dive is conflict-free).
///
/// Two frontier rows stay out of the bench on measured grounds and live
/// as `#[ignore]`d pins in `tests/search_frontier.rs` instead: the
/// `wsb(4) r = 2` refutation (hours-scale CDCL) and the
/// `loose_renaming(5) r = 3` map (a ~32 GB constraint system whose
/// witness is certified constructively through the lift theorem — cold
/// search exhausts any reasonable budget there).
#[must_use]
pub fn search_suite_full() -> Vec<SearchCase> {
    let wsb3 = SymmetricGsb::wsb(3).expect("well-formed").to_spec();
    let loose5 = SymmetricGsb::loose_renaming(5)
        .expect("well-formed")
        .to_spec();
    let renaming36 = SymmetricGsb::renaming(3, 6).expect("well-formed").to_spec();
    let mut suite = search_suite();
    suite.push(SearchCase::plain(
        "wsb(3) r=3",
        wsb3.clone(),
        3,
        1_000_000,
        1_000_000,
    ));
    suite.push(SearchCase {
        orbit_decisions: true,
        ..SearchCase::variant("wsb(3) r=3 [orbit]", wsb3.clone(), 3, SearchMode::Cdcl)
    });
    suite.push(SearchCase::plain(
        "loose_renaming(5) r=2",
        loose5.clone(),
        2,
        1_000_000,
        1_000_000,
    ));
    suite.push(SearchCase::variant(
        "loose_renaming(5) r=2 [race]",
        loose5.clone(),
        2,
        SearchMode::Race,
    ));
    suite.push(SearchCase::variant(
        "loose_renaming(5) r=2 [local]",
        loose5.clone(),
        2,
        SearchMode::Local,
    ));
    suite.push(SearchCase::variant(
        "renaming(3,6) r=2",
        renaming36.clone(),
        2,
        SearchMode::Cdcl,
    ));
    suite.push(SearchCase {
        warm_from: Some(1),
        ..SearchCase::variant("renaming(3,6) r=2 [warm]", renaming36, 2, SearchMode::Cdcl)
    });
    suite
}

/// How much baseline work [`search_report_budgeted`] may spend per row.
#[derive(Debug, Clone, Copy)]
pub enum BaselineBudget {
    /// The suite's per-row default budgets (~1 s censored rows).
    Default,
    /// The suite's per-row full budgets (the `wsb(3) r=2` baseline runs
    /// to its ~10 s verdict; `loose_renaming(4) r=2` stays bounded).
    Full,
    /// One explicit node cap for every row (CI smoke, tests).
    Capped(u64),
}

/// Benchmarks the suite with [`BaselineBudget::Full`] or
/// [`BaselineBudget::Default`]; see [`search_report_budgeted`].
#[must_use]
pub fn search_report(full_baseline: bool) -> SearchReport {
    search_report_budgeted(if full_baseline {
        BaselineBudget::Full
    } else {
        BaselineBudget::Default
    })
}

/// Upper median of a timing sample (5 timed trials → the 3rd-fastest;
/// a single heavyweight sample → itself).
fn median_wall(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Benchmarks the suite: the engine (in each case's search mode) vs.
/// the budgeted backtracking baseline, cross-checking verdicts where
/// the baseline finishes.
///
/// The engine side goes through `gsb_engine::Query` — what a production
/// caller pays end-to-end, including the quotient build — with the
/// engine cache and evidence checking switched **off** inside the timed
/// trials so each trial times one real solve; one untimed query with
/// full evidence checking then replays every SAT witness facet by facet.
///
/// Timing discipline: one warmup pair (ungoverned + governed,
/// discarded — it absorbs first-touch allocator and page-cache
/// effects), then five timed interleaved pairs reported as **medians**.
/// The old min-of-5 made `governed_overhead_pct` a race between two
/// minima of a noisy distribution and flapped sign run to run; the
/// median pair is what the drift gate in the search bin compares.
/// Heavyweight frontier rows (warmup pair over 20 s, i.e. minutes of
/// search) keep the warmup pair as their single sample.
///
/// # Panics
///
/// Panics if the engines disagree on an uncensored row, or if any
/// evidence fails its re-check (either would be a soundness bug).
#[must_use]
pub fn search_report_budgeted(budget_mode: BaselineBudget) -> SearchReport {
    use gsb_engine::{EngineOpts, Query};
    use gsb_topology::SymmetricSearch;
    let suite = match budget_mode {
        BaselineBudget::Full => search_suite_full(),
        BaselineBudget::Default | BaselineBudget::Capped(_) => search_suite(),
    };
    let mut rows = Vec::new();
    for case in suite {
        let mut timing_opts = EngineOpts {
            use_cache: false,
            check_evidence: false,
            mode: case.mode,
            ..EngineOpts::default()
        };
        timing_opts.cdcl.orbit_decisions = case.orbit_decisions;
        if let Some(parent_rounds) = case.warm_from {
            // One untimed parent solve; its decision map lifts through
            // the subdivision into the phase seed every timed trial
            // starts from (the lift of a SAT map is SAT, so the seeded
            // dive should be conflict-free — the row records whether
            // that holds in `conflicts`).
            let parent = Query::solvable_in_rounds(case.spec.clone(), parent_rounds)
                .run()
                .expect("the warm-start parent row answers");
            let map = parent
                .evidence
                .decision_map()
                .expect("warm-start parent rows are SAT")
                .clone();
            let seed = SymmetricSearch::from_spec_streaming(case.spec.clone(), case.rounds)
                .lift_warm_start(&map);
            timing_opts.cdcl.warm_start = Some(std::sync::Arc::new(seed));
        }
        // The governed twin: same query, generous deadline (watchdog
        // armed) plus never-tripping budgets — every poll site pays its
        // check and the wall gap to `cdcl_wall` is the governance cost.
        // Trials interleave ungoverned/governed back-to-back so both
        // medians sample the same noise environment — on a shared box
        // minutes can separate the loops otherwise.
        let governed_opts = EngineOpts {
            deadline: Some(Duration::from_secs(3600)),
            decision_budget: Some(u64::MAX / 4),
            conflict_budget: Some(u64::MAX / 4),
            node_budget: Some(u64::MAX / 4),
            memory_budget: Some(u64::MAX / 4),
            ..timing_opts.clone()
        };
        let mut cdcl_samples = Vec::new();
        let mut governed_samples = Vec::new();
        let mut outcome = None;
        for trial in 0..6 {
            let query = Query::solvable_in_rounds(case.spec.clone(), case.rounds)
                .with_opts(timing_opts.clone());
            let start = Instant::now();
            let verdict = query.run().expect("the engine answers the bench suite");
            let cdcl_t = start.elapsed();
            outcome = Some(verdict);
            let query = Query::solvable_in_rounds(case.spec.clone(), case.rounds)
                .with_opts(governed_opts.clone());
            let start = Instant::now();
            let governed = query.run().expect("the governed engine answers the suite");
            let governed_t = start.elapsed();
            assert!(
                !governed.is_indeterminate(),
                "generous limits must never trip on {}",
                case.label
            );
            if trial == 0 {
                // Warmup pair: discarded from the medians, except on
                // heavyweight rows (minutes of search, where noise is
                // negligible relative to the wall) where it becomes the
                // single sample.
                if cdcl_t + governed_t > Duration::from_secs(20) {
                    cdcl_samples.push(cdcl_t);
                    governed_samples.push(governed_t);
                    break;
                }
                continue;
            }
            cdcl_samples.push(cdcl_t);
            governed_samples.push(governed_t);
        }
        let cdcl_wall = median_wall(&mut cdcl_samples);
        let governed_wall = median_wall(&mut governed_samples);
        let verdict = outcome.expect("the timed trials ran");
        // Untimed verification pass on the held verdict: SAT witnesses
        // replay facet-by-facet, with no extra solve.
        verdict.check().expect("evidence re-verifies");
        let stats = verdict.stats.search.expect("a search ran");
        let solvable = verdict.evidence.decision_map().is_some();
        let search = SymmetricSearch::from_spec_streaming(case.spec, case.rounds);
        let (baseline_wall, baseline_censored) = if case.baseline {
            let budget = match budget_mode {
                BaselineBudget::Default => case.default_budget,
                BaselineBudget::Full => case.full_budget,
                BaselineBudget::Capped(cap) => cap,
            };
            let start = Instant::now();
            let baseline = search.solve_reference_budgeted(budget);
            let baseline_wall = start.elapsed();
            if let Some(baseline) = &baseline {
                assert_eq!(
                    baseline.is_solvable(),
                    solvable,
                    "engines disagree on {}",
                    case.label
                );
            }
            (baseline_wall, baseline.is_none())
        } else {
            // Mode-variant row of an instance the suite already
            // baselines: a duplicate baseline run would only add
            // minutes. Zero wall marks the skip (`speedup` is null).
            (Duration::ZERO, true)
        };
        rows.push(SearchBenchRow {
            instance: case.label,
            mode: case.mode.label().to_string(),
            orbit_decisions: case.orbit_decisions,
            warm_seeded: stats.warm_seeded > 0,
            classes: search.classes().len(),
            facets: search.facet_count(),
            solvable,
            cdcl_wall,
            governed_wall,
            cdcl_stats: stats,
            baseline_wall,
            baseline_censored,
        });
    }
    SearchReport {
        rows,
        threads: rayon::current_num_threads(),
    }
}

/// Writes `BENCH_search.json` (see [`SearchReport::to_json`]) to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_search_json(report: &SearchReport, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}

/// One row of the construction performance record
/// (`BENCH_construct.json`): the streaming template-stamping subdivision
/// builder on `χ^r(Δ^{n−1})`, against the retained reference builder
/// where that is affordable.
#[derive(Debug, Clone)]
pub struct ConstructRow {
    /// `(n, rounds)` of the subdivision.
    pub n: usize,
    /// Protocol rounds.
    pub rounds: usize,
    /// Construction counters of the streaming build (facet/vertex/class
    /// counts, peak frontier rows).
    pub stats: gsb_topology::BuildStats,
    /// Streaming build wall time — **includes** the incremental
    /// signature-class tracking, so the finished complex carries its
    /// quotient (best of 3).
    pub streaming_wall: Duration,
    /// Reference (seed) builder wall time, construction only.
    pub reference_wall: Option<Duration>,
    /// Reference builder + quotient computation — the like-for-like
    /// end-to-end cost of what the streaming build delivers.
    pub reference_total_wall: Option<Duration>,
    /// Orbit-quotient counters of the fused instance prep (exact
    /// facet/class counts via orbit–stabilizer, representative rows,
    /// stamped rows).
    pub orbit: gsb_topology::OrbitBuildStats,
    /// Fused orbit-quotient instance prep wall time (streams orbit
    /// representatives straight into the solver's constraint system —
    /// no complex is materialized; best of 3).
    pub fused_wall: Duration,
    /// Full-pipeline instance prep on top of the streamed complex
    /// (`ConstraintSystem::from_complex`) — what the fused path
    /// replaces end to end.
    pub full_prep_wall: Duration,
}

impl ConstructRow {
    /// Streaming speedup over the reference builder's raw construction.
    #[must_use]
    pub fn build_speedup(&self) -> Option<f64> {
        self.reference_wall
            .map(|r| r.as_secs_f64() / self.streaming_wall.as_secs_f64().max(f64::EPSILON))
    }

    /// Streaming speedup over reference construction **plus** quotient —
    /// both sides then produce a complex with its signature classes.
    #[must_use]
    pub fn total_speedup(&self) -> Option<f64> {
        self.reference_total_wall
            .map(|r| r.as_secs_f64() / self.streaming_wall.as_secs_f64().max(f64::EPSILON))
    }

    /// Fused-prep speedup over the full construction→instance path
    /// (streaming build + complex-side constraint prep) — both sides
    /// then hand the solver the byte-identical instance.
    #[must_use]
    pub fn fused_speedup(&self) -> f64 {
        (self.streaming_wall + self.full_prep_wall).as_secs_f64()
            / self.fused_wall.as_secs_f64().max(f64::EPSILON)
    }

    /// Fraction of the full pipeline's stamped rows the orbit pipeline
    /// stamps (the `≤ 1/20` acceptance lever for `χ³(Δ³)`).
    #[must_use]
    pub fn stamp_fraction(&self) -> f64 {
        self.orbit.stamped_rows as f64 / (self.stats.facets as f64).max(1.0)
    }
}

/// The machine-readable record emitted as `BENCH_construct.json`.
#[derive(Debug, Clone)]
pub struct ConstructReport {
    /// Per-`(n, r)` construction measurements.
    pub rows: Vec<ConstructRow>,
    /// Worker threads available to the chunked fan-out.
    pub threads: usize,
}

impl ConstructReport {
    /// Serializes the report as JSON (hand-rolled; the offline build has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"threads\": ");
        out.push_str(&self.threads.to_string());
        out.push_str(",\n  \"complexes\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let wall = |d: Option<Duration>| {
                d.map_or("null".to_string(), |d| {
                    format!("{:.3}", d.as_secs_f64() * 1e3)
                })
            };
            let ratio =
                |s: Option<f64>| s.map_or("null".to_string(), |value| format!("{value:.1}"));
            out.push_str(&format!(
                "    {{\n      \"n\": {},\n      \"rounds\": {},\n      \
                 \"facets\": {},\n      \"vertices\": {},\n      \"classes\": {},\n      \
                 \"peak_frontier_rows\": {},\n      \"chunks\": {},\n      \
                 \"orbit_rows\": {},\n      \"stamped_rows\": {},\n      \
                 \"streaming_wall_ms\": {:.3},\n      \"reference_wall_ms\": {},\n      \
                 \"reference_total_wall_ms\": {},\n      \"fused_prep_wall_ms\": {:.3},\n      \
                 \"full_prep_wall_ms\": {:.3},\n      \"stamp_fraction\": {:.5},\n      \
                 \"build_speedup\": {},\n      \
                 \"total_speedup\": {},\n      \"fused_speedup\": {:.1}\n    }}{}\n",
                row.n,
                row.rounds,
                row.stats.facets,
                row.stats.vertices,
                row.stats.classes,
                row.stats.peak_frontier_rows,
                row.stats.chunks,
                row.orbit.orbit_rows,
                row.orbit.stamped_rows,
                row.streaming_wall.as_secs_f64() * 1e3,
                wall(row.reference_wall),
                wall(row.reference_total_wall),
                row.fused_wall.as_secs_f64() * 1e3,
                row.full_prep_wall.as_secs_f64() * 1e3,
                row.stamp_fraction(),
                ratio(row.build_speedup()),
                ratio(row.total_speedup()),
                row.fused_speedup(),
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Pinned `(n, r, facets, vertices, classes)` of the construction
/// frontier — the drift gate the construction bench enforces in CI
/// (`--quick`) and in full runs. Mirrored by
/// `crates/topology/tests/streaming_equivalence.rs`.
pub const CONSTRUCT_PINNED: &[(usize, usize, usize, usize, usize)] = &[
    (3, 3, 2_197, 1_140, 1_086),
    (4, 2, 5_625, 1_124, 865),
    (4, 3, 421_875, 72_560, 69_250),
    (5, 1, 541, 80, 15),
    (5, 2, 292_681, 14_805, 10_945),
];

/// Pinned orbit-quotient shape `(n, r, orbit_rows, stamped_rows)` — the
/// representative frontier the fused pipeline holds instead of the full
/// facet set, and the rows it stamps across all rounds (`χ³(Δ³)`:
/// 18,429 of 421,875 — under 1/20 of the full pipeline's stampings,
/// exact thanks to stabilizer-orbit template skipping). Drift-gated by
/// the construction bench in both modes.
pub const ORBIT_PINNED: &[(usize, usize, usize, usize)] = &[
    (3, 3, 380, 417),
    (4, 2, 281, 289),
    (4, 3, 18_140, 18_429),
    (5, 1, 16, 16),
    (5, 2, 2_961, 2_977),
];

/// The construction-bench suite: `(n, rounds, run reference builder)`.
/// `quick` drops `χ³(Δ³)` (the ~1 s flagship row, still covered by the
/// full run that produces the committed record) and skips the slower
/// reference builds.
#[must_use]
pub fn construct_suite(quick: bool) -> Vec<(usize, usize, bool)> {
    if quick {
        vec![(3, 3, true), (4, 2, true), (5, 1, true), (5, 2, false)]
    } else {
        vec![
            (3, 3, true),
            (4, 2, true),
            (4, 3, false),
            (5, 1, true),
            (5, 2, true),
        ]
    }
}

/// Benchmarks the streaming subdivision pipeline: best-of-3 streaming
/// builds (each delivering the complex *with* its signature quotient)
/// vs. the retained reference builder (timed both bare and with its
/// quotient computation), with every row's facet/vertex/class counts
/// checked against [`CONSTRUCT_PINNED`].
///
/// # Panics
///
/// Panics if any measured row drifts from the pinned counts (that would
/// mean the subdivision pipeline changed the complexes it builds).
#[must_use]
pub fn construct_report(quick: bool) -> ConstructReport {
    use gsb_topology::{protocol_complex_reference, protocol_complex_with_stats, ConstraintSystem};
    let mut rows = Vec::new();
    for (n, rounds, run_reference) in construct_suite(quick) {
        let mut streaming_wall = Duration::MAX;
        let mut full_prep_wall = Duration::MAX;
        let mut stats = None;
        for _ in 0..3 {
            let start = Instant::now();
            let (complex, build_stats) = protocol_complex_with_stats(n, rounds);
            streaming_wall = streaming_wall.min(start.elapsed());
            // The quotient must be a lookup on the streamed complex; fold
            // it into the timed region to keep the row honest end-to-end.
            assert_eq!(
                complex.signature_quotient().classes.len(),
                build_stats.classes
            );
            // The complex-side instance prep the fused path replaces.
            let start = Instant::now();
            let system = ConstraintSystem::from_complex(&complex);
            full_prep_wall = full_prep_wall.min(start.elapsed());
            std::hint::black_box(system);
            stats = Some(build_stats);
        }
        let stats = stats.expect("three timed trials ran");
        // The fused orbit-quotient instance prep, timed end to end
        // (orbit streaming + constraint expansion + canonical class
        // ordering — everything the solver needs short of the spec).
        let mut fused_wall = Duration::MAX;
        let mut orbit = None;
        let mut fused_system = None;
        for _ in 0..3 {
            let start = Instant::now();
            let (system, orbit_stats) = ConstraintSystem::streamed(n, rounds);
            fused_wall = fused_wall.min(start.elapsed());
            orbit = Some(orbit_stats);
            fused_system = Some(system);
        }
        let orbit = orbit.expect("three timed trials ran");
        let fused_system = fused_system.expect("three timed trials ran");
        // Orbit-stabilizer accounting must reproduce the full counts.
        assert_eq!(
            (orbit.facets, orbit.vertices, orbit.classes),
            (stats.facets, stats.vertices, stats.classes),
            "orbit-quotient counters drifted from the full build at χ^{rounds}(Δ^{})",
            n - 1
        );
        assert_eq!(fused_system.class_count(), stats.classes);
        if let Some(&(_, _, facets, vertices, classes)) = CONSTRUCT_PINNED
            .iter()
            .find(|&&(pn, pr, ..)| (pn, pr) == (n, rounds))
        {
            assert_eq!(
                (stats.facets, stats.vertices, stats.classes),
                (facets, vertices, classes),
                "construction drift at χ^{rounds}(Δ^{})",
                n - 1
            );
        }
        if let Some(&(_, _, orbit_rows, stamped_rows)) = ORBIT_PINNED
            .iter()
            .find(|&&(pn, pr, ..)| (pn, pr) == (n, rounds))
        {
            assert_eq!(
                (orbit.orbit_rows, orbit.stamped_rows),
                (orbit_rows, stamped_rows),
                "orbit-quotient drift at χ^{rounds}(Δ^{})",
                n - 1
            );
        }
        let (reference_wall, reference_total_wall) = if run_reference {
            let start = Instant::now();
            let reference = protocol_complex_reference(n, rounds);
            let build = start.elapsed();
            let reference_quotient = reference.signature_quotient();
            let total = start.elapsed();
            assert_eq!(reference.facet_count(), stats.facets, "builders disagree");
            assert_eq!(
                reference_quotient.classes.len(),
                stats.classes,
                "builders disagree on classes"
            );
            (Some(build), Some(total))
        } else {
            (None, None)
        };
        let row = ConstructRow {
            n,
            rounds,
            stats,
            streaming_wall,
            reference_wall,
            reference_total_wall,
            orbit,
            fused_wall,
            full_prep_wall,
        };
        if (n, rounds) == (4, 3) {
            // The χ³(Δ³) acceptance lever: the orbit pipeline must stamp
            // at most 1/20 of the 421,875 full-complex rows.
            assert!(
                row.stamp_fraction() <= 1.0 / 20.0,
                "orbit pipeline stamped {} of {} rows (> 1/20)",
                row.orbit.stamped_rows,
                row.stats.facets
            );
        }
        rows.push(row);
    }
    if quick {
        // The flagship χ³(Δ³) row is too heavy for the quick suite on
        // the streaming/reference side, but the orbit pipeline alone is
        // ~0.1 s — so quick (CI) mode still drift-gates the flagship
        // orbit shape and the ≤ 1/20 stamp-fraction acceptance.
        let (system, orbit) = gsb_topology::ConstraintSystem::streamed(4, 3);
        let &(_, _, facets, vertices, classes) = CONSTRUCT_PINNED
            .iter()
            .find(|&&(pn, pr, ..)| (pn, pr) == (4, 3))
            .expect("χ³(Δ³) is pinned");
        assert_eq!(
            (orbit.facets, orbit.vertices, orbit.classes),
            (facets, vertices, classes),
            "χ³(Δ³) orbit-quotient counter drift"
        );
        assert_eq!(system.class_count(), classes);
        let &(_, _, orbit_rows, stamped_rows) = ORBIT_PINNED
            .iter()
            .find(|&&(pn, pr, ..)| (pn, pr) == (4, 3))
            .expect("χ³(Δ³) orbit shape is pinned");
        assert_eq!(
            (orbit.orbit_rows, orbit.stamped_rows),
            (orbit_rows, stamped_rows),
            "χ³(Δ³) orbit shape drift"
        );
        assert!(
            orbit.stamped_rows as f64 <= orbit.facets as f64 / 20.0,
            "χ³(Δ³) stamped {} of {} rows (> 1/20)",
            orbit.stamped_rows,
            orbit.facets
        );
    }
    ConstructReport {
        rows,
        threads: rayon::current_num_threads(),
    }
}

/// Writes `BENCH_construct.json` (see [`ConstructReport::to_json`]) to
/// `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_construct_json(
    report: &ConstructReport,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_covers_all_verdicts() {
        let rows = atlas(6);
        assert!(!rows.is_empty());
        let has = |v: Solvability| rows.iter().any(|r| r.verdict == v);
        assert!(has(Solvability::SolvableWithoutCommunication));
        assert!(has(Solvability::NotWaitFreeSolvable));
        assert!(has(Solvability::WaitFreeSolvable));
        assert!(has(Solvability::Open));
    }

    #[test]
    fn engine_and_naive_baseline_agree_row_for_row() {
        assert_eq!(atlas_engine(7), atlas_naive(7));
    }

    #[test]
    fn rows_are_internally_consistent() {
        for row in atlas_engine(7) {
            assert!(row.task.is_synonym_of(&row.canonical), "{}", row.task);
            assert_eq!(
                row.legal_outputs,
                row.task.to_spec().legal_output_count(),
                "{}",
                row.task
            );
            assert_eq!(
                row.kernel_vectors,
                row.task.kernel_set().len(),
                "{}",
                row.task
            );
            assert_eq!(
                row.anchoring,
                row.task.anchoring().expect("feasible"),
                "{}",
                row.task
            );
        }
    }

    #[test]
    fn enumeration_comparison_reduces_nodes() {
        let cmp = compare_enumeration_engines(3);
        assert_eq!(cmp.runs, 1680);
        assert!(cmp.memoized_nodes < cmp.naive_nodes);
    }

    #[test]
    fn search_report_rows_and_json_shape() {
        // Tiny baseline cap: the censored rows exercise the lower-bound
        // path without the multi-second budgets of the default mode.
        let report = search_report_budgeted(BaselineBudget::Capped(20_000));
        assert_eq!(report.rows.len(), search_suite().len());
        let wsb = report
            .rows
            .iter()
            .find(|r| r.instance.starts_with("wsb"))
            .expect("wsb row present");
        assert!(!wsb.solvable, "WSB n=3 r=2 is the UNSAT frontier row");
        assert!(wsb.cdcl_stats.conflicts > 0);
        let renaming = report
            .rows
            .iter()
            .find(|r| r.instance.starts_with("loose_renaming"))
            .expect("renaming row present");
        assert!(renaming.solvable, "(2n−1)-renaming n=4 solves at r=2");
        // The completion-race smoke row: same instance, same verdict,
        // no duplicate baseline (speedup null).
        let race = report
            .rows
            .iter()
            .find(|r| r.instance.ends_with("[race]"))
            .expect("race smoke row present");
        assert_eq!(race.mode, "race");
        assert!(race.solvable, "the race reaches the plain row's verdict");
        assert!(race.baseline_wall.is_zero() && race.speedup().is_none());
        let json = report.to_json();
        for key in [
            "\"threads\"",
            "\"instance\"",
            "\"mode\"",
            "\"orbit_decisions\"",
            "\"warm_seeded\"",
            "\"cdcl_wall_ms\"",
            "\"baseline_wall_ms\"",
            "\"baseline_censored\"",
            "\"speedup\"",
            "\"conflicts\"",
            "\"symmetric_images\"",
            "\"local_steps\"",
            "\"local_won\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn construct_report_rows_and_json_shape() {
        // The quick suite (sub-100 ms rows) exercises the drift gate and
        // both speedup columns.
        let report = construct_report(true);
        assert_eq!(report.rows.len(), construct_suite(true).len());
        let acceptance = report
            .rows
            .iter()
            .find(|r| (r.n, r.rounds) == (4, 2))
            .expect("the χ²(Δ³) acceptance row is in every suite");
        assert!(acceptance.build_speedup().is_some());
        assert!(acceptance.total_speedup().unwrap() >= acceptance.build_speedup().unwrap());
        let n5 = report
            .rows
            .iter()
            .find(|r| (r.n, r.rounds) == (5, 2))
            .expect("the n = 5 reach is in the quick suite");
        assert!(n5.reference_wall.is_none(), "quick mode skips slow refs");
        let json = report.to_json();
        for key in [
            "\"threads\"",
            "\"facets\"",
            "\"peak_frontier_rows\"",
            "\"streaming_wall_ms\"",
            "\"reference_wall_ms\"",
            "\"build_speedup\"",
            "\"total_speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(
            json.contains("null"),
            "skipped references serialize as null"
        );
    }

    #[test]
    fn report_json_shape() {
        let report = atlas_report(5);
        let json = report.to_json();
        for key in [
            "\"max_n\"",
            "\"rows\"",
            "\"speedup\"",
            "\"naive_nodes\"",
            "\"memoized_nodes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
