//! Regenerates the paper's **Figure 1**: the partial order of canonical
//! `⟨n, m, −, −⟩`-GSB tasks under strict output-set inclusion, with
//! anchoring annotations, plus a Graphviz DOT rendering.
//!
//! ```text
//! cargo run -p gsb-bench --bin figure1 [-- n m]
//! ```

use gsb_core::TaskOrder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (n, m) = match args.len() {
        3 => (
            args[1].parse().expect("n must be a number"),
            args[2].parse().expect("m must be a number"),
        ),
        _ => (6, 3),
    };
    let order = TaskOrder::new(n, m).expect("valid parameters");
    println!("Figure 1 reproduction — canonical ⟨{n}, {m}, −, −⟩-GSB tasks\n");
    print!("{}", order.to_text());
    let pairs = order.incomparable_pairs();
    println!("\nIncomparable pairs: {}", pairs.len());
    for (i, j) in pairs {
        println!(
            "  {} ∥ {}",
            order.classes()[i].representative,
            order.classes()[j].representative
        );
    }
    println!("\n{}", order.to_ascii());
    println!("\nGraphviz DOT:\n{}", order.to_dot());
}
