//! The **serve-loop bench**: round-trip throughput and tail latency of
//! `gsb serve` over real TCP, warm-store lookups vs. solver misses,
//! recorded in `BENCH_serve.json` (see `DESIGN.md` §11).
//!
//! ```text
//! cargo run --release -p gsb-bench --bin serve [-- --quick | --full]
//! ```
//!
//! * default / `--full` — 2000 warm-store requests plus every distinct
//!   solver-miss key; use this when refreshing the committed record.
//! * `--quick` — CI smoke: 200 warm requests, round-1 misses only.
//!
//! The warm phase replays zoo classification queries against a store
//! prebuilt with `build_atlas(6)` and asserts every one is answered by
//! the store (the solver never runs); the miss phase sends distinct
//! round-bounded search keys the store cannot hold and asserts every
//! one reaches the engine. Latencies are measured client-side around
//! each blocking round trip, so they include framing and the kernel's
//! loopback, exactly what a real client pays.

use std::sync::Arc;
use std::time::Instant;

use gsb_engine::{EngineCache, Json, Query, Question};
use gsb_serve::{AdmissionPolicy, Client, ServedBy, Server, ServerConfig, VerdictStore};

/// One measured phase: request count, throughput, and tail latencies.
struct Phase {
    label: &'static str,
    requests: usize,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn run_phase(
    label: &'static str,
    client: &mut Client,
    queries: &[Query],
    requests: usize,
    expect: ServedBy,
) -> Phase {
    let mut lat_us = Vec::with_capacity(requests);
    let start = Instant::now();
    for query in queries.iter().cycle().take(requests) {
        let t = Instant::now();
        let served = client.query(query).expect("bench query");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            served.served_by, expect,
            "{label}: {query:?} served by the wrong path"
        );
        assert!(served.verdict.solvability.is_some());
    }
    let wall = start.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Phase {
        label,
        requests,
        qps: requests as f64 / wall,
        p50_us: quantile_us(&lat_us, 0.50),
        p95_us: quantile_us(&lat_us, 0.95),
        p99_us: quantile_us(&lat_us, 0.99),
    }
}

/// Zoo classification queries for `2 ..= max_n` — all precomputed by
/// `build_atlas(max_n)`, so each is a pure store lookup at serve time.
fn warm_queries(max_n: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for n in 2..=max_n {
        for entry in gsb_core::zoo::catalog(n).expect("catalog") {
            queries.push(Query::new(entry.spec, Question::Classify));
        }
    }
    queries
}

/// Distinct round-bounded search keys: the store holds only classify
/// and witness verdicts, so every one of these is a solver miss.
fn miss_queries(quick: bool) -> Vec<Query> {
    let mut queries = Vec::new();
    for n in [3, 4] {
        for entry in gsb_core::zoo::catalog(n).expect("catalog") {
            queries.push(Query::new(
                entry.spec,
                Question::SolvableInRounds { rounds: 1 },
            ));
        }
    }
    if !quick {
        for entry in gsb_core::zoo::catalog(3).expect("catalog") {
            queries.push(Query::new(
                entry.spec,
                Question::SolvableInRounds { rounds: 2 },
            ));
        }
    }
    queries
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let warm_requests = if quick { 200 } else { 2000 };

    println!("gsb serve bench: warm-store lookups vs. solver misses\n");
    let store = VerdictStore::in_memory();
    let build = Instant::now();
    // A throwaway precompute cache: the server's own cache starts cold,
    // which is how the warm phase proves the solver never ran.
    store
        .build_atlas(6, &EngineCache::new())
        .expect("atlas precompute");
    println!(
        "store: {} verdicts precomputed (atlas through n = 6, {:.0} ms)",
        store.stats().entries,
        build.elapsed().as_secs_f64() * 1e3
    );

    let config = ServerConfig {
        policy: AdmissionPolicy::default(),
        // Misses must reach the solver every time, even when the same
        // key is replayed across bench runs against a disk store.
        append_to_store: false,
        ..ServerConfig::default()
    };
    let handle = Server::start(config, Arc::new(store), Arc::new(EngineCache::new()))
        .expect("bind ephemeral");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let warm = warm_queries(6);
    assert!(!warm.is_empty());
    let misses = miss_queries(quick);
    let phases = [
        run_phase(
            "warm-store",
            &mut client,
            &warm,
            warm_requests,
            ServedBy::Store,
        ),
        run_phase(
            "solver-miss",
            &mut client,
            &misses,
            misses.len(),
            ServedBy::Engine,
        ),
    ];

    // The warm phase must never have touched the engine: the only
    // engine traffic on the books is the miss phase, exactly once per
    // distinct key.
    let metrics = client.metrics().expect("metrics");
    let served_engine = metrics
        .get("server")
        .and_then(|s| s.get("served_engine"))
        .and_then(Json::as_f64)
        .expect("served_engine");
    assert_eq!(served_engine as usize, misses.len());

    println!(
        "\n{:<14} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "phase", "requests", "qps", "p50", "p95", "p99"
    );
    for phase in &phases {
        println!(
            "{:<14} {:>9} {:>12.0} {:>8.0}µs {:>8.0}µs {:>8.0}µs",
            phase.label, phase.requests, phase.qps, phase.p50_us, phase.p95_us, phase.p99_us
        );
    }

    client.shutdown().expect("shutdown");
    handle.join();

    let mut root = Vec::new();
    root.push(("kind".to_string(), Json::Str("gsb-serve-bench".into())));
    root.push((
        "mode".to_string(),
        Json::Str(if quick { "quick" } else { "full" }.into()),
    ));
    root.push((
        "phases".to_string(),
        Json::Arr(
            phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("phase".to_string(), Json::Str(p.label.into())),
                        ("requests".to_string(), Json::Num(p.requests as f64)),
                        ("qps".to_string(), Json::Num(p.qps.round())),
                        ("p50_us".to_string(), Json::Num(p.p50_us.round())),
                        ("p95_us".to_string(), Json::Num(p.p95_us.round())),
                        ("p99_us".to_string(), Json::Num(p.p99_us.round())),
                    ])
                })
                .collect(),
        ),
    ));
    let path = std::path::Path::new("BENCH_serve.json");
    match std::fs::write(path, Json::Obj(root).render()) {
        Ok(()) => println!("\nRecord written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
