//! The **serve-loop bench**: round-trip throughput and tail latency of
//! `gsb serve` over real TCP, warm-store lookups vs. solver misses,
//! recorded in `BENCH_serve.json` (see `DESIGN.md` §11).
//!
//! ```text
//! cargo run --release -p gsb-bench --bin serve -- \
//!     [--quick | --full] [--gate-p99 MULT] [--soak-ms MS]
//! ```
//!
//! * default / `--full` — 2000 warm-store requests plus every distinct
//!   solver-miss key; use this when refreshing the committed record.
//! * `--quick` — CI smoke: 200 warm requests, round-1 misses only.
//! * `--gate-p99 MULT` — drift gate: fail (exit 1) if the measured
//!   warm-store p99 exceeds `MULT ×` the committed `BENCH_serve.json`
//!   record. Read before the record is overwritten.
//! * `--soak-ms MS` — soak mode instead of the bench: a disk-backed
//!   store, a fleet of self-healing clients under seeded connection
//!   drops, one mid-serve compaction, and one hot reload, with exact
//!   accounting asserted (see DESIGN.md §13). Writes no record.
//!
//! The warm phase replays zoo classification queries against a store
//! prebuilt with `build_atlas(6)` and asserts every one is answered by
//! the store (the solver never runs); the miss phase sends distinct
//! round-bounded search keys the store cannot hold and asserts every
//! one reaches the engine. Latencies are measured client-side around
//! each blocking round trip, so they include framing and the kernel's
//! loopback, exactly what a real client pays.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gsb_core::govern::fault::{self, IoFaultAction};
use gsb_engine::{EngineCache, Json, Query, Question};
use gsb_serve::{
    AdmissionPolicy, Client, RetryPolicy, SelfHealingClient, ServedBy, Server, ServerConfig,
    VerdictStore,
};

/// One measured phase: request count, throughput, and tail latencies.
struct Phase {
    label: &'static str,
    requests: usize,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn run_phase(
    label: &'static str,
    client: &mut Client,
    queries: &[Query],
    requests: usize,
    expect: ServedBy,
) -> Phase {
    let mut lat_us = Vec::with_capacity(requests);
    let start = Instant::now();
    for query in queries.iter().cycle().take(requests) {
        let t = Instant::now();
        let served = client.query(query).expect("bench query");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            served.served_by, expect,
            "{label}: {query:?} served by the wrong path"
        );
        assert!(served.verdict.solvability.is_some());
    }
    let wall = start.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Phase {
        label,
        requests,
        qps: requests as f64 / wall,
        p50_us: quantile_us(&lat_us, 0.50),
        p95_us: quantile_us(&lat_us, 0.95),
        p99_us: quantile_us(&lat_us, 0.99),
    }
}

/// Zoo classification queries for `2 ..= max_n` — all precomputed by
/// `build_atlas(max_n)`, so each is a pure store lookup at serve time.
fn warm_queries(max_n: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for n in 2..=max_n {
        for entry in gsb_core::zoo::catalog(n).expect("catalog") {
            queries.push(Query::new(entry.spec, Question::Classify));
        }
    }
    queries
}

/// Distinct round-bounded search keys: the store holds only classify
/// and witness verdicts, so every one of these is a solver miss.
fn miss_queries(quick: bool) -> Vec<Query> {
    let mut queries = Vec::new();
    for n in [3, 4] {
        for entry in gsb_core::zoo::catalog(n).expect("catalog") {
            queries.push(Query::new(
                entry.spec,
                Question::SolvableInRounds { rounds: 1 },
            ));
        }
    }
    if !quick {
        for entry in gsb_core::zoo::catalog(3).expect("catalog") {
            queries.push(Query::new(
                entry.spec,
                Question::SolvableInRounds { rounds: 2 },
            ));
        }
    }
    queries
}

/// Soak mode: a disk-backed store served to a self-healing client
/// fleet while seeded connection drops fire, then one mid-serve
/// compaction and one hot reload — every request must resolve Ok and
/// the metrics line must account for every verdict served.
fn soak(ms: u64) {
    const SEED: u64 = 0x50a4_0010;
    const DROPS: u64 = 2;
    const FLEET: u64 = 4;

    let dir = std::env::temp_dir().join(format!("gsb-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("soak temp dir");
    let path = dir.join("verdicts.jsonl");
    let store = VerdictStore::open(&path).expect("open soak store");
    store
        .build_atlas(5, &EngineCache::new())
        .expect("atlas precompute");
    let entries = store.stats().entries;
    println!("soak: {entries} verdicts on disk, {FLEET} clients, {ms} ms, seed {SEED:#x}");

    let config = ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    };
    let handle =
        Server::start(config, Arc::new(store), Arc::new(EngineCache::new())).expect("bind");
    let addr = handle.addr().to_string();
    let warm = warm_queries(5);

    let guard = fault::arm_io(SEED, IoFaultAction::DropConnection, DROPS);
    let (ok, retries) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..FLEET)
            .map(|t| {
                let addr = addr.clone();
                let warm = warm.clone();
                s.spawn(move || {
                    let policy = RetryPolicy {
                        seed: SEED + t,
                        ..RetryPolicy::default()
                    };
                    let mut client = SelfHealingClient::new(addr, policy);
                    let deadline = Instant::now() + Duration::from_millis(ms);
                    let mut ok = 0u64;
                    for query in warm.iter().cycle() {
                        if Instant::now() >= deadline {
                            break;
                        }
                        let served = client
                            .query(query)
                            .expect("soak queries must heal, not fail");
                        assert_eq!(served.served_by, ServedBy::Store);
                        ok += 1;
                    }
                    (ok, client.retries())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client panicked"))
            .fold((0u64, 0u64), |(a, b), (ok, r)| (a + ok, b + r))
    });
    let fired = fault::io_fired();
    drop(guard);
    assert!(fired <= DROPS, "at most the armed number of drops fire");

    // One compaction in the middle of a live server, one hot reload.
    let report = handle.store().compact().expect("soak compaction");
    assert_eq!(report.entries, entries, "compaction preserves every entry");
    let mut admin = Client::connect(&addr).expect("connect admin");
    let (reloaded, generation) = admin.reload(None).expect("hot reload");
    assert_eq!(reloaded as usize, entries, "reload serves the full store");
    assert_eq!(generation, report.generation);

    // Exact accounting: every Ok above is a store-served verdict; a
    // drop that lands after answering but before the reply reaches the
    // client re-serves that one request, so the books close to within
    // the fired-drop count — and to zero errors, one reload, one
    // compaction, no engine traffic.
    let metrics = admin.metrics().expect("metrics");
    let get = |path: &[&str]| {
        let mut cursor = &metrics;
        for key in path {
            cursor = cursor
                .get(key)
                .unwrap_or_else(|| panic!("metrics field {path:?} missing"));
        }
        cursor.as_f64().expect("numeric metric") as u64
    };
    let served = get(&["server", "served_store"]);
    assert!(
        served >= ok && served <= ok + fired,
        "accounting: {served} served vs {ok} ok + {fired} drops"
    );
    assert_eq!(get(&["server", "served_engine"]), 0, "warm keys only");
    assert_eq!(get(&["server", "errors"]), 0);
    assert_eq!(get(&["server", "reloads"]), 1);
    assert_eq!(get(&["server", "compactions"]), 1);
    assert!(
        get(&["server", "retries_observed"]) <= retries,
        "the server cannot observe more retries than clients performed"
    );
    println!(
        "soak ok: {ok} requests, {served} served, {fired} drops fired, \
         {retries} client retries, generation {generation}"
    );

    admin.shutdown().expect("shutdown");
    handle.join();
    std::fs::remove_dir_all(&dir).expect("soak cleanup");
}

/// Reads the committed record's warm-store p99 (µs), if present.
fn committed_warm_p99(path: &std::path::Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let record = Json::parse(&text).ok()?;
    record.get("phases")?.as_arr()?.iter().find_map(|phase| {
        if phase.get("phase")?.as_str()? != "warm-store" {
            return None;
        }
        phase.get("p99_us")?.as_f64()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|at| args.get(at + 1))
            .map(|v| {
                v.parse::<f64>()
                    .unwrap_or_else(|_| panic!("{flag} wants a number"))
            })
    };
    if let Some(ms) = flag_value("--soak-ms") {
        soak(ms.max(1.0) as u64);
        return;
    }
    let gate_p99 = flag_value("--gate-p99");
    let warm_requests = if quick { 200 } else { 2000 };

    println!("gsb serve bench: warm-store lookups vs. solver misses\n");
    let store = VerdictStore::in_memory();
    let build = Instant::now();
    // A throwaway precompute cache: the server's own cache starts cold,
    // which is how the warm phase proves the solver never ran.
    store
        .build_atlas(6, &EngineCache::new())
        .expect("atlas precompute");
    println!(
        "store: {} verdicts precomputed (atlas through n = 6, {:.0} ms)",
        store.stats().entries,
        build.elapsed().as_secs_f64() * 1e3
    );

    let config = ServerConfig {
        policy: AdmissionPolicy::default(),
        // Misses must reach the solver every time, even when the same
        // key is replayed across bench runs against a disk store.
        append_to_store: false,
        ..ServerConfig::default()
    };
    let handle = Server::start(config, Arc::new(store), Arc::new(EngineCache::new()))
        .expect("bind ephemeral");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let warm = warm_queries(6);
    assert!(!warm.is_empty());
    let misses = miss_queries(quick);
    let phases = [
        run_phase(
            "warm-store",
            &mut client,
            &warm,
            warm_requests,
            ServedBy::Store,
        ),
        run_phase(
            "solver-miss",
            &mut client,
            &misses,
            misses.len(),
            ServedBy::Engine,
        ),
    ];

    // The warm phase must never have touched the engine: the only
    // engine traffic on the books is the miss phase, exactly once per
    // distinct key.
    let metrics = client.metrics().expect("metrics");
    let served_engine = metrics
        .get("server")
        .and_then(|s| s.get("served_engine"))
        .and_then(Json::as_f64)
        .expect("served_engine");
    assert_eq!(served_engine as usize, misses.len());

    println!(
        "\n{:<14} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "phase", "requests", "qps", "p50", "p95", "p99"
    );
    for phase in &phases {
        println!(
            "{:<14} {:>9} {:>12.0} {:>8.0}µs {:>8.0}µs {:>8.0}µs",
            phase.label, phase.requests, phase.qps, phase.p50_us, phase.p95_us, phase.p99_us
        );
    }

    client.shutdown().expect("shutdown");
    handle.join();

    let path = std::path::Path::new("BENCH_serve.json");
    if let Some(mult) = gate_p99 {
        // Drift gate against the committed record, read before this
        // run overwrites it. The multiplier absorbs CI-machine noise;
        // a genuine hot-path regression blows straight through it.
        match committed_warm_p99(path) {
            Some(committed) => {
                let measured = phases[0].p99_us;
                let ceiling = committed * mult;
                assert!(
                    measured <= ceiling,
                    "warm-store p99 drifted: {measured:.0}µs > {mult}× committed {committed:.0}µs"
                );
                println!("\np99 gate ok: {measured:.0}µs ≤ {mult}× committed {committed:.0}µs");
            }
            None => println!("\np99 gate skipped: no committed {} record", path.display()),
        }
    }

    let mut root = Vec::new();
    root.push(("kind".to_string(), Json::Str("gsb-serve-bench".into())));
    root.push((
        "mode".to_string(),
        Json::Str(if quick { "quick" } else { "full" }.into()),
    ));
    root.push((
        "phases".to_string(),
        Json::Arr(
            phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("phase".to_string(), Json::Str(p.label.into())),
                        ("requests".to_string(), Json::Num(p.requests as f64)),
                        ("qps".to_string(), Json::Num(p.qps.round())),
                        ("p50_us".to_string(), Json::Num(p.p50_us.round())),
                        ("p95_us".to_string(), Json::Num(p.p95_us.round())),
                        ("p99_us".to_string(), Json::Num(p.p99_us.round())),
                    ])
                })
                .collect(),
        ),
    ));
    match std::fs::write(path, Json::Obj(root).render()) {
        Ok(()) => println!("\nRecord written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
