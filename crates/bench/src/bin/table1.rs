//! Regenerates the paper's **Table 1** (kernels of `⟨n, m, ℓ, u⟩`-GSB
//! tasks) from first principles, for `n = 6, m = 3` by default or any
//! `n m` given on the command line.
//!
//! ```text
//! cargo run -p gsb-bench --bin table1 [-- n m]
//! ```

use gsb_core::KernelTable;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (n, m) = match args.len() {
        3 => (
            args[1].parse().expect("n must be a number"),
            args[2].parse().expect("m must be a number"),
        ),
        _ => (6, 3),
    };
    let table = KernelTable::new(n, m).expect("valid parameters");
    println!(
        "Table 1 reproduction — kernels of ⟨{n}, {m}, ℓ, u⟩-GSB tasks \
         (canonical representatives flagged)\n"
    );
    print!("{}", table.render());
    println!(
        "\n{} rows ({} canonical classes), {} kernel columns.",
        table.rows().len(),
        table.rows().iter().filter(|r| r.canonical).count(),
        table.columns().len()
    );
    if (n, m) == (6, 3) {
        println!(
            "Note: the paper's Table 1 lists 14 rows; ⟨6,3,2,6⟩ (a synonym of \
             ⟨6,3,2,2⟩) is feasible but omitted there — see EXPERIMENTS.md E1."
        );
    }
}
