//! Validates the paper's **Figure 2 algorithm** (Theorem 12):
//! `(n+1)`-renaming from an `(n−1)`-slot object, across schedule sweeps
//! and oracle adversaries, printing a per-`n` report.
//!
//! ```text
//! cargo run -p gsb-bench --bin figure2 [-- max_n]
//! ```

use gsb_algorithms::harness::{
    sweep_adversarial, sweep_exhaustive, sweep_random, AlgorithmUnderTest,
};
use gsb_algorithms::SlotRenamingProtocol;
use gsb_core::{Identity, SymmetricGsb};
use gsb_memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: usize = args.get(1).map_or(8, |s| s.parse().expect("max_n"));
    println!(
        "Figure 2 / Theorem 12 validation — (n+1)-renaming from an (n−1)-slot \
         object\n"
    );
    println!(
        "{:<4} {:<10} {:<12} {:<12} {:<12} {:<10}",
        "n", "random", "adversarial", "exhaustive", "max steps", "violations"
    );
    for n in 2..=max_n {
        let spec = SymmetricGsb::renaming(n, n + 1).unwrap().to_spec();
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)));
        let oracles = move || -> Vec<Box<dyn Oracle>> {
            let slot_spec = SymmetricGsb::slot(n, n - 1).unwrap().to_spec();
            vec![Box::new(
                GsbOracle::new(slot_spec, OraclePolicy::Seeded(97)).unwrap(),
            )]
        };
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &oracles,
        };
        let random = sweep_random(&algo, (2 * n - 1) as u32, 300, 1).expect("random sweep");
        let adversarial =
            sweep_adversarial(&algo, (2 * n - 1) as u32, 300, 2).expect("adversarial sweep");
        let exhaustive = if n <= 3 {
            let ids: Vec<Identity> = (1..=n as u32).map(|v| Identity::new(v).unwrap()).collect();
            let report = sweep_exhaustive(&algo, &ids, 100_000).expect("exhaustive sweep");
            format!("{} runs", report.runs)
        } else {
            "—".to_string()
        };
        let max_steps = random.max_steps.max(adversarial.max_steps);
        println!(
            "{:<4} {:<10} {:<12} {:<12} {:<12} {:<10}",
            n,
            format!("{} runs", random.runs),
            format!("{} runs", adversarial.runs),
            exhaustive,
            max_steps,
            0
        );
    }
    println!("\nEvery run satisfied ⟨n, n+1, 0, 1⟩-GSB (violations would abort).");
}
