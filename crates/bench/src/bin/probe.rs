//! Internal diagnostics: class/facet counts of solvability-search
//! instances (kept as a bin target for quick inspection).

fn main() {
    for (n, r) in [(3usize, 1usize), (3, 2)] {
        let spec = gsb_core::SymmetricGsb::wsb(n).unwrap().to_spec();
        let complex = gsb_topology::protocol_complex(n, r);
        let search = gsb_topology::SymmetricSearch::over_complex(spec, &complex);
        println!(
            "n={n} r={r}: vertices={} classes={} facets_raw={} facets_dedup={}",
            complex.vertices().len(),
            search.classes().len(),
            complex.facet_count(),
            search.facet_count()
        );
    }
}
