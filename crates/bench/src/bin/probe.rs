//! Internal diagnostics: class/facet counts and engine timings of
//! solvability-search instances (kept as a bin target for quick
//! inspection).

use std::time::Instant;

use gsb_topology::{CdclConfig, SymmetricSearch};

fn probe(label: &str, spec: gsb_core::GsbSpec, rounds: usize) {
    let t = Instant::now();
    let search = SymmetricSearch::new(spec, rounds);
    let prep = t.elapsed();
    let t = Instant::now();
    let (result, stats) = search.solve_with(&CdclConfig::default());
    println!(
        "{label} r={rounds}: classes={} facets={} prep={prep:?} solve={:?} solvable={} \
         conflicts={} decisions={} props={} learned={} images={} restarts={}",
        search.classes().len(),
        search.facet_count(),
        t.elapsed(),
        result.is_solvable(),
        stats.conflicts,
        stats.decisions,
        stats.propagations,
        stats.learned,
        stats.symmetric_images,
        stats.restarts,
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    probe(
        "wsb(3)",
        gsb_core::SymmetricGsb::wsb(3).unwrap().to_spec(),
        1,
    );
    probe(
        "wsb(3)",
        gsb_core::SymmetricGsb::wsb(3).unwrap().to_spec(),
        2,
    );
    probe("election(3)", gsb_core::GsbSpec::election(3).unwrap(), 2);
    if which.contains("r1") {
        for m in [10, 9, 8, 7] {
            probe(
                &format!("renaming(4,{m})"),
                gsb_core::SymmetricGsb::renaming(4, m).unwrap().to_spec(),
                1,
            );
        }
    }
    if which.contains("n4") {
        for m in [10, 9, 8, 7] {
            probe(
                &format!("renaming(4,{m})"),
                gsb_core::SymmetricGsb::renaming(4, m).unwrap().to_spec(),
                2,
            );
        }
    }
    if which.contains("budget") {
        for (label, spec, r, budget) in [
            (
                "wsb(3)",
                gsb_core::SymmetricGsb::wsb(3).unwrap().to_spec(),
                2usize,
                1_000_000u64,
            ),
            (
                "loose_renaming(4)",
                gsb_core::SymmetricGsb::loose_renaming(4).unwrap().to_spec(),
                2,
                100_000,
            ),
            (
                "election(3)",
                gsb_core::GsbSpec::election(3).unwrap(),
                2,
                1_000_000,
            ),
        ] {
            let search = SymmetricSearch::new(spec, r);
            let t = Instant::now();
            let out = search.solve_reference_budgeted(budget);
            println!(
                "{label} r={r} budget={budget}: {:?} verdict={:?}",
                t.elapsed(),
                out.map(|o| o.is_solvable())
            );
        }
    }
    if which.contains("ref") {
        let spec = gsb_core::SymmetricGsb::wsb(3).unwrap().to_spec();
        let search = SymmetricSearch::new(spec, 2);
        let t = Instant::now();
        let result = search.solve_reference();
        println!(
            "wsb(3) r=2 reference: solvable={} in {:?}",
            result.is_solvable(),
            t.elapsed()
        );
    }
}
