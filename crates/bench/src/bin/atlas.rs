//! The **solvability atlas**: classifies every feasible symmetric GSB
//! task (Theorems 9–11, Corollaries 2–5), prints the gcd-of-binomials
//! table behind Theorem 10, and records the engine-vs-naive performance
//! trajectory in `BENCH_atlas.json` (see `DESIGN.md` §4).
//!
//! ```text
//! cargo run -p gsb-bench --bin atlas [-- max_n [--skip-bench]]
//! ```
//!
//! `--skip-bench` prints the classification tables only, skipping the
//! engine-vs-baseline timing trials and the `BENCH_atlas.json` record.

use gsb_bench::{atlas, atlas_report, write_bench_json};
use gsb_core::solvability::{binomial_gcd, is_prime_power};
use gsb_core::Solvability;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let skip_bench = args.iter().any(|a| a == "--skip-bench");
    let max_n: usize = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map_or(8, |s| s.parse().expect("max_n"));

    println!("gcd{{C(n,i) : 1 ≤ i ≤ ⌊n/2⌋}} — the Theorem 10 criterion\n");
    println!(
        "{:<4} {:<8} {:<12} {:<30}",
        "n", "gcd", "prime power", "WSB / (2n−2)-renaming"
    );
    for n in 2..=max_n.max(20) {
        let g = binomial_gcd(n);
        println!(
            "{:<4} {:<8} {:<12} {:<30}",
            n,
            g,
            is_prime_power(n),
            if g > 1 {
                "not wait-free solvable"
            } else {
                "wait-free solvable (exceptional n)"
            }
        );
    }

    println!("\nThe task zoo at n = {max_n} (§3.2's named tasks)\n");
    // One engine batch over the zoo: rayon fan-out, shared cache,
    // every verdict's evidence re-checked before printing.
    match gsb_core::zoo::catalog(max_n) {
        Ok(entries) => {
            let batch: gsb_engine::Batch = entries
                .iter()
                .map(|entry| gsb_engine::Query::classify(entry.spec.clone()))
                .collect();
            for (entry, verdict) in entries.iter().zip(batch.run()) {
                match verdict {
                    Ok(verdict) => {
                        println!("  {:<34} {:<38} {}", entry.name, entry.reference, verdict)
                    }
                    Err(e) => println!(
                        "  {:<34} {:<38} engine error: {e}",
                        entry.name, entry.reference
                    ),
                }
            }
        }
        Err(e) => println!("  (zoo unavailable: {e})"),
    }

    println!("\nSolvability atlas — every feasible ⟨n, m, ℓ, u⟩, n ≤ {max_n}\n");
    let rows = atlas(max_n);
    let mut counts = std::collections::BTreeMap::new();
    for row in &rows {
        *counts.entry(format!("{}", row.verdict)).or_insert(0usize) += 1;
    }
    println!(
        "{:<22} {:<20} {:>7} {:>9} {:>5}  {:<16} {:<28} justification",
        "task", "canonical", "kernels", "outputs", "depth", "anchoring", "verdict"
    );
    for row in &rows {
        println!(
            "{:<22} {:<20} {:>7} {:>9} {:>5}  {:<16} {:<28} {}",
            row.task.to_string(),
            format!("({}, {})", row.canonical.l(), row.canonical.u()),
            row.kernel_vectors,
            row.legal_outputs,
            row.inclusion_depth,
            row.anchoring.to_string(),
            row.verdict.to_string(),
            row.justification
        );
    }
    println!("\nTotals over {} tasks:", rows.len());
    for (verdict, count) in counts {
        println!("  {verdict:<30} {count}");
    }
    let open = rows
        .iter()
        .filter(|r| r.verdict == Solvability::Open)
        .count();
    println!("\n{open} tasks remain open — the frontier of the paper's §7 questions.");

    if skip_bench {
        return;
    }
    println!("\nPerformance record (engine vs. retained naive baseline)…");
    let report = atlas_report(max_n);
    let path = std::path::Path::new("BENCH_atlas.json");
    match write_bench_json(&report, path) {
        Ok(()) => println!(
            "  atlas({max_n}): engine {:.3} ms vs naive {:.3} ms — {:.2}× \
             (enumeration n=3: {} → {} nodes); written to {}",
            report.engine_wall.as_secs_f64() * 1e3,
            report.naive_wall.as_secs_f64() * 1e3,
            report.atlas_speedup(),
            report.enumeration.naive_nodes,
            report.enumeration.memoized_nodes,
            path.display()
        ),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}
