//! The **solvability atlas**: classifies every feasible symmetric GSB
//! task (Theorems 9–11, Corollaries 2–5) and prints the gcd-of-binomials
//! table behind Theorem 10.
//!
//! ```text
//! cargo run -p gsb-bench --bin atlas [-- max_n]
//! ```

use gsb_bench::atlas;
use gsb_core::solvability::{binomial_gcd, is_prime_power};
use gsb_core::Solvability;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: usize = args.get(1).map_or(8, |s| s.parse().expect("max_n"));

    println!("gcd{{C(n,i) : 1 ≤ i ≤ ⌊n/2⌋}} — the Theorem 10 criterion\n");
    println!(
        "{:<4} {:<8} {:<12} {:<30}",
        "n", "gcd", "prime power", "WSB / (2n−2)-renaming"
    );
    for n in 2..=max_n.max(20) {
        let g = binomial_gcd(n);
        println!(
            "{:<4} {:<8} {:<12} {:<30}",
            n,
            g,
            is_prime_power(n),
            if g > 1 {
                "not wait-free solvable"
            } else {
                "wait-free solvable (exceptional n)"
            }
        );
    }

    println!("\nThe task zoo at n = {max_n} (§3.2's named tasks)\n");
    match gsb_core::zoo::catalog(max_n) {
        Ok(entries) => {
            for entry in entries {
                println!(
                    "  {:<34} {:<38} {}",
                    entry.name,
                    entry.reference,
                    entry.spec.classify()
                );
            }
        }
        Err(e) => println!("  (zoo unavailable: {e})"),
    }

    println!("\nSolvability atlas — every feasible ⟨n, m, ℓ, u⟩, n ≤ {max_n}\n");
    let rows = atlas(max_n);
    let mut counts = std::collections::BTreeMap::new();
    for row in &rows {
        *counts.entry(format!("{}", row.verdict)).or_insert(0usize) += 1;
    }
    println!(
        "{:<22} {:<28} {}",
        "task", "verdict", "justification"
    );
    for row in &rows {
        println!(
            "{:<22} {:<28} {}",
            row.task.to_string(),
            row.verdict.to_string(),
            row.justification
        );
    }
    println!("\nTotals over {} tasks:", rows.len());
    for (verdict, count) in counts {
        println!("  {verdict:<30} {count}");
    }
    let open = rows
        .iter()
        .filter(|r| r.verdict == Solvability::Open)
        .count();
    println!(
        "\n{open} tasks remain open — the frontier of the paper's §7 questions."
    );
}
