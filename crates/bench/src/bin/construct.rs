//! The **construction bench**: the streaming template-stamping
//! subdivision pipeline vs. the retained reference builder, recorded in
//! `BENCH_construct.json` (see `DESIGN.md` §8).
//!
//! ```text
//! cargo run --release -p gsb-bench --bin construct [-- --quick]
//! ```
//!
//! * default — the full suite, including the `χ³(Δ³)` flagship row
//!   (421,875 facets, ~1 s on one core); use this when refreshing the
//!   committed `BENCH_construct.json`.
//! * `--quick` — CI smoke: the sub-100 ms rows only. Either mode fails
//!   on facet/vertex/class-count drift against the pinned frontier
//!   (`gsb_bench::CONSTRUCT_PINNED`).

use gsb_bench::{construct_report, write_construct_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "Protocol-complex construction: streaming pipeline vs. reference builder{}\n",
        if quick { " (--quick)" } else { "" }
    );
    let report = construct_report(quick);
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>10} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "complex",
        "facets",
        "vertices",
        "classes",
        "orbitrows",
        "streaming",
        "str+prep",
        "fused prep",
        "total x",
        "fused x"
    );
    for row in &report.rows {
        let ratio = |s: Option<f64>| s.map_or("—".to_string(), |s| format!("{s:.1}x"));
        println!(
            "χ^{}(Δ^{})   {:>9} {:>9} {:>9} {:>10} {:>11.3}ms {:>11.3}ms {:>11.3}ms {:>8} {:>7.1}x",
            row.rounds,
            row.n - 1,
            row.stats.facets,
            row.stats.vertices,
            row.stats.classes,
            row.orbit.orbit_rows,
            row.streaming_wall.as_secs_f64() * 1e3,
            (row.streaming_wall + row.full_prep_wall).as_secs_f64() * 1e3,
            row.fused_wall.as_secs_f64() * 1e3,
            ratio(row.total_speedup()),
            row.fused_speedup(),
        );
    }
    println!(
        "\n(streaming walls include incremental signature-class tracking: the built \
         complex carries its quotient; 'str+prep' adds the complex-side constraint \
         prep, 'fused prep' is the orbit-quotient pipeline that replaces both — one \
         lex-leader representative per facet orbit, stamped straight into the solver \
         instance; 'total x' is streaming vs. the seed reference builder+quotient.)"
    );

    let path = std::path::Path::new("BENCH_construct.json");
    match write_construct_json(&report, path) {
        Ok(()) => println!("\nRecord written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
