//! The **solvability-frontier search bench**: the decision-map engine
//! (CDCL, the CDCL-vs-local completion race, and local search alone)
//! vs. the retained backtracking baseline on the frontier instances,
//! recorded in `BENCH_search.json` (see `DESIGN.md` §6 and §12).
//!
//! ```text
//! cargo run --release -p gsb-bench --bin search [-- --quick | --full]
//! ```
//!
//! * default — per-row baseline budgets (censored rows take ~1 s each).
//! * `--quick` — CI smoke: one small node cap for every baseline row;
//!   still asserts the frontier verdicts and races the
//!   `loose_renaming(4) r=2 [race]` row.
//! * `--full` — uncensored `wsb(3) r=2` baseline (~10 s) plus the
//!   heavyweight frontier records: `wsb(3) r=3` and its `[orbit]` A/B
//!   twin, the `loose_renaming(5) r=2` CDCL/race/local split (gated at
//!   ≤ 20 s for the race row), and the `renaming(3,6) r=2` cold/warm
//!   split; use this when refreshing the committed
//!   `BENCH_search.json`. Expect ~15 minutes on one quiet core.

use gsb_bench::{search_report_budgeted, write_search_json, BaselineBudget};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mode = if full {
        BaselineBudget::Full
    } else if args.iter().any(|a| a == "--quick") {
        BaselineBudget::Capped(100_000)
    } else {
        BaselineBudget::Default
    };

    println!("Decision-map search: solver engine vs. retained backtracking baseline\n");
    let report = search_report_budgeted(mode);
    println!(
        "{:<30} {:>7} {:>7} {:>9} {:>12} {:>12} {:>12} {:>10}  verdict",
        "instance", "classes", "facets", "conflicts", "engine", "governed", "baseline", "speedup"
    );
    for row in &report.rows {
        println!(
            "{:<30} {:>7} {:>7} {:>9} {:>11.3}ms {:>11.3}ms {:>11.1}ms {:>10}{} {}",
            row.instance,
            row.classes,
            row.facets,
            row.cdcl_stats.conflicts,
            row.cdcl_wall.as_secs_f64() * 1e3,
            row.governed_wall.as_secs_f64() * 1e3,
            row.baseline_wall.as_secs_f64() * 1e3,
            row.speedup()
                .map_or("—".to_string(), |ratio| format!("{ratio:.0}x")),
            if row.baseline_censored { "+" } else { " " },
            if row.solvable { "solvable" } else { "UNSAT" },
        );
    }
    println!(
        "\n('+' marks censored baselines: the budget ran out, so the speedup is a lower \
         bound; '—' marks tiny rows the baseline wins outright or mode-variant rows \
         that skip the duplicate baseline.)"
    );

    // The frontier must stay closed, whatever the budgets.
    let wsb = report
        .rows
        .iter()
        .find(|r| r.instance.starts_with("wsb"))
        .expect("wsb row");
    assert!(!wsb.solvable, "WSB n=3 r=2 must be UNSAT");
    let renaming = report
        .rows
        .iter()
        .find(|r| r.instance.starts_with("loose_renaming"))
        .expect("renaming row");
    assert!(renaming.solvable, "(2n−1)-renaming n=4 must solve at r=2");
    // The completion race must reach the same verdict as plain CDCL on
    // its smoke instance — every mode, every run, including --quick CI.
    let race_smoke = report
        .rows
        .iter()
        .find(|r| r.instance == "loose_renaming(4) r=2 [race]")
        .expect("race smoke row");
    assert!(
        race_smoke.solvable,
        "the completion race must reach the plain row's SAT verdict"
    );

    if full {
        // The record rows this bench pins. loose_renaming(5) r=2 under
        // the race is the large-SAT acceptance gate: the local lane's
        // offending-class repair walk closed what took plain CDCL
        // minutes, and the committed record must not regress past 20 s.
        let flagship = report
            .rows
            .iter()
            .find(|r| r.instance == "loose_renaming(5) r=2 [race]")
            .expect("flagship race row");
        assert!(flagship.solvable, "loose_renaming(5) r=2 is SAT");
        assert!(
            flagship.cdcl_wall <= std::time::Duration::from_secs(20),
            "the flagship race row regressed past the 20 s record: {:?}",
            flagship.cdcl_wall
        );
        // The warm-started twin must actually have seeded (the lift of
        // the r=1 map reached the r=2 instance).
        let warm = report
            .rows
            .iter()
            .find(|r| r.instance == "renaming(3,6) r=2 [warm]")
            .expect("warm row");
        assert!(
            warm.warm_seeded,
            "the lifted warm start must seed the solver"
        );
    }

    // Governance drift gate on the pinned frontier rows: strided poll
    // sites and a channel-parked watchdog must stay near-free. `--full`
    // (the mode that refreshes the committed record) enforces the 2%
    // budget; the other modes run on noisy CI boxes and gate loosely so
    // only a real regression (a poll in a hot inner loop) trips them.
    // A 200 µs absolute floor keeps scheduler jitter on the sub-ms row
    // from masquerading as drift — a poll added to a hot inner loop
    // costs orders of magnitude more than that on these instances.
    let tolerance = if full { 0.02 } else { 0.50 };
    let slack = std::time::Duration::from_micros(200);
    for row in [&wsb, &renaming] {
        let overhead = row.governed_overhead();
        let gap = row.governed_wall.saturating_sub(row.cdcl_wall);
        println!(
            "governed overhead on {}: {:+.2}% (gate {:.0}% or <{:?} absolute)",
            row.instance,
            overhead * 100.0,
            tolerance * 100.0,
            slack
        );
        assert!(
            overhead < tolerance || gap < slack,
            "governance overhead drifted on {}: {:.2}% >= {:.0}% (gap {:?})",
            row.instance,
            overhead * 100.0,
            tolerance * 100.0,
            gap
        );
    }

    let path = std::path::Path::new("BENCH_search.json");
    match write_search_json(&report, path) {
        Ok(()) => println!("\nRecord written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
