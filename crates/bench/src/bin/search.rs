//! The **solvability-frontier search bench**: the CDCL decision-map
//! engine vs. the retained backtracking baseline on the frontier
//! instances (WSB/election `r = 2` UNSAT at `n = 3`, the two-round
//! `(2n−1)`-renaming map at `n = 4`), recorded in `BENCH_search.json`
//! (see `DESIGN.md` §6).
//!
//! ```text
//! cargo run --release -p gsb-bench --bin search [-- --quick | --full]
//! ```
//!
//! * default — per-row baseline budgets (censored rows take ~1 s each).
//! * `--quick` — CI smoke: one small node cap for every baseline row;
//!   still asserts the frontier verdicts.
//! * `--full` — uncensored `wsb(3) r=2` baseline (~10 s) and a deep
//!   (but still bounded) `loose_renaming(4) r=2` probe; use this when
//!   refreshing the committed `BENCH_search.json`.

use gsb_bench::{search_report_budgeted, write_search_json, BaselineBudget};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = if args.iter().any(|a| a == "--full") {
        BaselineBudget::Full
    } else if args.iter().any(|a| a == "--quick") {
        BaselineBudget::Capped(100_000)
    } else {
        BaselineBudget::Default
    };

    println!("Decision-map search: CDCL engine vs. retained backtracking baseline\n");
    let report = search_report_budgeted(mode);
    println!(
        "{:<24} {:>7} {:>7} {:>9} {:>12} {:>12} {:>12} {:>10}  verdict",
        "instance", "classes", "facets", "conflicts", "cdcl", "governed", "baseline", "speedup"
    );
    for row in &report.rows {
        println!(
            "{:<24} {:>7} {:>7} {:>9} {:>11.3}ms {:>11.3}ms {:>11.1}ms {:>10}{} {}",
            row.instance,
            row.classes,
            row.facets,
            row.cdcl_stats.conflicts,
            row.cdcl_wall.as_secs_f64() * 1e3,
            row.governed_wall.as_secs_f64() * 1e3,
            row.baseline_wall.as_secs_f64() * 1e3,
            row.speedup()
                .map_or("—".to_string(), |ratio| format!("{ratio:.0}x")),
            if row.baseline_censored { "+" } else { " " },
            if row.solvable { "solvable" } else { "UNSAT" },
        );
    }
    println!(
        "\n('+' marks censored baselines: the budget ran out, so the speedup is a lower \
         bound; '—' marks tiny rows the baseline wins outright.)"
    );

    // The frontier must stay closed, whatever the budgets.
    let wsb = report
        .rows
        .iter()
        .find(|r| r.instance.starts_with("wsb"))
        .expect("wsb row");
    assert!(!wsb.solvable, "WSB n=3 r=2 must be UNSAT");
    let renaming = report
        .rows
        .iter()
        .find(|r| r.instance.starts_with("loose_renaming"))
        .expect("renaming row");
    assert!(renaming.solvable, "(2n−1)-renaming n=4 must solve at r=2");

    // Governance drift gate on the pinned frontier rows: strided poll
    // sites and a channel-parked watchdog must stay near-free. `--full`
    // (the mode that refreshes the committed record) enforces the 2%
    // budget; the other modes run on noisy CI boxes and gate loosely so
    // only a real regression (a poll in a hot inner loop) trips them.
    // A 200 µs absolute floor keeps scheduler jitter on the sub-ms row
    // from masquerading as drift — a poll added to a hot inner loop
    // costs orders of magnitude more than that on these instances.
    let tolerance = if args.iter().any(|a| a == "--full") {
        0.02
    } else {
        0.50
    };
    let slack = std::time::Duration::from_micros(200);
    for row in [&wsb, &renaming] {
        let overhead = row.governed_overhead();
        let gap = row.governed_wall.saturating_sub(row.cdcl_wall);
        println!(
            "governed overhead on {}: {:+.2}% (gate {:.0}% or <{:?} absolute)",
            row.instance,
            overhead * 100.0,
            tolerance * 100.0,
            slack
        );
        assert!(
            overhead < tolerance || gap < slack,
            "governance overhead drifted on {}: {:.2}% >= {:.0}% (gap {:?})",
            row.instance,
            overhead * 100.0,
            tolerance * 100.0,
            gap
        );
    }

    let path = std::path::Path::new("BENCH_search.json");
    match write_search_json(&report, path) {
        Ok(()) => println!("\nRecord written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
