//! Bench E1: regenerating the paper's Table 1 (kernel enumeration +
//! canonical flags) across a parameter sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_core::KernelTable;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    // The paper's exact artifact.
    group.bench_function("paper_n6_m3", |b| {
        b.iter(|| {
            let table = KernelTable::new(6, 3).unwrap();
            assert_eq!(table.columns().len(), 7);
            table
        });
    });
    // Scaling in n at fixed m.
    for n in [6usize, 9, 12, 15, 18] {
        group.bench_with_input(BenchmarkId::new("scaling_m3", n), &n, |b, &n| {
            b.iter(|| KernelTable::new(n, 3).unwrap());
        });
    }
    // Scaling in m at fixed n.
    for m in [2usize, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::new("scaling_n12", m), &m, |b, &m| {
            b.iter(|| KernelTable::new(12, m).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_table1
}
criterion_main!(benches);
