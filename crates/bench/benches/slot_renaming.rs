//! Bench E3/E10: the Figure 2 algorithm — `(n+1)`-renaming from an
//! `(n−1)`-slot object — versus `n`, scheduler and oracle policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_algorithms::SlotRenamingProtocol;
use gsb_core::{Identity, SymmetricGsb};
use gsb_memory::{
    build_executor, AdversarialScheduler, CrashPlan, GsbOracle, Oracle, OraclePolicy,
    ProtocolFactory, SeededScheduler,
};

fn ids(n: usize) -> Vec<Identity> {
    (0..n as u32)
        .map(|i| Identity::new(1 + 2 * i).unwrap())
        .collect()
}

fn slot_oracles(n: usize, policy: OraclePolicy) -> Vec<Box<dyn Oracle>> {
    let spec = SymmetricGsb::slot(n, n - 1).unwrap().to_spec();
    vec![Box::new(GsbOracle::new(spec, policy).unwrap())]
}

fn bench_slot_renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_renaming");
    for n in [2usize, 4, 8, 12, 16] {
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)));
        group.bench_with_input(BenchmarkId::new("figure2_random", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut exec = build_executor(
                    &factory,
                    &ids(n),
                    slot_oracles(n, OraclePolicy::Seeded(seed)),
                );
                exec.run(
                    &mut SeededScheduler::new(seed),
                    &CrashPlan::none(n),
                    100_000,
                )
                .unwrap()
                .steps
            });
        });
        group.bench_with_input(BenchmarkId::new("figure2_adversarial", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut exec =
                    build_executor(&factory, &ids(n), slot_oracles(n, OraclePolicy::LastFit));
                exec.run(
                    &mut AdversarialScheduler::new(seed, 24),
                    &CrashPlan::none(n),
                    100_000,
                )
                .unwrap()
                .steps
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_slot_renaming
}
criterion_main!(benches);
