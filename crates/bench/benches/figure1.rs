//! Bench E2: regenerating the paper's Figure 1 (canonical task partial
//! order with Hasse reduction) across a parameter sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_core::TaskOrder;

fn bench_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1");
    group.bench_function("paper_n6_m3", |b| {
        b.iter(|| {
            let order = TaskOrder::new(6, 3).unwrap();
            assert_eq!(order.classes().len(), 7);
            assert_eq!(order.hasse_edges().len(), 7);
            order
        });
    });
    for n in [6usize, 8, 10, 12] {
        group.bench_with_input(BenchmarkId::new("scaling_m3", n), &n, |b, &n| {
            b.iter(|| TaskOrder::new(n, 3).unwrap());
        });
    }
    for (n, m) in [(8usize, 4usize), (10, 5), (12, 4)] {
        group.bench_with_input(
            BenchmarkId::new("scaling_nm", format!("{n}x{m}")),
            &(n, m),
            |b, &(n, m)| {
                b.iter(|| TaskOrder::new(n, m).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_figure1
}
criterion_main!(benches);
