//! Bench: the conflict-driven decision-map search — the frontier
//! instances the seed's backtracking could not certify, plus the shared
//! subdivision and quotient preparation feeding the solver.

use criterion::{criterion_group, criterion_main, Criterion};
use gsb_core::SymmetricGsb;
use gsb_topology::{protocol_complex, CdclConfig, SymmetricSearch};

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");

    // The headline UNSAT frontier: 81-class NAE system on χ²(Δ²).
    let wsb3 = SymmetricGsb::wsb(3).unwrap().to_spec();
    let wsb_search = SymmetricSearch::new(wsb3.clone(), 2);
    group.bench_function("cdcl_wsb3_r2_unsat", |b| {
        b.iter(|| {
            let (result, _) = wsb_search.solve_with(&CdclConfig::default());
            assert!(!result.is_solvable());
        });
    });

    // The same instance through the retained baseline, budget-capped so
    // the bench stays fast: measures baseline node throughput (the full
    // verdict needs ~10 s; `--bin search -- --full` records it).
    group.bench_function("baseline_wsb3_r2_100k_nodes", |b| {
        b.iter(|| {
            assert!(wsb_search.solve_reference_budgeted(100_000).is_none());
        });
    });

    // The SAT frontier: 865 classes / 5625 facets, solved by CDCL.
    let renaming4 = SymmetricGsb::loose_renaming(4).unwrap().to_spec();
    let renaming_search = SymmetricSearch::new(renaming4, 2);
    group.bench_function("cdcl_loose_renaming4_r2_sat", |b| {
        b.iter(|| {
            let (result, _) = renaming_search.solve_with(&CdclConfig::default());
            assert!(result.is_solvable());
        });
    });

    // Input pipeline: fresh subdivision build vs. quotient preparation.
    group.bench_function("protocol_complex_n3_r2", |b| {
        b.iter(|| protocol_complex(3, 2).facet_count());
    });
    group.bench_function("prepare_wsb3_r2", |b| {
        b.iter(|| SymmetricSearch::new(wsb3.clone(), 2).classes().len());
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_search
}
criterion_main!(benches);
