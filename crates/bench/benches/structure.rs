//! Bench E8: structure-theory primitives — kernel-set enumeration
//! (partition-based vs. the naive output-enumeration ablation), canonical
//! fixed points, anchoring closed forms vs. definitional checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_core::{CountingVector, KernelVector, SymmetricGsb};
use std::collections::BTreeSet;

/// Ablation baseline: derive the kernel set by enumerating every legal
/// output vector and collecting kernels — exponential in `n`.
fn kernel_set_via_outputs(task: &SymmetricGsb) -> BTreeSet<KernelVector> {
    task.to_spec()
        .legal_outputs()
        .iter()
        .map(|o| CountingVector::of_output(o, task.m()).to_kernel())
        .collect()
}

fn bench_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure");

    // Partition-based kernel enumeration (the implementation).
    for n in [6usize, 12, 20, 30] {
        let task = SymmetricGsb::new(n, 4, 0, n).unwrap();
        group.bench_with_input(BenchmarkId::new("kernels_partition", n), &task, |b, t| {
            b.iter(|| t.kernel_set());
        });
    }
    // Ablation: output-enumeration baseline (small n only — it explodes).
    for n in [4usize, 6, 8] {
        let task = SymmetricGsb::new(n, 3, 0, n).unwrap();
        group.bench_with_input(BenchmarkId::new("kernels_via_outputs", n), &task, |b, t| {
            b.iter(|| kernel_set_via_outputs(t));
        });
    }
    // Canonical representative fixed points over a family.
    group.bench_function("canonical_family_n12_m4", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for t in gsb_core::order::feasible_family(12, 4).unwrap() {
                if t.canonical().unwrap() == t {
                    count += 1;
                }
            }
            count
        });
    });
    // Anchoring: closed form (Theorems 3–4) vs. definitional kernel-set
    // comparison.
    let task = SymmetricGsb::new(20, 4, 3, 7).unwrap();
    group.bench_function("anchoring_closed_form", |b| {
        b.iter(|| {
            (
                task.is_l_anchored_closed_form().unwrap(),
                task.is_u_anchored_closed_form().unwrap(),
            )
        });
    });
    group.bench_function("anchoring_definitional", |b| {
        b.iter(|| (task.is_l_anchored().unwrap(), task.is_u_anchored().unwrap()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_structure
}
criterion_main!(benches);
