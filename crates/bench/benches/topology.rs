//! Bench E7: protocol-complex construction and the symmetric decision-map
//! search (Theorem 11's machinery), including the symmetry-pruning
//! ablation via class counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_core::{GsbSpec, SymmetricGsb};
use gsb_topology::{protocol_complex, SearchResult, SymmetricSearch};

/// Engine-path shorthand (the free function of the same name is
/// deprecated in favor of the engine crate).
fn solvable_in_rounds(spec: &GsbSpec, rounds: usize) -> SearchResult {
    SymmetricSearch::new(spec.clone(), rounds).solve()
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.sample_size(10);

    // Complex construction.
    for (n, r) in [(2usize, 2usize), (3, 1), (3, 2), (4, 1)] {
        group.bench_with_input(
            BenchmarkId::new("chi_r_construction", format!("n{n}_r{r}")),
            &(n, r),
            |b, &(n, r)| {
                b.iter(|| protocol_complex(n, r).facet_count());
            },
        );
    }

    // Pseudomanifold check.
    group.bench_function("pseudomanifold_n3_r2", |b| {
        let complex = protocol_complex(3, 2);
        b.iter(|| complex.is_pseudomanifold());
    });

    // Decision-map searches: the paper's impossibility (election) and a
    // solvable renaming instance.
    group.bench_function("election_n3_r1_unsat", |b| {
        let spec = GsbSpec::election(3).unwrap();
        b.iter(|| {
            assert!(!solvable_in_rounds(&spec, 1).is_solvable());
        });
    });
    group.bench_function("renaming6_n3_r1_sat", |b| {
        let spec = SymmetricGsb::renaming(3, 6).unwrap().to_spec();
        b.iter(|| {
            assert!(solvable_in_rounds(&spec, 1).is_solvable());
        });
    });
    group.bench_function("wsb_n3_r1_unsat", |b| {
        let spec = SymmetricGsb::wsb(3).unwrap().to_spec();
        b.iter(|| {
            assert!(!solvable_in_rounds(&spec, 1).is_solvable());
        });
    });

    // Symmetry-quotient preparation (the pruning the search relies on).
    group.bench_function("symmetry_quotient_n3_r2", |b| {
        let spec = SymmetricGsb::wsb(3).unwrap().to_spec();
        b.iter(|| SymmetricSearch::new(spec.clone(), 2).classes().len());
    });

    // The Theorem 11 certificate: polynomial structure checks vs. the
    // exponential map search (the ablation DESIGN.md §4 calls out).
    for (n, r) in [(3usize, 1usize), (3, 2), (4, 1), (5, 1)] {
        group.bench_with_input(
            BenchmarkId::new("election_certificate", format!("n{n}_r{r}")),
            &(n, r),
            |b, &(n, r)| {
                b.iter(|| {
                    gsb_topology::election_impossibility_certificate(n, r).unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_topology
}
criterion_main!(benches);
