//! Bench E9: snapshot substrate — the AADGMS register-built snapshot
//! versus the native (oracle) snapshot primitive, and the real-thread
//! double-collect array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_memory::snapshot::SnapshotStressProtocol;
use gsb_memory::threaded::AtomicScanArray;
use gsb_memory::{
    build_executor, Action, CrashPlan, Observation, Protocol, ProtocolFactory, SeededScheduler,
    Word,
};

/// Native-snapshot counterpart of the stress protocol: same update/scan
/// pattern, but every collect is one atomic `Snapshot` action (the
/// model's primitive) instead of `n` single-cell reads.
#[derive(Debug, Clone)]
struct NativeStressProtocol {
    id: Word,
    rounds: usize,
    round: usize,
    phase: u8, // 0 = need write, 1 = need snapshot, 2 = final scan
}

impl NativeStressProtocol {
    fn new(id: Word, rounds: usize) -> Self {
        NativeStressProtocol {
            id,
            rounds,
            round: 0,
            phase: 0,
        }
    }
}

impl Protocol for NativeStressProtocol {
    fn next_action(&mut self, obs: Observation) -> Action {
        match (self.phase, obs) {
            (0, Observation::Start | Observation::Snapshot(_)) => {
                self.round += 1;
                self.phase = 1;
                Action::Write(vec![self.id * 1000 + self.round as Word])
            }
            (1, Observation::Written) => {
                self.phase = if self.round < self.rounds { 0 } else { 2 };
                Action::Snapshot
            }
            (2, Observation::Snapshot(snap)) => Action::Decide(snap.iter().flatten().count()),
            (phase, obs) => unreachable!("native stress: {obs:?} in phase {phase}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

fn run_stress(factory: &ProtocolFactory<'_>, n: usize, seed: u64) -> usize {
    let ids: Vec<gsb_core::Identity> = (0..n as u32)
        .map(|i| gsb_core::Identity::new(i + 1).unwrap())
        .collect();
    let mut exec = build_executor(factory, &ids, vec![]);
    exec.run(
        &mut SeededScheduler::new(seed),
        &CrashPlan::none(n),
        1_000_000,
    )
    .unwrap()
    .steps
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for n in [2usize, 4, 6] {
        // AADGMS from single-cell reads (O(n²) reads per scan).
        let aadgms: Box<ProtocolFactory<'static>> = Box::new(|_pid, id, n| {
            Box::new(SnapshotStressProtocol::new(u64::from(id.get()), n, 2))
        });
        group.bench_with_input(BenchmarkId::new("aadgms_from_registers", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_stress(&aadgms, n, seed)
            });
        });
        // Native snapshot primitive (one step per scan).
        let native: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, _n| Box::new(NativeStressProtocol::new(u64::from(id.get()), 2)));
        group.bench_with_input(BenchmarkId::new("native_primitive", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_stress(&native, n, seed)
            });
        });
    }
    // Real-thread double-collect array, single-threaded baseline cost.
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("threaded_scan", n), &n, |b, &n| {
            let array = AtomicScanArray::new(n);
            for i in 0..n {
                array.write(i, vec![i as u64]);
            }
            b.iter(|| array.scan());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_snapshot
}
criterion_main!(benches);
