//! Bench E4: Theorem 8's universal construction — solving the GSB task
//! zoo from a perfect-renaming object.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_algorithms::UniversalGsbProtocol;
use gsb_core::{GsbSpec, Identity, SymmetricGsb};
use gsb_memory::{
    build_executor, CrashPlan, GsbOracle, Oracle, OraclePolicy, ProtocolFactory, SeededScheduler,
};

fn ids(n: usize) -> Vec<Identity> {
    (0..n as u32)
        .map(|i| Identity::new(1 + 2 * i).unwrap())
        .collect()
}

fn perfect_oracles(n: usize) -> Vec<Box<dyn Oracle>> {
    let spec = SymmetricGsb::perfect_renaming(n).unwrap().to_spec();
    vec![Box::new(
        GsbOracle::new(spec, OraclePolicy::FirstFit).unwrap(),
    )]
}

fn run_target(target: &GsbSpec, seed: u64) -> usize {
    let n = target.n();
    let target_owned = target.clone();
    let factory: Box<ProtocolFactory<'static>> =
        Box::new(move |_pid, _id, _n| Box::new(UniversalGsbProtocol::new(&target_owned).unwrap()));
    let mut exec = build_executor(&factory, &ids(n), perfect_oracles(n));
    exec.run(
        &mut SeededScheduler::new(seed),
        &CrashPlan::none(n),
        100_000,
    )
    .unwrap()
    .steps
}

fn bench_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal");
    let zoo: Vec<(&str, GsbSpec)> = vec![
        ("wsb_n8", SymmetricGsb::wsb(8).unwrap().to_spec()),
        ("k_wsb_n8_k3", SymmetricGsb::k_wsb(8, 3).unwrap().to_spec()),
        ("slot_n8_k5", SymmetricGsb::slot(8, 5).unwrap().to_spec()),
        (
            "perfect_renaming_n8",
            SymmetricGsb::perfect_renaming(8).unwrap().to_spec(),
        ),
        ("election_n8", GsbSpec::election(8).unwrap()),
        (
            "committees_n8",
            GsbSpec::committees(8, &[(1, 3), (2, 4), (1, 2), (0, 2)]).unwrap(),
        ),
    ];
    for (name, target) in &zoo {
        group.bench_with_input(BenchmarkId::new("zoo", name), target, |b, target| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_target(target, seed)
            });
        });
    }
    // Scaling in n for a fixed target shape (the hardest task ⟨n,3,·,·⟩).
    for n in [4usize, 8, 16, 32] {
        let target = SymmetricGsb::hardest(n, 3).unwrap().to_spec();
        group.bench_with_input(BenchmarkId::new("hardest_m3", n), &target, |b, target| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_target(target, seed)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_universal
}
criterion_main!(benches);
