//! Bench E5/E6: the solvability machinery — Theorem 9's closed form vs.
//! the brute-force decision-map search, and the gcd-of-binomials
//! criterion (Theorem 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_core::solvability::binomial_gcd;
use gsb_core::SymmetricGsb;

fn bench_solvability(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvability");

    // Theorem 9 closed form over a whole family — effectively free.
    group.bench_function("theorem9_closed_form_n8_sweep", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for m in 1..=8usize {
                for task in gsb_core::order::feasible_family(8, m).unwrap() {
                    if task.no_communication_solvable() {
                        count += 1;
                    }
                }
            }
            count
        });
    });

    // Brute-force baseline (ablation): exponential map search, n = 2, 3.
    for n in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("brute_force_maps", n), &n, |b, &n| {
            let task = SymmetricGsb::wsb(n).unwrap().to_spec();
            b.iter(|| task.no_communication_brute_force());
        });
    }

    // gcd{C(n,i)} for increasing n.
    for n in [8usize, 16, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("binomial_gcd", n), &n, |b, &n| {
            b.iter(|| binomial_gcd(n));
        });
    }

    // Full classifier over every feasible task at n = 10.
    group.bench_function("classify_family_n10", |b| {
        b.iter(|| {
            let mut verdicts = 0usize;
            for m in 1..=10usize {
                for task in gsb_core::order::feasible_family(10, m).unwrap() {
                    let _ = task.classify();
                    verdicts += 1;
                }
            }
            verdicts
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_solvability
}
criterion_main!(benches);
