//! Bench E9: the solvability atlas — parallel memoized engine vs. the
//! seed's naive serial path (see `DESIGN.md` §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_atlas(c: &mut Criterion) {
    let mut group = c.benchmark_group("atlas");
    for n in [6usize, 8, 9] {
        group.bench_with_input(BenchmarkId::new("engine", n), &n, |b, &n| {
            b.iter(|| gsb_bench::atlas(n));
        });
        group.bench_with_input(BenchmarkId::new("naive_serial", n), &n, |b, &n| {
            b.iter(|| gsb_bench::atlas_naive(n));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_atlas
}
criterion_main!(benches);
