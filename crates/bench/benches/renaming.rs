//! Bench: the `(2n−1)`-renaming algorithm (Theorems 1–2's tool) — run
//! time and step counts versus `n` and scheduler, plus the IS-based
//! `n(n+1)/2` renaming ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsb_algorithms::{IsRenamingProtocol, RenamingProtocol};
use gsb_core::Identity;
use gsb_memory::{
    build_executor, AdversarialScheduler, CrashPlan, ProtocolFactory, RoundRobinScheduler,
    SeededScheduler,
};

fn ids(n: usize, stride: u32) -> Vec<Identity> {
    (0..n as u32)
        .map(|i| Identity::new(1 + i * stride).unwrap())
        .collect()
}

fn bench_renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("renaming");
    for n in [2usize, 4, 6, 8] {
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, _n| Box::new(RenamingProtocol::new(id)));
        group.bench_with_input(BenchmarkId::new("attiya_round_robin", n), &n, |b, &n| {
            b.iter(|| {
                let mut exec = build_executor(&factory, &ids(n, 3), vec![]);
                exec.run(
                    &mut RoundRobinScheduler::new(),
                    &CrashPlan::none(n),
                    1_000_000,
                )
                .unwrap()
                .steps
            });
        });
        group.bench_with_input(BenchmarkId::new("attiya_random", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut exec = build_executor(&factory, &ids(n, 3), vec![]);
                exec.run(
                    &mut SeededScheduler::new(seed),
                    &CrashPlan::none(n),
                    1_000_000,
                )
                .unwrap()
                .steps
            });
        });
        group.bench_with_input(BenchmarkId::new("attiya_adversarial", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut exec = build_executor(&factory, &ids(n, 3), vec![]);
                exec.run(
                    &mut AdversarialScheduler::new(seed, 32),
                    &CrashPlan::none(n),
                    1_000_000,
                )
                .unwrap()
                .steps
            });
        });
        // Ablation: IS-based renaming (larger name space, one IS round).
        let is_factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, n| Box::new(IsRenamingProtocol::new(id, n)));
        group.bench_with_input(BenchmarkId::new("is_renaming_random", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut exec = build_executor(&is_factory, &ids(n, 3), vec![]);
                exec.run(
                    &mut SeededScheduler::new(seed),
                    &CrashPlan::none(n),
                    1_000_000,
                )
                .unwrap()
                .steps
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_renaming
}
criterion_main!(benches);
