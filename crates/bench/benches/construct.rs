//! Criterion bench: streaming vs. reference subdivision construction on
//! the `χ²(Δ³)` acceptance row (5,625 facets) and the streaming-only
//! `χ³(Δ²)` column. The full frontier (including `χ³(Δ³)`) is recorded
//! by the `construct` bin into `BENCH_construct.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use gsb_topology::{protocol_complex, protocol_complex_reference};

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct");
    group.bench_function("streaming_chi2_delta3", |b| {
        b.iter(|| protocol_complex(4, 2).facet_count());
    });
    group.bench_function("reference_chi2_delta3", |b| {
        b.iter(|| {
            let complex = protocol_complex_reference(4, 2);
            // The reference pipeline pays its quotient separately; fold
            // it in for the like-for-like end-to-end comparison.
            complex.signature_quotient().classes.len()
        });
    });
    group.bench_function("streaming_chi3_delta2", |b| {
        b.iter(|| protocol_complex(3, 3).facet_count());
    });
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
