//! End-to-end serve-loop tests: a real server on an ephemeral port,
//! real TCP clients, concurrent mixed traffic, hostile bytes, load
//! shedding, and clean shutdown with the store intact.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gsb_engine::{EngineCache, Json, Query, Question};
use gsb_serve::{
    AdmissionPolicy, Client, ClientError, Served, ServedBy, Server, ServerConfig, ServerHandle,
    VerdictStore,
};

fn start(policy: AdmissionPolicy, store: VerdictStore) -> (ServerHandle, String, Arc<EngineCache>) {
    let cache = Arc::new(EngineCache::new());
    let config = ServerConfig {
        policy,
        // Enough workers for every concurrent test client even on
        // small CI machines (the pool defaults to the core count).
        workers: 8,
        ..ServerConfig::default()
    };
    let handle = Server::start(config, Arc::new(store), Arc::clone(&cache)).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr, cache)
}

fn zoo_classify_queries(max_n: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for n in 2..=max_n {
        for entry in gsb_core::zoo::catalog(n).expect("catalog") {
            queries.push(Query::new(entry.spec, Question::Classify));
        }
    }
    queries
}

#[test]
fn prebuilt_store_answers_the_zoo_without_the_solver() {
    // Precompute with a throwaway cache so the server's own cache
    // proves the solver was never consulted at serve time.
    let store = VerdictStore::in_memory();
    store
        .build_atlas(5, &EngineCache::new())
        .expect("atlas precompute");
    let (handle, addr, cache) = start(AdmissionPolicy::default(), store);
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.ping().expect("ping"), 1);

    let queries = zoo_classify_queries(5);
    assert!(!queries.is_empty());
    for query in &queries {
        let Served { verdict, served_by } = client.query(query).expect("query");
        assert_eq!(served_by, ServedBy::Store, "zoo classify must be a lookup");
        assert!(verdict.solvability.is_some());
        verdict.check().expect("store verdicts re-verify");
    }
    // Witness questions ride the same precompute.
    for n in 2..=5 {
        for entry in gsb_core::zoo::catalog(n).unwrap() {
            let query = Query::new(entry.spec, Question::NoCommWitness);
            let served = client.query(&query).expect("witness query");
            assert_eq!(served.served_by, ServedBy::Store);
        }
    }

    let metrics = client.metrics().expect("metrics");
    let served_store = metric(&metrics, &["server", "served_store"]);
    let served_engine = metric(&metrics, &["server", "served_engine"]);
    assert_eq!(served_engine, 0.0, "the solver must never have run");
    assert!(served_store >= 2.0 * queries.len() as f64);
    assert_eq!(
        metric(&metrics, &["cache", "misses"]),
        0.0,
        "the engine cache was never consulted"
    );
    assert_eq!(metric(&metrics, &["store", "misses"]), 0.0);
    let p50 = metrics
        .get("server")
        .and_then(|s| s.get("latency"))
        .and_then(|l| l.get("classify"))
        .and_then(|h| h.get("p50_us"))
        .and_then(Json::as_f64)
        .expect("classify latency histogram is populated");
    assert!(p50 > 0.0);

    client.shutdown().expect("graceful shutdown");
    handle.join();
    drop(cache);
}

#[test]
fn hostile_bytes_get_error_responses_and_the_server_survives() {
    let (handle, addr, _cache) = start(AdmissionPolicy::default(), VerdictStore::in_memory());

    // Raw garbage on a raw socket: every line answers an error line.
    let stream = TcpStream::connect(&addr).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let write = |line: &str| {
        (&stream).write_all(line.as_bytes()).unwrap();
        (&stream).write_all(b"\n").unwrap();
    };
    let bomb = format!("{}{}", "[".repeat(4000), "]".repeat(4000));
    for hostile in [
        "not json at all",
        "{\"kind\":\"query\"}",
        "{\"kind\":\"no-such-kind\"}",
        &bomb,
        "{\"kind\":\"query\",\"question\":{\"kind\":\"classify\"},\"spec\":{\"n\":1e18}}",
    ] {
        write(hostile);
        let mut line = String::new();
        reader.read_line(&mut line).expect("error response");
        let value = Json::parse(&line).expect("responses stay well-formed");
        assert_eq!(value.get("kind").and_then(Json::as_str), Some("error"));
    }

    // An over-long line is answered then the connection is dropped...
    write(&"x".repeat((2 << 20) + 16));
    let mut line = String::new();
    reader.read_line(&mut line).expect("cap response");
    assert!(line.contains("error"));

    // ...but the server itself is fine: fresh connections still work.
    let mut client = Client::connect(&addr).expect("reconnect");
    client.ping().expect("server survived the hostile bytes");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn saturated_server_sheds_with_a_typed_overloaded_response() {
    let policy = AdmissionPolicy {
        max_in_flight: 0, // every engine-bound query sheds deterministically
        ..AdmissionPolicy::default()
    };
    let store = VerdictStore::in_memory();
    let precomputed = Query::new(
        gsb_engine::named_task("wsb", 4, None).unwrap(),
        Question::Classify,
    );
    store.insert(
        &precomputed,
        &precomputed.run_with(&EngineCache::new()).unwrap(),
    );
    let (handle, addr, _cache) = start(policy, store);
    let mut client = Client::connect(&addr).expect("connect");

    // Store hits bypass the gate entirely.
    let served = client.query(&precomputed).expect("store hit");
    assert_eq!(served.served_by, ServedBy::Store);

    // Engine-bound queries shed with the typed response.
    let uncached = Query::new(
        gsb_engine::named_task("wsb", 5, None).unwrap(),
        Question::Classify,
    );
    match client.query(&uncached) {
        Err(ClientError::Overloaded { limit, .. }) => assert_eq!(limit, 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let metrics = client.metrics().expect("metrics");
    assert!(metric(&metrics, &["server", "shed"]) >= 1.0);
    assert_eq!(metric(&metrics, &["server", "in_flight"]), 0.0);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn admission_rejects_structurally_oversized_questions() {
    let (handle, addr, _cache) = start(AdmissionPolicy::default(), VerdictStore::in_memory());
    let mut client = Client::connect(&addr).expect("connect");
    let spec = gsb_engine::named_task("wsb", 4, None).unwrap();
    let over = Query::new(spec, Question::SolvableInRounds { rounds: 99 });
    match client.query(&over) {
        Err(ClientError::Rejected { reason }) => assert!(reason.contains("rounds")),
        other => panic!("expected Rejected, got {other:?}"),
    }
    let metrics = client.metrics().expect("metrics");
    assert!(metric(&metrics, &["server", "rejected"]) >= 1.0);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn starved_deadlines_return_indeterminate_not_hung() {
    let policy = AdmissionPolicy {
        deadline_cap: Duration::from_nanos(1),
        ..AdmissionPolicy::default()
    };
    let (handle, addr, _cache) = start(policy, VerdictStore::in_memory());
    let mut client = Client::connect(&addr).expect("connect");
    let spec = gsb_engine::named_task("wsb", 4, None).unwrap();
    let starved = Query::new(spec, Question::SolvableInRounds { rounds: 2 });
    let served = client.query(&starved).expect("an answer, not a hang");
    assert_eq!(served.served_by, ServedBy::Engine);
    assert!(
        served.verdict.is_indeterminate(),
        "a 1 ns deadline cannot complete a round-2 search"
    );
    assert_eq!(
        metric(&client.metrics().unwrap(), &["store", "appended"]),
        0.0,
        "indeterminate verdicts are never stored"
    );
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn concurrent_mixed_traffic_stays_consistent() {
    let store = VerdictStore::in_memory();
    store
        .build_atlas(4, &EngineCache::new())
        .expect("precompute");
    let (handle, addr, _cache) = start(AdmissionPolicy::default(), store);

    let queries = zoo_classify_queries(4);
    let ok_count = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..4 {
            let addr = addr.clone();
            let queries = queries.clone();
            handles.push(s.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut ok = 0u64;
                for query in queries.iter().cycle().skip(t).take(20) {
                    let served = client.query(query).expect("query");
                    assert!(served.verdict.solvability.is_some());
                    ok += 1;
                }
                ok
            }));
        }
        // One hostile client in the mix.
        {
            let addr = addr.clone();
            handles.push(s.spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect raw");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for _ in 0..10 {
                    (&stream).write_all(b"definitely not json\n").unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    assert!(line.contains("error"));
                }
                0
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });
    assert_eq!(ok_count, 80);

    let mut client = Client::connect(&addr).expect("connect");
    let metrics = client.metrics().expect("metrics");
    let served = metric(&metrics, &["server", "served_store"])
        + metric(&metrics, &["server", "served_engine"]);
    assert_eq!(served, 80.0, "every verdict is accounted exactly once");
    assert_eq!(metric(&metrics, &["server", "errors"]), 10.0);
    assert_eq!(metric(&metrics, &["server", "in_flight"]), 0.0);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn solver_misses_append_to_the_disk_store_and_reload() {
    let dir = std::env::temp_dir().join(format!("gsb-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verdicts.jsonl");
    let _ = std::fs::remove_file(&path);

    let query = Query::new(
        gsb_engine::named_task("wsb", 6, None).unwrap(),
        Question::Classify,
    );
    {
        let store = VerdictStore::open(&path).expect("open store");
        let (handle, addr, _cache) = start(AdmissionPolicy::default(), store);
        let mut client = Client::connect(&addr).expect("connect");
        let first = client.query(&query).expect("first query");
        assert_eq!(first.served_by, ServedBy::Engine, "cold store misses");
        let second = client.query(&query).expect("second query");
        assert_eq!(second.served_by, ServedBy::Store, "the miss was appended");
        assert_eq!(first.verdict.solvability, second.verdict.solvability);
        client.shutdown().expect("shutdown");
        handle.join();
    }
    // The store file survives the shutdown and reloads cleanly.
    let reloaded = VerdictStore::open(&path).expect("reload");
    assert!(reloaded.lookup(&query).is_some(), "the verdict persisted");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn slow_loris_connections_are_reaped_not_leaked() {
    let cache = Arc::new(EngineCache::new());
    let config = ServerConfig {
        workers: 2,
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = Server::start(
        config,
        Arc::new(VerdictStore::in_memory()),
        Arc::clone(&cache),
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    // Two silent connections occupy the entire two-worker pool; the
    // idle reaper must evict them or the real client below starves.
    let loris: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(&addr).expect("connect loris"))
        .collect();
    for stream in &loris {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read until reap");
        assert_eq!(n, 0, "the server closes an idle connection");
    }

    let mut client = Client::connect(&addr).expect("connect after reap");
    client.ping().expect("workers were freed");
    let metrics = client.metrics().expect("metrics");
    assert!(metric(&metrics, &["server", "timeouts"]) >= 2.0);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn hot_reload_under_traffic_drops_nothing() {
    let dir = std::env::temp_dir().join(format!("gsb-reload-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verdicts.jsonl");

    let store = VerdictStore::open(&path).expect("open");
    store
        .build_atlas(4, &EngineCache::new())
        .expect("precompute");
    let (handle, addr, _cache) = start(AdmissionPolicy::default(), store);

    let queries = zoo_classify_queries(4);
    let ok_count = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..3 {
            let addr = addr.clone();
            let queries = queries.clone();
            handles.push(s.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut ok = 0u64;
                for query in queries.iter().cycle().skip(t).take(30) {
                    let served = client.query(query).expect("query across reload");
                    assert_eq!(served.served_by, ServedBy::Store);
                    ok += 1;
                }
                ok
            }));
        }
        // Reload mid-traffic — twice, to exercise repeated swaps.
        let mut admin = Client::connect(&addr).expect("connect admin");
        for _ in 0..2 {
            let (entries, _generation) = admin.reload(None).expect("hot reload");
            assert!(entries > 0);
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });
    assert_eq!(ok_count, 90, "no request was dropped by the swaps");

    let mut client = Client::connect(&addr).expect("connect");
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metric(&metrics, &["server", "reloads"]), 2.0);
    assert_eq!(metric(&metrics, &["server", "errors"]), 0.0);
    client.shutdown().expect("shutdown");
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn connect_retry_to_a_dead_port_reports_attempts_then_gives_up() {
    // Bind-then-drop yields a port that refuses connections.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let started = std::time::Instant::now();
    match Client::connect_retry(&dead, Duration::from_millis(300)) {
        Err(ClientError::RetryExhausted { attempts, last }) => {
            assert!(attempts >= 2, "bounded backoff keeps trying: {attempts}");
            assert!(matches!(*last, ClientError::Io(_)));
        }
        other => panic!("expected RetryExhausted, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(5),
        "the deadline bounds the retry loop: {elapsed:?}"
    );
}

/// Digs a numeric field out of the metrics payload.
fn metric(value: &Json, path: &[&str]) -> f64 {
    let mut cursor = value;
    for key in path {
        cursor = cursor
            .get(key)
            .unwrap_or_else(|| panic!("metrics field {path:?} missing"));
    }
    cursor
        .as_f64()
        .unwrap_or_else(|| panic!("metrics field {path:?} is not a number"))
}
