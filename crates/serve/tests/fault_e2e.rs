//! The seeded end-to-end fault test: torn writes during store appends,
//! dropped connections and a stalled read under live client traffic, a
//! mid-serve compaction, and a hot reload — every request must resolve
//! to a typed outcome, the recovered store must round-trip
//! byte-identically, and the same seed must reproduce the same fault
//! schedule.
//!
//! Everything lives in ONE test: `fault::io_poll` is process-global,
//! so a second concurrently running server in this binary could
//! consume fires armed here.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gsb_core::govern::fault::{self, IoFaultAction};
use gsb_engine::{EngineCache, Json, Query, Question, Verdict};
use gsb_serve::proto::canonical_key;
use gsb_serve::{
    Client, RetryPolicy, SelfHealingClient, ServedBy, Server, ServerConfig, VerdictStore,
};

const SEED: u64 = 0x0f41_11e2;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsb-fault-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Distinct-key query/verdict pairs: classify plus witness over the
/// small zoo. The first `hot` pairs become precomputed store hits; the
/// rest feed the torn-write countdown.
fn seed_pairs(cache: &EngineCache) -> Vec<(Query, Verdict)> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for question in [Question::Classify, Question::NoCommWitness] {
        for n in 2..=4 {
            for entry in gsb_core::zoo::catalog(n).unwrap() {
                let query = Query::new(entry.spec, question.clone());
                if !seen.insert(canonical_key(&query)) {
                    continue;
                }
                let verdict = query.run_with(cache).unwrap();
                out.push((query, verdict));
            }
        }
    }
    assert!(out.len() >= 14, "need 14+ distinct keys, got {}", out.len());
    out
}

fn metric(value: &Json, path: &[&str]) -> f64 {
    let mut cursor = value;
    for key in path {
        cursor = cursor
            .get(key)
            .unwrap_or_else(|| panic!("metrics field {path:?} missing"));
    }
    cursor
        .as_f64()
        .unwrap_or_else(|| panic!("metrics field {path:?} is not a number"))
}

#[test]
fn seeded_faults_compaction_and_reload_resolve_every_request() {
    let dir = temp_dir();
    let path = dir.join("verdicts.jsonl");
    let cache = EngineCache::new();
    let pairs = seed_pairs(&cache);
    let (hot, burn) = pairs.split_at(6);
    {
        let store = VerdictStore::open(&path).unwrap();
        for (query, verdict) in hot {
            assert!(store.insert(query, verdict));
        }
    }
    let config = ServerConfig {
        workers: 8,
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let handle = Server::start(
        config,
        Arc::new(VerdictStore::open(&path).unwrap()),
        Arc::new(EngineCache::new()),
    )
    .expect("bind");
    let addr = handle.addr().to_string();

    // Determinism: the schedule is a pure function of the seed.
    assert_eq!(fault::io_plan(SEED, 3), fault::io_plan(SEED, 3));
    assert_ne!(fault::io_plan(SEED, 3), fault::io_plan(SEED ^ 1, 3));

    // Phase 1 — a torn write lands mid-append. The appends go through
    // the server's own store Arc; the in-memory entry survives the
    // torn disk line, and the later compaction re-persists it.
    let burned = {
        let guard = fault::arm_io(SEED, IoFaultAction::TornWrite, 1);
        let store = handle.store();
        let mut burned = 0;
        for (query, verdict) in burn {
            assert!(store.insert(query, verdict));
            burned += 1;
            if fault::io_fired() >= 1 {
                break;
            }
        }
        assert_eq!(fault::io_fired(), 1, "the torn write must fire");
        drop(guard);
        burned
    };
    // The torn line (and the line the next append glued onto it) are
    // skipped on reload — never served, never fatal.
    {
        let check = VerdictStore::open(&path).unwrap();
        assert!(check.stats().torn_skipped >= 1, "the torn line is visible");
        for (query, _) in hot {
            assert!(check.lookup(query).is_some());
        }
    }

    // Phase 2 — three dropped connections under a fleet of
    // self-healing clients; every request must still resolve Ok.
    let fleet_retries = {
        let guard = fault::arm_io(SEED ^ 1, IoFaultAction::DropConnection, 3);
        let outcomes: Vec<(u64, u64)> = std::thread::scope(|s| {
            (0..3u64)
                .map(|t| {
                    let addr = addr.clone();
                    let hot = hot.to_vec();
                    s.spawn(move || {
                        let policy = RetryPolicy {
                            seed: SEED + t,
                            ..RetryPolicy::default()
                        };
                        let mut client = SelfHealingClient::new(addr, policy);
                        let mut ok = 0u64;
                        for (query, _) in hot.iter().cycle().take(12) {
                            let served = client
                                .query(query)
                                .unwrap_or_else(|e| panic!("client {t}: drops must heal, got {e}"));
                            assert_eq!(served.served_by, ServedBy::Store);
                            ok += 1;
                        }
                        (ok, client.retries())
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(outcomes.iter().map(|(ok, _)| ok).sum::<u64>(), 36);
        // Drain any remaining fires so the count is exact: keep one
        // retrying client talking until all three drops landed.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut drain = SelfHealingClient::new(addr.clone(), RetryPolicy::default());
        while fault::io_fired() < 3 && Instant::now() < deadline {
            drain.query(&hot[0].0).expect("drain query heals");
        }
        let fired = fault::io_fired();
        drop(guard);
        assert_eq!(fired, 3, "exactly the armed number of drops fire");
        outcomes.iter().map(|(_, r)| r).sum::<u64>() + drain.retries()
    };

    // Phase 3 — one stalled read: the slow-loris reaper must free the
    // worker (counted in `timeouts`) and the client must heal.
    {
        let guard = fault::arm_io(SEED ^ 2, IoFaultAction::StallRead, 1);
        let mut client = SelfHealingClient::new(addr.clone(), RetryPolicy::default());
        let deadline = Instant::now() + Duration::from_secs(8);
        while fault::io_fired() < 1 && Instant::now() < deadline {
            client.query(&hot[1].0).expect("stall must heal, not hang");
        }
        assert_eq!(fault::io_fired(), 1, "the stall must fire");
        // One more query rides out the stalled connection's reap.
        client.query(&hot[2].0).expect("post-stall query heals");
        drop(guard);
    }

    // A positive attempt counter is observable server-side even when
    // the fault schedule happened to retry only idle connections.
    let mut client = Client::connect(&addr).expect("connect");
    client
        .query_attempt(&hot[0].0, 1)
        .expect("stamped retry serves");

    // Phase 4 — a compaction in the middle of live traffic.
    let report = std::thread::scope(|s| {
        let traffic = {
            let addr = addr.clone();
            let hot = hot.to_vec();
            s.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for (query, _) in hot.iter().cycle().take(20) {
                    let served = client.query(query).expect("query during compaction");
                    assert_eq!(served.served_by, ServedBy::Store);
                }
            })
        };
        let report = handle.store().compact().expect("mid-serve compaction");
        traffic.join().unwrap();
        report
    });
    assert_eq!(report.generation, 1);
    assert_eq!(report.entries, hot.len() + burned);

    // Phase 5 — hot reload: the store Arc is swapped, requests keep
    // being answered, nothing is dropped.
    let before = handle.store();
    let (entries, generation) = client.reload(None).expect("hot reload");
    assert_eq!(entries as usize, hot.len() + burned);
    assert_eq!(generation, 1, "reload picked up the compacted generation");
    assert!(
        !Arc::ptr_eq(&before, &handle.store()),
        "reload swapped the served store"
    );
    for (query, _) in hot {
        let served = client.query(query).expect("post-reload query");
        assert_eq!(served.served_by, ServedBy::Store);
    }

    // Exact accounting on one metrics line.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metric(&metrics, &["server", "reloads"]), 1.0);
    assert!(metric(&metrics, &["server", "compactions"]) >= 1.0);
    assert!(
        metric(&metrics, &["server", "timeouts"]) >= 1.0,
        "the stalled connection was reaped"
    );
    assert!(metric(&metrics, &["server", "retries_observed"]) >= 1.0);
    assert!(
        fleet_retries <= 3 + 1,
        "three drops cause at most four retries"
    );

    client.shutdown().expect("shutdown");
    handle.join();

    // The recovered store round-trips byte-identically.
    let recovered = VerdictStore::open(&path).unwrap();
    assert_eq!(recovered.stats().entries, hot.len() + burned);
    for (query, _) in pairs.iter().take(hot.len() + burned) {
        let served = recovered.lookup(query).expect("entry recovered");
        let verdict = Verdict::from_json(&served).expect("recovered verdicts parse");
        assert_eq!(
            verdict.to_json_value().render_compact(),
            *served,
            "recovered verdicts round-trip byte-identically"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
