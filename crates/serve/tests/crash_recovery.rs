//! Property-style crash-recovery tests: the store file (and its
//! generation siblings) is truncated at every byte offset and corrupted
//! at every byte position, and reload must never panic, never serve a
//! malformed verdict, and preserve exactly the entries whose lines were
//! complete before the cut.

use std::path::PathBuf;

use gsb_engine::{EngineCache, Query, Question, Verdict};
use gsb_serve::proto::canonical_key;
use gsb_serve::VerdictStore;

/// The append log's header line (must match the store's).
const HEADER: &str = "{\"kind\":\"gsb-verdict-store\",\"version\":1}";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gsb-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Cheap solved verdicts over distinct canonical keys (zoo synonyms
/// collapse to one key, so dedup).
fn seed_verdicts(count: usize) -> Vec<(Query, Verdict)> {
    let cache = EngineCache::new();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    'outer: for n in 2..=4 {
        for entry in gsb_core::zoo::catalog(n).unwrap() {
            let query = Query::new(entry.spec, Question::Classify);
            if !seen.insert(canonical_key(&query)) {
                continue;
            }
            let verdict = query.run_with(&cache).unwrap();
            out.push((query, verdict));
            if out.len() == count {
                break 'outer;
            }
        }
    }
    assert_eq!(out.len(), count, "not enough distinct zoo tasks");
    out
}

/// Asserts the store-hit invariant: whatever the store serves must
/// parse as a verdict and re-render byte-identically.
fn assert_round_trips(served: &str) {
    let verdict = Verdict::from_json(served).expect("served verdicts always parse");
    assert_eq!(
        verdict.to_json_value().render_compact(),
        served,
        "served verdicts round-trip byte-identically"
    );
}

#[test]
fn log_truncated_at_every_byte_preserves_entries_before_the_cut() {
    let dir = temp_dir("truncate");
    let path = dir.join("verdicts.jsonl");
    let seeds = seed_verdicts(4);
    {
        let store = VerdictStore::open(&path).unwrap();
        for (query, verdict) in &seeds {
            assert!(store.insert(query, verdict));
        }
    }
    let pristine = std::fs::read(&path).unwrap();
    assert!(pristine.len() > HEADER.len() + 1);

    for cut in 0..=pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        if cut > 0 && cut < HEADER.len() {
            // A cut inside the header leaves an unrecognizable file:
            // open must refuse it cleanly, never panic.
            assert!(
                VerdictStore::open(&path).is_err(),
                "a torn header (cut {cut}) must be refused"
            );
            continue;
        }
        let store = VerdictStore::open(&path)
            .unwrap_or_else(|e| panic!("reload after cut {cut} failed: {e}"));
        // An entry survives iff its full line text sits before the cut
        // — the trailing newline itself is not needed (a final partial
        // line still parses when its text is complete).
        let line_text_ends: Vec<usize> = pristine
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(at, _)| at)
            .collect();
        let expected = line_text_ends[1..] // [0] ends the header
            .iter()
            .filter(|&&text_end| text_end <= cut)
            .count();
        let stats = store.stats();
        assert_eq!(
            stats.entries, expected,
            "cut {cut}: complete lines before the cut survive, no more"
        );
        for (i, (query, _)) in seeds.iter().enumerate() {
            match store.lookup(query) {
                Some(served) if i < expected => assert_round_trips(&served),
                None if i >= expected => {}
                other => panic!("cut {cut}, seed {i}: unexpected lookup {other:?}"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn log_corrupted_at_every_byte_never_serves_garbage() {
    let dir = temp_dir("corrupt");
    let path = dir.join("verdicts.jsonl");
    let seeds = seed_verdicts(3);
    {
        let store = VerdictStore::open(&path).unwrap();
        for (query, verdict) in &seeds {
            assert!(store.insert(query, verdict));
        }
    }
    let pristine = std::fs::read(&path).unwrap();

    for at in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[at] = bytes[at].wrapping_add(13);
        std::fs::write(&path, &bytes).unwrap();
        // A corrupted header is refused; anything else loads, dropping
        // at most the damaged line and serving only intact verdicts.
        let Ok(store) = VerdictStore::open(&path) else {
            continue;
        };
        let stats = store.stats();
        assert!(
            stats.entries <= seeds.len(),
            "byte {at}: corruption cannot invent entries"
        );
        assert!(
            stats.entries + 2 >= seeds.len(),
            "byte {at}: one flipped byte damages at most two lines \
             (two, when the byte was the newline joining them)"
        );
        for (query, _) in &seeds {
            if let Some(served) = store.lookup(query) {
                assert_round_trips(&served);
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn generation_truncated_at_every_byte_falls_back_to_the_previous_one() {
    let dir = temp_dir("gen-fallback");
    let path = dir.join("verdicts.jsonl");
    let seeds = seed_verdicts(3);
    {
        let store = VerdictStore::open(&path).unwrap();
        for (query, verdict) in &seeds[..2] {
            assert!(store.insert(query, verdict));
        }
        store.compact().unwrap(); // generation 1: two entries
        assert!(store.insert(&seeds[2].0, &seeds[2].1));
        store.compact().unwrap(); // generation 2: all three
    }
    let gen2_path = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".g000002");
        PathBuf::from(name)
    };
    let pristine = std::fs::read(&gen2_path).unwrap();

    for cut in 0..=pristine.len() {
        std::fs::write(&gen2_path, &pristine[..cut]).unwrap();
        let store = VerdictStore::open(&path)
            .unwrap_or_else(|e| panic!("reload after generation cut {cut} failed: {e}"));
        let stats = store.stats();
        // The file ends with the manifest's newline; losing only that
        // newline keeps the manifest text (and the generation) intact.
        if cut >= pristine.len() - 1 {
            assert_eq!((stats.generation, stats.entries), (2, 3));
        } else {
            // Any proper prefix loses the verifying manifest: reload
            // must fall back to the older complete generation.
            assert_eq!(
                (stats.generation, stats.entries),
                (1, 2),
                "cut {cut}: torn generation 2 must be skipped"
            );
            assert!(stats.torn_skipped >= 1);
        }
        for (i, (query, _)) in seeds.iter().enumerate() {
            match store.lookup(query) {
                Some(served) => assert_round_trips(&served),
                None => assert!(
                    i == 2 && cut < pristine.len() - 1,
                    "cut {cut}: only the generation-2-only entry may vanish"
                ),
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
