//! A small blocking client for the serve wire protocol — the consumer
//! used by the CLI's `--connect` paths, the integration tests, and the
//! serve benchmark — plus [`SelfHealingClient`], the retrying wrapper
//! that survives dropped connections and load shedding.
//!
//! Retry discipline: capped exponential backoff with decorrelated
//! jitter (each sleep is drawn from `[base, prev*3]`, capped), a total
//! sleep budget so a dead server fails in bounded time, and the
//! server's optional `retry_after_ms` hint as a floor. The jitter
//! stream is seeded, so a test re-running the same seed sees the same
//! sleep schedule.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use gsb_engine::{Json, Query, Verdict};

use crate::proto::render_query_attempt;

/// Hard cap on one response line (atlas verdicts are large, but not
/// this large).
const MAX_RESPONSE_LINE: usize = 64 << 20; // 64 MiB

/// Client-side failures, separating transport problems from the
/// server's typed refusals.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not parse as a protocol response.
    Protocol(String),
    /// The server shed this request under load.
    Overloaded {
        /// Queries in flight when the request was shed.
        in_flight: u64,
        /// The server's in-flight limit.
        limit: u64,
        /// The server's back-off hint, when it sent one.
        retry_after_ms: Option<u64>,
    },
    /// A retry loop gave up: every attempt failed (or the sleep budget
    /// ran out) and `last` is the final failure.
    RetryExhausted {
        /// Attempts made before giving up.
        attempts: u64,
        /// The error from the final attempt.
        last: Box<ClientError>,
    },
    /// The admission policy refused the question outright.
    Rejected {
        /// The server's human-readable reason.
        reason: String,
    },
    /// The server answered with an `error` response (malformed request
    /// or engine failure).
    Server {
        /// The server's error details.
        details: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve transport error: {e}"),
            ClientError::Protocol(details) => write!(f, "malformed server response: {details}"),
            ClientError::Overloaded {
                in_flight,
                limit,
                retry_after_ms,
            } => {
                write!(f, "server overloaded ({in_flight}/{limit} in flight)")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, ", retry after {ms}ms")?;
                }
                Ok(())
            }
            ClientError::RetryExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::Rejected { reason } => write!(f, "request rejected: {reason}"),
            ClientError::Server { details } => write!(f, "server error: {details}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Who answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The verdict store (an index lookup, no solver work).
    Store,
    /// The engine (a fresh solve, possibly cached for next time).
    Engine,
}

/// A verdict plus where it came from.
#[derive(Debug, Clone)]
pub struct Served {
    /// The parsed, re-checkable verdict.
    pub verdict: Verdict,
    /// Which layer answered.
    pub served_by: ServedBy,
}

/// A blocking JSON-lines client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            buf: Vec::new(),
            next_id: 0,
        })
    }

    /// Retries [`Client::connect`] until `wait` elapses — the readiness
    /// probe used by CI right after spawning `gsb serve`. Sleeps with
    /// bounded backoff and jitter (not a fixed wait), so a fleet of
    /// probes does not hammer the socket in lockstep.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::RetryExhausted`] wrapping the last
    /// connection error (and the attempt count) when the deadline
    /// passes.
    pub fn connect_retry(addr: &str, wait: Duration) -> Result<Client, ClientError> {
        let deadline = Instant::now() + wait;
        // Jitter seeded from the address so two probes to different
        // servers decorrelate, yet each probe is reproducible.
        let mut state = splitmix64(addr.bytes().fold(0u64, |h, b| splitmix64(h ^ u64::from(b))));
        let mut sleep = Duration::from_millis(5);
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => {
                    return Err(ClientError::RetryExhausted {
                        attempts,
                        last: Box::new(e),
                    })
                }
                Err(_) => {
                    state = splitmix64(state);
                    let span = (sleep.as_millis() as u64).saturating_mul(3).max(1);
                    sleep =
                        (Duration::from_millis(5 + state % span)).min(Duration::from_millis(250));
                    std::thread::sleep(
                        sleep.min(deadline.saturating_duration_since(Instant::now())),
                    );
                }
            }
        }
    }

    /// Round-trips a `ping`, returning the server's protocol version.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol failures.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let value = self.round_trip("{\"kind\":\"ping\"}")?;
        match value.get("kind").and_then(Json::as_str) {
            Some("pong") => Ok(value
                .get("protocol")
                .and_then(Json::as_f64)
                .map_or(0, |x| x as u64)),
            _ => Err(unexpected(&value)),
        }
    }

    /// Executes `query` on the server.
    ///
    /// # Errors
    ///
    /// Returns the server's typed refusal (`Overloaded`, `Rejected`,
    /// `Server`) or a transport/protocol failure.
    pub fn query(&mut self, query: &Query) -> Result<Served, ClientError> {
        self.query_attempt(query, 0)
    }

    /// [`Client::query`] with an explicit retry counter stamped on the
    /// wire (the server tallies positive attempts in
    /// `retries_observed`).
    ///
    /// # Errors
    ///
    /// Returns the server's typed refusal (`Overloaded`, `Rejected`,
    /// `Server`) or a transport/protocol failure.
    pub fn query_attempt(&mut self, query: &Query, attempt: u64) -> Result<Served, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let value = self.round_trip(&render_query_attempt(query, Some(id), attempt))?;
        match value.get("kind").and_then(Json::as_str) {
            Some("verdict") => {
                let served_by = match value.get("served_by").and_then(Json::as_str) {
                    Some("store") => ServedBy::Store,
                    Some("engine") => ServedBy::Engine,
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "unknown served_by {other:?}"
                        )))
                    }
                };
                let verdict = value
                    .get("verdict")
                    .ok_or_else(|| ClientError::Protocol("verdict payload missing".into()))?;
                let verdict = Verdict::from_json(&verdict.render_compact())
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Ok(Served { verdict, served_by })
            }
            _ => Err(unexpected(&value)),
        }
    }

    /// Fetches the server's metrics snapshot as a JSON value.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol failures.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let value = self.round_trip("{\"kind\":\"metrics\"}")?;
        match value.get("kind").and_then(Json::as_str) {
            Some("metrics") => Ok(value),
            _ => Err(unexpected(&value)),
        }
    }

    /// Asks the server to hot-swap its verdict store from disk.
    /// `path` of `None` re-opens the store file the server already
    /// serves. Returns `(entries, generation)` of the fresh store.
    ///
    /// # Errors
    ///
    /// Returns the server's `error` response (e.g. for an in-memory
    /// store with no path) or a transport/protocol failure.
    pub fn reload(&mut self, path: Option<&str>) -> Result<(u64, u64), ClientError> {
        let request = match path {
            Some(p) => Json::Obj(vec![
                ("kind".into(), Json::Str("reload".into())),
                ("path".into(), Json::Str(p.into())),
            ])
            .render_compact(),
            None => "{\"kind\":\"reload\"}".to_string(),
        };
        let value = self.round_trip(&request)?;
        match value.get("kind").and_then(Json::as_str) {
            Some("reloaded") => {
                let num = |name: &str| {
                    value
                        .get(name)
                        .and_then(Json::as_f64)
                        .map_or(0, |x| x as u64)
                };
                Ok((num("entries"), num("generation")))
            }
            _ => Err(unexpected(&value)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let value = self.round_trip("{\"kind\":\"shutdown\"}")?;
        match value.get("kind").and_then(Json::as_str) {
            Some("shutting-down") => Ok(()),
            _ => Err(unexpected(&value)),
        }
    }

    /// Sends one request line, reads one response line, parses it.
    fn round_trip(&mut self, line: &str) -> Result<Json, ClientError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let line = self.read_line()?;
        Json::parse(&line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Reads up to the next LF, bounded by [`MAX_RESPONSE_LINE`].
    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(at) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=at).collect();
                return String::from_utf8(line[..line.len() - 1].to_vec())
                    .map_err(|e| ClientError::Protocol(e.to_string()));
            }
            if self.buf.len() > MAX_RESPONSE_LINE {
                return Err(ClientError::Protocol(
                    "response line exceeds the 64 MiB cap".into(),
                ));
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                )));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// The retry discipline of a [`SelfHealingClient`]: capped exponential
/// backoff with decorrelated jitter, bounded by an attempt count and a
/// total sleep budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Give up after this many attempts (including the first).
    pub max_attempts: u64,
    /// The floor of every backoff sleep.
    pub base: Duration,
    /// The ceiling of every backoff sleep.
    pub cap: Duration,
    /// Total sleep budget across all retries; once spent, the next
    /// failure is final.
    pub budget: Duration,
    /// Seed of the jitter stream — same seed, same sleep schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            budget: Duration::from_secs(5),
            seed: 0x5e1f_4ea1,
        }
    }
}

impl RetryPolicy {
    /// The next decorrelated-jitter sleep: drawn from
    /// `[base, prev * 3]`, capped, floored by the server's
    /// `retry_after_ms` hint when one arrived.
    fn next_sleep(&self, state: &mut u64, prev: Duration, hint: Option<u64>) -> Duration {
        *state = splitmix64(*state);
        let span = (prev.as_millis() as u64).saturating_mul(3).max(1);
        let mut sleep = (self.base + Duration::from_millis(*state % span)).min(self.cap);
        if let Some(ms) = hint {
            sleep = sleep.max(Duration::from_millis(ms));
        }
        sleep
    }
}

/// A [`Client`] wrapper that retries transient failures — load
/// shedding and transport errors (with a reconnect) — and fails fast on
/// definitive answers (`Rejected`, `Server`, `Protocol`). Every retry
/// re-sends the query with an incremented `attempt` counter so the
/// server's `retries_observed` metric sees it.
#[derive(Debug)]
pub struct SelfHealingClient {
    addr: String,
    policy: RetryPolicy,
    client: Option<Client>,
    retries: u64,
}

impl SelfHealingClient {
    /// Wraps `addr` with `policy`. Connects lazily on first use, so
    /// construction never fails.
    #[must_use]
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> SelfHealingClient {
        SelfHealingClient {
            addr: addr.into(),
            policy,
            client: None,
            retries: 0,
        }
    }

    /// Total retries this client has performed (excluding first tries).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Executes `query`, retrying `Overloaded` responses and transport
    /// failures (the latter with a fresh connection) under the policy's
    /// attempt and sleep budgets.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::RetryExhausted`] once the budgets are
    /// spent, or the server's definitive refusal (`Rejected`,
    /// `Server`, `Protocol`) immediately.
    pub fn query(&mut self, query: &Query) -> Result<Served, ClientError> {
        let mut state = splitmix64(self.policy.seed);
        let mut prev_sleep = self.policy.base;
        let mut slept = Duration::ZERO;
        let mut attempts = 0u64;
        loop {
            let outcome = self
                .connected()
                .and_then(|c| c.query_attempt(query, attempts));
            attempts += 1;
            let failure = match outcome {
                Ok(served) => return Ok(served),
                // Definitive answers: retrying cannot change them.
                Err(
                    e @ (ClientError::Rejected { .. }
                    | ClientError::Server { .. }
                    | ClientError::Protocol(_)),
                ) => return Err(e),
                Err(e) => e,
            };
            if matches!(
                failure,
                ClientError::Io(_) | ClientError::RetryExhausted { .. }
            ) {
                // The connection is suspect; rebuild it on retry.
                self.client = None;
            }
            let hint = match &failure {
                ClientError::Overloaded { retry_after_ms, .. } => *retry_after_ms,
                _ => None,
            };
            let sleep = self.policy.next_sleep(&mut state, prev_sleep, hint);
            if attempts >= self.policy.max_attempts || slept + sleep > self.policy.budget {
                return Err(ClientError::RetryExhausted {
                    attempts,
                    last: Box::new(failure),
                });
            }
            std::thread::sleep(sleep);
            slept += sleep;
            prev_sleep = sleep;
            self.retries += 1;
        }
    }

    /// The live connection, dialing a fresh one when needed.
    fn connected(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            self.client = Some(Client::connect(&self.addr)?);
        }
        Ok(self.client.as_mut().expect("connection just established"))
    }
}

/// splitmix64 — the same seed scrambler the fault plans use, so a
/// seeded retry schedule is reproducible run over run.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps the server's typed refusals onto [`ClientError`] variants.
fn unexpected(value: &Json) -> ClientError {
    match value.get("kind").and_then(Json::as_str) {
        Some("overloaded") => ClientError::Overloaded {
            in_flight: value
                .get("in_flight")
                .and_then(Json::as_f64)
                .map_or(0, |x| x as u64),
            limit: value
                .get("limit")
                .and_then(Json::as_f64)
                .map_or(0, |x| x as u64),
            retry_after_ms: value
                .get("retry_after_ms")
                .and_then(Json::as_f64)
                .map(|x| x as u64),
        },
        Some("rejected") => ClientError::Rejected {
            reason: value
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string(),
        },
        Some("error") => ClientError::Server {
            details: value
                .get("details")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string(),
        },
        other => ClientError::Protocol(format!("unexpected response kind {other:?}")),
    }
}
