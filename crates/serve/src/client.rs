//! A small blocking client for the serve wire protocol — the consumer
//! used by the CLI's `--connect` paths, the integration tests, and the
//! serve benchmark.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use gsb_engine::{Json, Query, Verdict};

use crate::proto::render_query;

/// Hard cap on one response line (atlas verdicts are large, but not
/// this large).
const MAX_RESPONSE_LINE: usize = 64 << 20; // 64 MiB

/// Client-side failures, separating transport problems from the
/// server's typed refusals.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not parse as a protocol response.
    Protocol(String),
    /// The server shed this request under load.
    Overloaded {
        /// Queries in flight when the request was shed.
        in_flight: u64,
        /// The server's in-flight limit.
        limit: u64,
    },
    /// The admission policy refused the question outright.
    Rejected {
        /// The server's human-readable reason.
        reason: String,
    },
    /// The server answered with an `error` response (malformed request
    /// or engine failure).
    Server {
        /// The server's error details.
        details: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve transport error: {e}"),
            ClientError::Protocol(details) => write!(f, "malformed server response: {details}"),
            ClientError::Overloaded { in_flight, limit } => {
                write!(f, "server overloaded ({in_flight}/{limit} in flight)")
            }
            ClientError::Rejected { reason } => write!(f, "request rejected: {reason}"),
            ClientError::Server { details } => write!(f, "server error: {details}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Who answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The verdict store (an index lookup, no solver work).
    Store,
    /// The engine (a fresh solve, possibly cached for next time).
    Engine,
}

/// A verdict plus where it came from.
#[derive(Debug, Clone)]
pub struct Served {
    /// The parsed, re-checkable verdict.
    pub verdict: Verdict,
    /// Which layer answered.
    pub served_by: ServedBy,
}

/// A blocking JSON-lines client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            buf: Vec::new(),
            next_id: 0,
        })
    }

    /// Retries [`Client::connect`] until `wait` elapses — the readiness
    /// probe used by CI right after spawning `gsb serve`.
    ///
    /// # Errors
    ///
    /// Returns the last connection error when the deadline passes.
    pub fn connect_retry(addr: &str, wait: Duration) -> Result<Client, ClientError> {
        let deadline = Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Round-trips a `ping`, returning the server's protocol version.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol failures.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let value = self.round_trip("{\"kind\":\"ping\"}")?;
        match value.get("kind").and_then(Json::as_str) {
            Some("pong") => Ok(value
                .get("protocol")
                .and_then(Json::as_f64)
                .map_or(0, |x| x as u64)),
            _ => Err(unexpected(&value)),
        }
    }

    /// Executes `query` on the server.
    ///
    /// # Errors
    ///
    /// Returns the server's typed refusal (`Overloaded`, `Rejected`,
    /// `Server`) or a transport/protocol failure.
    pub fn query(&mut self, query: &Query) -> Result<Served, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let value = self.round_trip(&render_query(query, Some(id)))?;
        match value.get("kind").and_then(Json::as_str) {
            Some("verdict") => {
                let served_by = match value.get("served_by").and_then(Json::as_str) {
                    Some("store") => ServedBy::Store,
                    Some("engine") => ServedBy::Engine,
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "unknown served_by {other:?}"
                        )))
                    }
                };
                let verdict = value
                    .get("verdict")
                    .ok_or_else(|| ClientError::Protocol("verdict payload missing".into()))?;
                let verdict = Verdict::from_json(&verdict.render_compact())
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Ok(Served { verdict, served_by })
            }
            _ => Err(unexpected(&value)),
        }
    }

    /// Fetches the server's metrics snapshot as a JSON value.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol failures.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let value = self.round_trip("{\"kind\":\"metrics\"}")?;
        match value.get("kind").and_then(Json::as_str) {
            Some("metrics") => Ok(value),
            _ => Err(unexpected(&value)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let value = self.round_trip("{\"kind\":\"shutdown\"}")?;
        match value.get("kind").and_then(Json::as_str) {
            Some("shutting-down") => Ok(()),
            _ => Err(unexpected(&value)),
        }
    }

    /// Sends one request line, reads one response line, parses it.
    fn round_trip(&mut self, line: &str) -> Result<Json, ClientError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let line = self.read_line()?;
        Json::parse(&line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Reads up to the next LF, bounded by [`MAX_RESPONSE_LINE`].
    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(at) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=at).collect();
                return String::from_utf8(line[..line.len() - 1].to_vec())
                    .map_err(|e| ClientError::Protocol(e.to_string()));
            }
            if self.buf.len() > MAX_RESPONSE_LINE {
                return Err(ClientError::Protocol(
                    "response line exceeds the 64 MiB cap".into(),
                ));
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                )));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Maps the server's typed refusals onto [`ClientError`] variants.
fn unexpected(value: &Json) -> ClientError {
    match value.get("kind").and_then(Json::as_str) {
        Some("overloaded") => ClientError::Overloaded {
            in_flight: value
                .get("in_flight")
                .and_then(Json::as_f64)
                .map_or(0, |x| x as u64),
            limit: value
                .get("limit")
                .and_then(Json::as_f64)
                .map_or(0, |x| x as u64),
        },
        Some("rejected") => ClientError::Rejected {
            reason: value
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string(),
        },
        Some("error") => ClientError::Server {
            details: value
                .get("details")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string(),
        },
        other => ClientError::Protocol(format!("unexpected response kind {other:?}")),
    }
}
