//! Lock-free server metrics: request counters, an in-flight gauge, and
//! per-question latency histograms with power-of-two microsecond
//! buckets (p50/p95/p99 read out of cumulative bucket counts).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use gsb_engine::Json;

/// Number of power-of-two buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs, the last bucket is open-ended (≥ ~34 minutes).
const BUCKETS: usize = 32;

/// The question labels tracked by the per-question histograms, in the
/// order reported by the metrics response.
pub const QUESTION_LABELS: [&str; 5] = [
    "classify",
    "solvable-in-rounds",
    "no-comm-witness",
    "certificate",
    "atlas",
];

/// A lock-free latency histogram over power-of-two µs buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().max(1);
        let bucket = (u128::BITS - 1 - micros.leading_zeros()).min(BUCKETS as u32 - 1);
        self.buckets[bucket as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper µs bound of the bucket holding quantile `q` (0 < q ≤ 1);
    /// `None` when the histogram is empty. Resolution is one power of
    /// two — coarse, but monotone and allocation-free on the hot path.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        None
    }

    /// `{count, p50_us, p95_us, p99_us}` for the metrics response.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let quantile = |q| {
            self.quantile_us(q)
                .map_or(Json::Null, |us| Json::Num(us as f64))
        };
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count() as f64)),
            ("p50_us".into(), quantile(0.50)),
            ("p95_us".into(), quantile(0.95)),
            ("p99_us".into(), quantile(0.99)),
        ])
    }
}

/// All counters of a running server. Shared by every worker thread;
/// everything is a relaxed atomic — metrics snapshots are allowed to be
/// slightly torn across fields, individual counters are never lost.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Queries answered from the verdict store.
    pub served_store: AtomicU64,
    /// Queries answered by running the engine.
    pub served_engine: AtomicU64,
    /// Queries shed with an `overloaded` response.
    pub shed: AtomicU64,
    /// Queries rejected by the admission policy.
    pub rejected: AtomicU64,
    /// Malformed requests and engine errors answered with `error`.
    pub errors: AtomicU64,
    /// Connections reaped by the idle/write timeout (slow-loris guard).
    pub timeouts: AtomicU64,
    /// Hot reloads completed via the `reload` wire message.
    pub reloads: AtomicU64,
    /// Store compactions observed (manual or auto-triggered).
    pub compactions: AtomicU64,
    /// Queries that arrived with a positive `attempt` counter — client
    /// retries as seen from the server side.
    pub retries_observed: AtomicU64,
    /// Queries currently executing in the engine (gauge).
    pub in_flight: AtomicUsize,
    /// Per-question latency histograms, indexed like [`QUESTION_LABELS`].
    pub latency: [Histogram; QUESTION_LABELS.len()],
}

impl ServerMetrics {
    /// The histogram tracking `label` (a [`Question::label`] value);
    /// unknown labels fall back to the first slot.
    ///
    /// [`Question::label`]: gsb_engine::Question::label
    #[must_use]
    pub fn histogram(&self, label: &str) -> &Histogram {
        let at = QUESTION_LABELS
            .iter()
            .position(|&l| l == label)
            .unwrap_or(0);
        &self.latency[at]
    }

    /// The server-counter block of the metrics response.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let num = |x: &AtomicU64| Json::Num(x.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("connections".into(), num(&self.connections)),
            ("served_store".into(), num(&self.served_store)),
            ("served_engine".into(), num(&self.served_engine)),
            ("shed".into(), num(&self.shed)),
            ("rejected".into(), num(&self.rejected)),
            ("errors".into(), num(&self.errors)),
            ("timeouts".into(), num(&self.timeouts)),
            ("reloads".into(), num(&self.reloads)),
            ("compactions".into(), num(&self.compactions)),
            ("retries_observed".into(), num(&self.retries_observed)),
            (
                "in_flight".into(),
                Json::Num(self.in_flight.load(Ordering::Relaxed) as f64),
            ),
            (
                "latency".into(),
                Json::Obj(
                    QUESTION_LABELS
                        .iter()
                        .zip(&self.latency)
                        .map(|(label, histogram)| ((*label).into(), histogram.to_json_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket [2, 4)
        }
        h.record(Duration::from_micros(1000)); // bucket [512, 1024)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), Some(4));
        assert_eq!(h.quantile_us(0.99), Some(4));
        assert_eq!(h.quantile_us(1.0), Some(1024));
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), Some(2));
    }

    #[test]
    fn histograms_key_by_question_label() {
        let metrics = ServerMetrics::default();
        metrics.histogram("atlas").record(Duration::from_micros(10));
        assert_eq!(metrics.latency[4].count(), 1);
        assert_eq!(metrics.histogram("no-such-label").count(), 0);
    }
}
