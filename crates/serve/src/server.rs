//! The hand-rolled serve loop: a `TcpListener` accept thread feeding a
//! bounded worker pool over a `sync_channel`, JSON-lines framing per
//! connection, and cooperative shutdown via an atomic flag plus a
//! self-connect to unblock the accepting thread.
//!
//! The verdict store sits behind a `RwLock<Arc<_>>`: the `reload` wire
//! message builds a fresh store from disk and swaps the `Arc` in one
//! write-lock blip, while every in-flight request keeps serving from
//! the clone it grabbed on entry — nothing is dropped mid-answer.
//! Connections carry an idle deadline (slow-loris guard) and a write
//! timeout, both counted in the `timeouts` metric, and the per-site
//! [`fault`] hooks let tests inject dropped connections and stalled
//! reads deterministically.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gsb_core::govern::fault::{self, IoFaultAction, IoSite};
use gsb_engine::{Batch, EngineCache, Json, Query};

use crate::admission::AdmissionPolicy;
use crate::metrics::ServerMetrics;
use crate::proto::{parse_request, response, Request};
use crate::store::VerdictStore;

/// Hard cap on one request line; longer lines answer `error` and drop
/// the connection (an unbounded line is an out-of-memory vector).
pub const MAX_REQUEST_LINE: usize = 1 << 20; // 1 MiB

/// How often a blocked connection read wakes up to poll the shutdown
/// flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7414` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Admission limits applied to every query.
    pub policy: AdmissionPolicy,
    /// Whether solver misses are appended to the verdict store.
    pub append_to_store: bool,
    /// A connection with no complete request line for this long is
    /// reaped (slow-loris guard) and counted in `timeouts`.
    pub idle_timeout: Duration,
    /// Per-connection socket write timeout; a peer that stops reading
    /// its responses is reaped and counted in `timeouts`.
    pub write_timeout: Duration,
    /// Back-off hint attached to `overloaded` responses, in ms.
    pub retry_after_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let parallel = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: parallel.clamp(2, 8),
            policy: AdmissionPolicy::default(),
            append_to_store: true,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            retry_after_ms: Some(25),
        }
    }
}

/// The serve subsystem entry point; see [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// Everything shared between the accept loop and the workers.
struct Shared {
    config: ServerConfig,
    /// The served store. Reads clone the `Arc` (one lock blip per
    /// request); `reload` swaps the whole `Arc` under the write lock.
    store: RwLock<Arc<VerdictStore>>,
    cache: Arc<EngineCache>,
    metrics: Arc<ServerMetrics>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running server: its bound address, shared counters, and the thread
/// handles needed to join it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `config.addr` and starts the accept loop plus worker pool.
    /// Returns once the socket is listening — the handle's address is
    /// immediately connectable.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(
        config: ServerConfig,
        store: Arc<VerdictStore>,
        cache: Arc<EngineCache>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            store: RwLock::new(store),
            cache,
            metrics: Arc::new(ServerMetrics::default()),
            shutdown: AtomicBool::new(false),
            addr,
        });
        // A bounded hand-off: when every worker is busy and the backlog
        // is full, the accept loop sheds right at the door instead of
        // queueing unboundedly.
        let (tx, rx) = sync_channel::<TcpStream>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("gsb-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gsb-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &tx))
                .expect("spawn accept thread")
        };
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the resolved port when `:0` was asked).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's live counters.
    #[must_use]
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The verdict store this server currently consults (a hot reload
    /// may swap it — the returned `Arc` keeps serving the snapshot you
    /// grabbed).
    #[must_use]
    pub fn store(&self) -> Arc<VerdictStore> {
        self.shared.store()
    }

    /// Requests shutdown: new connections stop being accepted, workers
    /// drain and exit. Idempotent; returns immediately — use
    /// [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Waits for the accept loop and every worker to exit. Call
    /// [`ServerHandle::shutdown`] first (or send a `shutdown` request)
    /// or this blocks until one arrives.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Shared {
    /// One clone of the currently served store.
    fn store(&self) -> Arc<VerdictStore> {
        Arc::clone(&self.store.read().unwrap_or_else(|p| p.into_inner()))
    }

    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop: a throwaway local connection
            // makes `accept()` return so it can observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drops tx; idle workers drain and exit
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Shed at the door with the typed overloaded response.
                shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                let limit = shared.config.policy.max_in_flight;
                let in_flight = shared.metrics.in_flight.load(Ordering::Relaxed);
                let _ = write_line(
                    &stream,
                    &response::overloaded(in_flight, limit, shared.config.retry_after_ms),
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let stream = {
            let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv_timeout(READ_POLL)
        };
        match stream {
            Ok(stream) => handle_connection(shared, &stream),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection: bounded JSON-lines framing, one response line
/// per request line, polling the shutdown flag between reads. A
/// connection that produces no complete line within the idle timeout is
/// reaped (counted in `timeouts`); injected `DropConnection` faults
/// close it, `StallRead` faults stop reading until the reaper fires.
fn handle_connection(shared: &Shared, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut last_line = Instant::now();
    let mut stalled = false;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line already buffered.
        while let Some(at) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=at).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]);
            let line = line.trim();
            last_line = Instant::now();
            if line.is_empty() {
                continue;
            }
            if !serve_line(shared, stream, line) {
                return;
            }
            // Reset again after serving: a long engine run must not
            // count against the peer's idle budget.
            last_line = Instant::now();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if last_line.elapsed() >= shared.config.idle_timeout {
            // Slow-loris guard: no complete request line in too long.
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if stalled {
            // A stalled read never recovers; wait for the reaper above.
            std::thread::sleep(READ_POLL);
            continue;
        }
        match fault::io_poll(IoSite::ConnRead) {
            Some(IoFaultAction::DropConnection) => return,
            Some(IoFaultAction::StallRead) => {
                stalled = true;
                continue;
            }
            _ => {}
        }
        match (&mut &*stream).read(&mut chunk) {
            Ok(0) => return, // client hung up
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_REQUEST_LINE {
                    let _ = write_line(
                        stream,
                        &response::error("request line exceeds the 1 MiB cap"),
                    );
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: loop around to poll the shutdown flag.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line. Returns `false` when the connection (or
/// the whole server) should wind down.
fn serve_line(shared: &Shared, stream: &TcpStream, line: &str) -> bool {
    match parse_request(line) {
        Ok(Request::Ping) => send_line(shared, stream, &response::pong()).is_ok(),
        Ok(Request::Metrics) => send_line(shared, stream, &metrics_payload(shared)).is_ok(),
        Ok(Request::Shutdown) => {
            let _ = send_line(shared, stream, &response::shutting_down());
            shared.request_shutdown();
            false
        }
        Ok(Request::Reload { path }) => {
            let reply = match reload_store(shared, path.as_deref()) {
                Ok(reply) => reply,
                Err(details) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    response::error(&details)
                }
            };
            send_line(shared, stream, &reply).is_ok()
        }
        Ok(Request::Query { id, attempt, query }) => {
            if attempt > 0 {
                shared
                    .metrics
                    .retries_observed
                    .fetch_add(1, Ordering::Relaxed);
            }
            let reply = answer_query(shared, id, *query);
            send_line(shared, stream, &reply).is_ok()
        }
        Err(details) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            send_line(shared, stream, &response::error(&details)).is_ok()
        }
    }
}

/// Rebuilds the verdict store from disk and atomically swaps it in.
/// In-flight requests keep the `Arc` they already cloned, so nothing is
/// dropped; the next request sees the fresh store.
fn reload_store(shared: &Shared, path: Option<&str>) -> Result<String, String> {
    let current = shared.store();
    let path: PathBuf = match path {
        Some(p) => PathBuf::from(p),
        None => current
            .path()
            .ok_or("the served store is in-memory: reload needs an explicit 'path'")?
            .to_path_buf(),
    };
    let fresh = VerdictStore::open_with(&path, current.compaction_policy())
        .map_err(|e| format!("reload of '{}' failed: {e}", path.display()))?;
    let stats = fresh.stats();
    // The fresh store's compaction counter starts over; fold the
    // outgoing store's count into the server metric so the monotone
    // `compactions` line survives the swap.
    shared
        .metrics
        .compactions
        .fetch_max(current.stats().compactions, Ordering::Relaxed);
    *shared.store.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(fresh);
    shared.metrics.reloads.fetch_add(1, Ordering::Relaxed);
    Ok(response::reloaded(
        stats.entries,
        stats.generation,
        &path.display().to_string(),
    ))
}

/// Answers one admitted-or-not query: store first, then admission,
/// then the in-flight gate, then the engine (panic-isolated through a
/// single-entry [`Batch`]).
fn answer_query(shared: &Shared, id: Option<u64>, mut query: Query) -> String {
    let metrics = &shared.metrics;
    let started = Instant::now();
    // One clone up front: this request serves (and appends) against
    // the same store snapshot even if a reload swaps mid-answer.
    let store = shared.store();
    // The store is consulted before the in-flight gate: hits are index
    // lookups and must stay serveable at full rate even when the
    // engine is saturated.
    if let Some(rendered) = store.lookup(&query) {
        metrics.served_store.fetch_add(1, Ordering::Relaxed);
        metrics
            .histogram(query.question().label())
            .record(started.elapsed());
        return response::verdict(id, "store", &rendered);
    }
    if let Err(reason) = shared.config.policy.admit(&mut query) {
        metrics.rejected.fetch_add(1, Ordering::Relaxed);
        return response::rejected(&reason);
    }
    let limit = shared.config.policy.max_in_flight;
    let admitted = metrics
        .in_flight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |current| {
            (current < limit).then_some(current + 1)
        });
    if admitted.is_err() {
        metrics.shed.fetch_add(1, Ordering::Relaxed);
        return response::overloaded(
            metrics.in_flight.load(Ordering::Relaxed),
            limit,
            shared.config.retry_after_ms,
        );
    }
    let outcome = {
        let mut batch = Batch::new();
        batch.push(query.clone());
        batch
            .run_with(&shared.cache)
            .pop()
            .expect("one query in, one verdict out")
    };
    metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
    match outcome {
        Ok(verdict) => {
            if shared.config.append_to_store {
                store.insert(&query, &verdict);
            }
            metrics.served_engine.fetch_add(1, Ordering::Relaxed);
            metrics
                .histogram(query.question().label())
                .record(started.elapsed());
            response::verdict(id, "engine", &verdict.to_json_value().render_compact())
        }
        Err(e) => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            response::error(&e.to_string())
        }
    }
}

/// The full metrics response: server counters, engine cache counters,
/// and store counters on one line.
fn metrics_payload(shared: &Shared) -> String {
    let store = shared.store();
    let stats = store.stats();
    // Mirror the store's compaction count (manual + auto) into the
    // server counters as a high-water mark, so one metrics line tells
    // the whole accounting story.
    shared
        .metrics
        .compactions
        .fetch_max(stats.compactions, Ordering::Relaxed);
    Json::Obj(vec![
        ("kind".into(), Json::Str("metrics".into())),
        ("server".into(), shared.metrics.to_json_value()),
        ("cache".into(), shared.cache.stats().to_json_value()),
        ("store".into(), stats.to_json_value()),
    ])
    .render_compact()
}

/// [`write_line`] with the injected-fault hook and timeout accounting:
/// a `DropConnection` fault aborts the write, a socket write timeout
/// (peer stopped reading) is counted in `timeouts`.
fn send_line(shared: &Shared, stream: &TcpStream, line: &str) -> std::io::Result<()> {
    if matches!(
        fault::io_poll(IoSite::ConnWrite),
        Some(IoFaultAction::DropConnection)
    ) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "injected connection drop",
        ));
    }
    match write_line(stream, line) {
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            Err(e)
        }
        other => other,
    }
}

/// Writes one response line (LF-terminated) and flushes it.
fn write_line(mut stream: &TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
