//! gsb-serve: the persistent solvability service.
//!
//! A long-running `gsb serve` process answers solvability questions
//! over a JSON-lines TCP protocol, layering three defenses between
//! untrusted clients and the solver:
//!
//! 1. the **[`VerdictStore`]** — a disk-backed, content-addressed map
//!    from canonical `(question, spec)` keys to serialized verdicts,
//!    precomputable offline (`gsb store build --atlas <n>`) and
//!    consulted before any engine work, so queries over the precomputed
//!    universe are index lookups;
//! 2. the **[`AdmissionPolicy`]** — structural caps that reject
//!    oversized questions outright plus budget clamps feeding the
//!    engine's governance layer, so no admitted request can outspend
//!    the server's limits; and
//! 3. the **in-flight gate** — a hard bound on concurrently executing
//!    engine queries, shedding the excess with a typed `overloaded`
//!    response instead of queueing unboundedly.
//!
//! The transport is deliberately boring: a hand-rolled
//! `std::net::TcpListener` accept loop, a bounded worker pool over a
//! `sync_channel`, one compact JSON object per line in each direction
//! (see [`proto`]), and cooperative shutdown via an atomic flag. A
//! blocking [`Client`] wraps the same protocol for the CLI's
//! `--connect` paths, the integration tests, and `gsb-bench serve`.
//!
//! Crash safety and self-healing (PR 10): the store rewrites its
//! append log into sorted, checksummed **generation files**
//! ([`VerdictStore::compact`], auto-triggered by [`CompactionPolicy`])
//! and reloads by preferring the newest *complete* generation, falling
//! back past torn ones; a `reload` wire message hot-swaps a freshly
//! built store without dropping in-flight requests; and
//! [`SelfHealingClient`] retries shed or dropped requests under a
//! seeded, budget-capped [`RetryPolicy`]. The whole failure surface is
//! deterministically testable through `gsb_core::govern::fault`'s
//! seeded I/O fault plans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod store;

pub use admission::AdmissionPolicy;
pub use client::{Client, ClientError, RetryPolicy, SelfHealingClient, Served, ServedBy};
pub use metrics::{Histogram, ServerMetrics};
pub use server::{Server, ServerConfig, ServerHandle};
pub use store::{CompactReport, CompactionPolicy, StoreStats, VerdictStore};
