//! Server-side admission control: structural caps that reject
//! adversarial questions outright, plus budget clamps that bound
//! whatever the engine is allowed to spend on admitted ones.

use std::time::Duration;

use gsb_engine::{Query, Question};

/// The admission limits a running server enforces on every query.
///
/// Two layers: **structural** caps (`max_n`, `max_rounds`, …) reject a
/// question before any work happens, and **budget** clamps bound the
/// engine's spend on admitted questions — a client may ask for less
/// than the cap, never more, and a request with no deadline gets the
/// cap as its deadline. Combined with the in-flight gate
/// (`max_in_flight`, enforced by the server loop), no request mix can
/// wedge the solver.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Queries allowed to run the engine concurrently; beyond this the
    /// server sheds with a typed `overloaded` response.
    pub max_in_flight: usize,
    /// Largest process count accepted for per-task questions.
    pub max_n: usize,
    /// Largest round bound accepted for search questions.
    pub max_rounds: usize,
    /// Largest process count accepted for round-bounded search
    /// questions (`solvable-in-rounds` / `certificate`), whose cost
    /// grows like `fubini(n)^rounds` — far steeper than classification.
    pub max_search_n: usize,
    /// Largest `max_n` accepted for the atlas sweep.
    pub max_atlas_n: usize,
    /// Wall-clock cap per admitted query; also the default deadline for
    /// requests that name none.
    pub deadline_cap: Duration,
    /// Solver conflict cap per admitted query.
    pub conflict_cap: u64,
    /// Reference-engine node cap per admitted query.
    pub node_cap: u64,
    /// Memory-charge cap per admitted query, in bytes.
    pub memory_cap: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_in_flight: 64,
            max_n: 9,
            max_rounds: 3,
            max_search_n: 5,
            max_atlas_n: 7,
            deadline_cap: Duration::from_secs(10),
            conflict_cap: 5_000_000,
            node_cap: 50_000_000,
            memory_cap: 1 << 31, // 2 GiB
        }
    }
}

impl AdmissionPolicy {
    /// Admits or rejects `query`, clamping its budgets in place.
    ///
    /// # Errors
    ///
    /// Returns the human-readable rejection reason when the question is
    /// structurally outside this policy (the server answers with a
    /// typed `rejected` response and does no work).
    pub fn admit(&self, query: &mut Query) -> Result<(), String> {
        if let Some(spec) = query.spec() {
            if spec.n() > self.max_n {
                return Err(format!(
                    "n = {} exceeds the server cap of {}",
                    spec.n(),
                    self.max_n
                ));
            }
        }
        match query.question() {
            Question::SolvableInRounds { rounds } | Question::Certificate { rounds } => {
                if *rounds > self.max_rounds {
                    return Err(format!(
                        "rounds = {rounds} exceeds the server cap of {}",
                        self.max_rounds
                    ));
                }
                let n = query.spec().map_or(0, gsb_core::GsbSpec::n);
                if n > self.max_search_n {
                    return Err(format!(
                        "round-bounded search at n = {n} exceeds the server cap of {}",
                        self.max_search_n
                    ));
                }
            }
            Question::Atlas { max_n } if *max_n > self.max_atlas_n => {
                return Err(format!(
                    "atlas max_n = {max_n} exceeds the server cap of {}",
                    self.max_atlas_n
                ));
            }
            Question::Atlas { .. } | Question::Classify | Question::NoCommWitness => {}
            // `Question` is non-exhaustive: admit future kinds under
            // the per-spec and budget caps alone.
            _ => {}
        }
        let opts = query.opts_mut();
        opts.deadline = Some(match opts.deadline {
            Some(asked) => asked.min(self.deadline_cap),
            None => self.deadline_cap,
        });
        opts.conflict_budget = Some(clamp(opts.conflict_budget, self.conflict_cap));
        opts.node_budget = Some(clamp(opts.node_budget, self.node_cap));
        opts.memory_budget = Some(clamp(opts.memory_budget, self.memory_cap));
        // The shared cache is the whole point of a long-running server;
        // clients don't get to bypass it.
        opts.use_cache = true;
        Ok(())
    }
}

fn clamp(asked: Option<u64>, cap: u64) -> u64 {
    asked.map_or(cap, |x| x.min(cap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_engine::named_task;

    #[test]
    fn structural_violations_are_rejected() {
        let policy = AdmissionPolicy::default();
        let spec = named_task("wsb", 4, None).unwrap();
        let mut over_rounds = Query::new(
            spec.clone(),
            Question::SolvableInRounds {
                rounds: policy.max_rounds + 1,
            },
        );
        assert!(policy.admit(&mut over_rounds).is_err());
        let mut over_atlas = Query::atlas(policy.max_atlas_n + 1);
        assert!(policy.admit(&mut over_atlas).is_err());
        let big = named_task("wsb", policy.max_search_n + 1, None).unwrap();
        let mut over_search = Query::new(big, Question::SolvableInRounds { rounds: 1 });
        assert!(policy.admit(&mut over_search).is_err());
    }

    #[test]
    fn budgets_clamp_to_the_caps() {
        let policy = AdmissionPolicy::default();
        let spec = named_task("wsb", 4, None).unwrap();
        let mut query = Query::new(spec, Question::Classify);
        query.opts_mut().conflict_budget = Some(policy.conflict_cap * 10);
        query.opts_mut().deadline = Some(policy.deadline_cap * 10);
        policy.admit(&mut query).unwrap();
        assert_eq!(query.opts().conflict_budget, Some(policy.conflict_cap));
        assert_eq!(query.opts().deadline, Some(policy.deadline_cap));
        assert!(query.opts().use_cache);
        // A modest ask is honored as-is.
        let spec = named_task("wsb", 4, None).unwrap();
        let mut modest = Query::new(spec, Question::Classify);
        modest.opts_mut().conflict_budget = Some(7);
        policy.admit(&mut modest).unwrap();
        assert_eq!(modest.opts().conflict_budget, Some(7));
    }
}
