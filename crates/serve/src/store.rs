//! The disk-backed [`VerdictStore`]: a content-addressed map from
//! canonical `(question, spec)` keys to serialized verdicts, with
//! generational compaction.
//!
//! On-disk layout is two kinds of JSON-lines file. The **append log**
//! at `path` takes live solver misses, one flushed line per verdict:
//!
//! ```json
//! {"kind":"gsb-verdict-store","version":1}
//! {"key":{"question":{...},"spec":{...}},"verdict":{...}}
//! ```
//!
//! [`VerdictStore::compact`] rewrites the full in-memory map into a
//! sorted **generation file** at `path.gNNNNNN` — header, key-sorted
//! entry lines, and a closing manifest line carrying the entry count
//! and an FNV-1a checksum:
//!
//! ```json
//! {"kind":"gsb-verdict-generation","version":1,"generation":3}
//! {"key":...,"verdict":...}
//! {"kind":"gsb-verdict-manifest","generation":3,"entries":412,"checksum":"91ab..."}
//! ```
//!
//! The generation is written to a temp file, fsynced, renamed into
//! place, and the directory fsynced — so a generation either exists
//! completely (manifest verifies) or is ignored on reload. After the
//! rename the append log is atomically reset to just its header.
//! Reload prefers the newest *complete* generation, falls back past
//! torn or half-written ones, and overlays whatever the append log
//! holds on top. A torn trailing log line — a crash mid-append — is
//! skipped. Values are kept as pre-rendered compact JSON: a store hit
//! is a map lookup plus a string splice, never a re-render.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gsb_core::govern::fault::{self, IoFaultAction, IoSite};
use gsb_engine::{Batch, EngineCache, Json, Query, Question, Verdict};

use crate::proto::canonical_key;

/// Magic header object expected on the first line of a store file.
const HEADER: &str = "{\"kind\":\"gsb-verdict-store\",\"version\":1}";

/// `kind` of the first line of a generation file.
const GENERATION_KIND: &str = "gsb-verdict-generation";

/// `kind` of the closing manifest line of a generation file.
const MANIFEST_KIND: &str = "gsb-verdict-manifest";

/// Completed generations kept on disk after a compaction: the fresh
/// one plus its predecessor as a fallback target.
const KEEP_GENERATIONS: u64 = 2;

/// When the append log should be folded into a fresh generation.
/// Either threshold triggers; compaction cost is one sorted rewrite of
/// the in-memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once this many entries sit in the append log.
    pub max_log_entries: u64,
    /// Compact once the append log grows past this many bytes.
    pub max_log_bytes: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_log_entries: 4096,
            max_log_bytes: 8 << 20, // 8 MiB
        }
    }
}

/// What one [`VerdictStore::compact`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// The generation number written.
    pub generation: u64,
    /// Entries in the generation file.
    pub entries: usize,
    /// Size of the generation file in bytes.
    pub bytes: u64,
}

/// Counters of one [`VerdictStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries currently held in memory.
    pub entries: usize,
    /// Entries appended since the store was opened.
    pub appended: u64,
    /// Successful compactions since the store was opened.
    pub compactions: u64,
    /// The current generation number (0 = no generation on disk).
    pub generation: u64,
    /// Torn or corrupt lines/generations skipped during load.
    pub torn_skipped: u64,
}

impl StoreStats {
    /// Serializes the counters for the metrics response.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("hits".into(), Json::Num(self.hits as f64)),
            ("misses".into(), Json::Num(self.misses as f64)),
            ("entries".into(), Json::Num(self.entries as f64)),
            ("appended".into(), Json::Num(self.appended as f64)),
            ("compactions".into(), Json::Num(self.compactions as f64)),
            ("generation".into(), Json::Num(self.generation as f64)),
            ("torn_skipped".into(), Json::Num(self.torn_skipped as f64)),
        ])
    }
}

/// A content-addressed verdict map, optionally backed by an append-only
/// JSON-lines log plus compacted generation files.
#[derive(Debug)]
pub struct VerdictStore {
    entries: Mutex<HashMap<String, Arc<str>>>,
    appender: Mutex<Option<BufWriter<File>>>,
    path: Option<PathBuf>,
    auto_compact: Option<CompactionPolicy>,
    hits: AtomicU64,
    misses: AtomicU64,
    appended: AtomicU64,
    compactions: AtomicU64,
    generation: AtomicU64,
    log_entries: AtomicU64,
    log_bytes: AtomicU64,
    torn_skipped: AtomicU64,
}

impl VerdictStore {
    /// An empty, memory-only store (nothing is ever written to disk,
    /// and compaction is unavailable).
    #[must_use]
    pub fn in_memory() -> Self {
        VerdictStore {
            entries: Mutex::new(HashMap::new()),
            appender: Mutex::new(None),
            path: None,
            auto_compact: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            log_entries: AtomicU64::new(0),
            log_bytes: AtomicU64::new(0),
            torn_skipped: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a disk-backed store at `path` with the
    /// default [`CompactionPolicy`]; see [`VerdictStore::open_with`].
    ///
    /// # Errors
    ///
    /// See [`VerdictStore::open_with`].
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with(path, Some(CompactionPolicy::default()))
    }

    /// Opens (or creates) a disk-backed store at `path`.
    ///
    /// Load order: the newest *complete* generation file (header plus a
    /// verifying manifest) seeds the map — torn or half-written
    /// generations are skipped in favor of older ones — and the append
    /// log is overlaid on top. The log stays open for appends; when
    /// `auto_compact` is set, inserts that push the log past either
    /// threshold fold it into a fresh generation automatically.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the log cannot be read or created, or
    /// an [`std::io::ErrorKind::InvalidData`] error when it exists but
    /// does not start with the store header.
    pub fn open_with(
        path: impl AsRef<Path>,
        auto_compact: Option<CompactionPolicy>,
    ) -> std::io::Result<Self> {
        let path = path.as_ref();
        let mut entries = HashMap::new();
        let mut torn_skipped = 0u64;

        // Newest complete generation first; fall back past torn ones.
        let mut generation = 0u64;
        for (number, gen_path) in scan_generations(path) {
            if fault::io_poll(IoSite::StoreLoad) == Some(IoFaultAction::FailFsync) {
                torn_skipped += 1;
                continue; // injected unreadable generation
            }
            match load_generation(&gen_path, number) {
                Ok(loaded) => {
                    for (key, verdict) in loaded {
                        entries.insert(key, verdict);
                    }
                    generation = number;
                    break;
                }
                Err(_) => torn_skipped += 1,
            }
        }

        // Overlay the append log: its entries are newer than any
        // generation's.
        let mut log_entries = 0u64;
        let existed = path.exists();
        if existed {
            // Read raw byte lines, not `lines()`: a crash can tear a
            // line mid-UTF-8 sequence, and that must drop one line,
            // not fail the whole reload.
            let mut reader = BufReader::new(File::open(path)?);
            let mut raw = Vec::new();
            let mut first = true;
            loop {
                raw.clear();
                if reader.read_until(b'\n', &mut raw)? == 0 {
                    break;
                }
                if raw.last() == Some(&b'\n') {
                    raw.pop();
                }
                let line = std::str::from_utf8(&raw).ok();
                if first {
                    // An empty file is a fresh store; anything else
                    // must lead with the header line.
                    first = false;
                    if line.is_none_or(|l| Json::parse(l).is_err() || l.trim() != HEADER) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("{} is not a gsb verdict store", path.display()),
                        ));
                    }
                    continue;
                }
                let Some(line) = line else {
                    torn_skipped += 1; // torn mid-UTF-8 sequence
                    continue;
                };
                if line.trim().is_empty() {
                    continue;
                }
                // Torn or corrupt lines are dropped, not fatal: the
                // store is a cache, and a crash mid-append must not
                // brick the server.
                if let Some((key, verdict)) = parse_entry(line) {
                    entries.insert(key, verdict);
                    log_entries += 1;
                } else {
                    torn_skipped += 1;
                }
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if !existed || file.metadata()?.len() == 0 {
            writeln!(file, "{HEADER}")?;
            file.flush()?;
        }
        let log_bytes = file.metadata()?.len();
        Ok(VerdictStore {
            entries: Mutex::new(entries),
            appender: Mutex::new(Some(BufWriter::new(file))),
            path: Some(path.to_path_buf()),
            auto_compact,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            generation: AtomicU64::new(generation),
            log_entries: AtomicU64::new(log_entries),
            log_bytes: AtomicU64::new(log_bytes),
            torn_skipped: AtomicU64::new(torn_skipped),
        })
    }

    /// The backing file, when disk-backed.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The auto-compaction policy this store was opened with.
    #[must_use]
    pub fn compaction_policy(&self) -> Option<CompactionPolicy> {
        self.auto_compact
    }

    /// Folds the append log into a fresh sorted generation file:
    /// temp-write → fsync → rename into place → directory fsync, then
    /// the log is atomically reset to its bare header (same dance) and
    /// generations older than the fallback window are pruned. The
    /// appender lock is held throughout, so concurrent inserts block
    /// (for milliseconds) rather than race the reset.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::Unsupported`] for memory-only stores;
    /// otherwise the first I/O failure. A failed compaction never
    /// corrupts the live store — the log keeps its entries and the
    /// half-written generation is ignored by reload.
    pub fn compact(&self) -> std::io::Result<CompactReport> {
        let Some(path) = self.path.clone() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "memory-only stores cannot be compacted",
            ));
        };
        let mut appender = self.appender.lock().unwrap_or_else(|p| p.into_inner());
        let mut snapshot: Vec<(String, Arc<str>)> = self
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        snapshot.sort_by(|a, b| a.0.cmp(&b.0));

        let number = self.generation.load(Ordering::SeqCst) + 1;
        let gen_path = generation_path(&path, number);
        let tmp_path = tmp_sibling(&gen_path);

        // Render the whole generation image: header, sorted entries,
        // closing manifest with count + checksum.
        let mut image =
            format!("{{\"kind\":\"{GENERATION_KIND}\",\"version\":1,\"generation\":{number}}}\n");
        let mut checksum = Fnv1a::new();
        for (key, verdict) in &snapshot {
            let line = format!("{{\"key\":{key},\"verdict\":{verdict}}}\n");
            checksum.update(line.as_bytes());
            image.push_str(&line);
        }
        image.push_str(&format!(
            "{{\"kind\":\"{MANIFEST_KIND}\",\"generation\":{number},\"entries\":{},\"checksum\":\"{:016x}\"}}\n",
            snapshot.len(),
            checksum.finish(),
        ));

        let injected = fault::io_poll(IoSite::StoreCompact);
        if injected == Some(IoFaultAction::TornWrite) {
            // Crash mid-write: a half image lands under the final name
            // with no manifest. Reload must fall back past it.
            std::fs::write(&gen_path, &image.as_bytes()[..image.len() / 2])?;
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected fault: torn generation write",
            ));
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(image.as_bytes())?;
            if injected == Some(IoFaultAction::FailFsync) {
                drop(tmp);
                let _ = std::fs::remove_file(&tmp_path);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected fault: generation fsync failed",
                ));
            }
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &gen_path)?;
        sync_dir(&gen_path)?;

        // Atomically reset the append log to its bare header and point
        // the appender at the fresh file.
        let log_tmp = tmp_sibling(&path);
        {
            let mut tmp = File::create(&log_tmp)?;
            writeln!(tmp, "{HEADER}")?;
            tmp.sync_all()?;
        }
        std::fs::rename(&log_tmp, &path)?;
        sync_dir(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let log_bytes = file.metadata()?.len();
        *appender = Some(BufWriter::new(file));

        // Prune generations beyond the fallback window.
        for (old, old_path) in scan_generations(&path) {
            if number.saturating_sub(old) >= KEEP_GENERATIONS {
                let _ = std::fs::remove_file(old_path);
            }
        }

        self.generation.store(number, Ordering::SeqCst);
        self.compactions.fetch_add(1, Ordering::SeqCst);
        self.log_entries.store(0, Ordering::SeqCst);
        self.log_bytes.store(log_bytes, Ordering::SeqCst);
        let bytes = std::fs::metadata(&gen_path).map(|m| m.len()).unwrap_or(0);
        Ok(CompactReport {
            generation: number,
            entries: snapshot.len(),
            bytes,
        })
    }

    /// Looks up the canonical key of `query`, counting a hit or miss.
    /// The value is the verdict's compact JSON rendering.
    #[must_use]
    pub fn lookup(&self, query: &Query) -> Option<Arc<str>> {
        let key = canonical_key(query);
        let found = self
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts the verdict for `query`, appending to the backing file.
    /// Indeterminate verdicts (budget/deadline truncations) are never
    /// stored — a better-funded query must be able to retry. Returns
    /// whether the entry was new. When the append log crosses the
    /// auto-compaction thresholds, the log is folded into a fresh
    /// generation before returning (a failed fold is retried on a
    /// later insert, never surfaced here).
    pub fn insert(&self, query: &Query, verdict: &Verdict) -> bool {
        if verdict.is_indeterminate() {
            return false;
        }
        let key = canonical_key(query);
        let rendered: Arc<str> = verdict.to_json_value().render_compact().into();
        let new = self
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key.clone(), Arc::clone(&rendered))
            .is_none();
        if new {
            self.appended.fetch_add(1, Ordering::Relaxed);
            let mut appender = self.appender.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(file) = appender.as_mut() {
                let line = format!("{{\"key\":{key},\"verdict\":{rendered}}}\n");
                match fault::io_poll(IoSite::StoreAppend) {
                    Some(IoFaultAction::TornWrite) => {
                        // Crash mid-append: half the line, no newline.
                        // The in-memory entry survives; the disk image
                        // carries a torn line reload must skip.
                        let _ = file.write_all(&line.as_bytes()[..line.len() / 2]);
                        let _ = file.flush();
                    }
                    Some(IoFaultAction::FailFsync) => {
                        // The flush failed and the line was dropped:
                        // durability silently lost for this one entry.
                    }
                    _ => {
                        // One flushed line per verdict: a kill between
                        // lines loses nothing, a kill mid-line loses
                        // one entry.
                        let _ = file.write_all(line.as_bytes());
                        let _ = file.flush();
                    }
                }
                self.log_entries.fetch_add(1, Ordering::Relaxed);
                self.log_bytes
                    .fetch_add(line.len() as u64, Ordering::Relaxed);
            }
            drop(appender);
            if let Some(policy) = self.auto_compact {
                if self.log_entries.load(Ordering::Relaxed) >= policy.max_log_entries
                    || self.log_bytes.load(Ordering::Relaxed) >= policy.max_log_bytes
                {
                    let _ = self.compact();
                }
            }
        }
        new
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap_or_else(|p| p.into_inner()).len(),
            appended: self.appended.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
            torn_skipped: self.torn_skipped.load(Ordering::Relaxed),
        }
    }

    /// Precomputes the symmetric-task universe through `max_n`
    /// processes: for every feasible symmetric task `SB(n, m, l, u)`
    /// with `m ≤ n ≤ max_n` **and** every task-zoo entry (which adds
    /// the asymmetric election variants), the classification and
    /// no-communication-witness verdicts are solved through `cache` and
    /// inserted. Returns the number of entries added.
    ///
    /// # Errors
    ///
    /// Returns the first engine error of the batch (the precompute runs
    /// ungoverned, so errors are genuine bugs, not budget trips).
    pub fn build_atlas(
        &self,
        max_n: usize,
        cache: &EngineCache,
    ) -> Result<usize, gsb_engine::Error> {
        let mut specs = Vec::new();
        for n in 1..=max_n {
            for m in 1..=n {
                if let Ok(family) = gsb_core::order::feasible_family(n, m) {
                    specs.extend(family.into_iter().map(|task| task.to_spec()));
                }
            }
            if let Ok(entries) = gsb_core::zoo::catalog(n) {
                specs.extend(entries.into_iter().map(|entry| entry.spec));
            }
        }
        let mut seen = std::collections::HashSet::new();
        specs.retain(|spec| seen.insert(spec.clone()));
        let mut batch = Batch::new();
        for spec in &specs {
            batch.push(Query::new(spec.clone(), Question::Classify));
            batch.push(Query::new(spec.clone(), Question::NoCommWitness));
        }
        let mut added = 0;
        for (query, verdict) in batch.queries().iter().zip(batch.run_with(cache)) {
            if self.insert(query, &verdict?) {
                added += 1;
            }
        }
        Ok(added)
    }
}

/// Parses one `{"key":...,"verdict":...}` entry line; `None` on torn or
/// malformed lines. The key is re-rendered compact so look-ups match
/// byte-for-byte whatever whitespace the line used.
fn parse_entry(line: &str) -> Option<(String, Arc<str>)> {
    let value = Json::parse(line).ok()?;
    let key = value.get("key")?;
    key.get("question")?;
    let verdict = value.get("verdict")?;
    // Only load entries that still parse as verdicts: a corrupt or
    // stale-schema line must not be served back to clients.
    let rendered = verdict.render_compact();
    Verdict::from_json(&rendered).ok()?;
    Some((key.render_compact(), rendered.into()))
}

/// The generation file sibling of `path` for generation `number`
/// (`verdicts.jsonl` → `verdicts.jsonl.g000003`).
fn generation_path(path: &Path, number: u64) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".g{number:06}"));
    PathBuf::from(name)
}

/// The temp sibling a file is staged at before its atomic rename.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// fsyncs the directory holding `path`, making a just-renamed file
/// durable across a crash.
fn sync_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// Every `<path>.gNNNNNN` sibling of the store log, newest first.
/// Leftover `.tmp` stage files are ignored (and harmless: a fresh
/// compaction truncates them).
fn scan_generations(path: &Path) -> Vec<(u64, PathBuf)> {
    let Some(name) = path.file_name().and_then(|s| s.to_str()) else {
        return Vec::new();
    };
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!("{name}.g");
    let mut found = Vec::new();
    let Ok(dir) = std::fs::read_dir(&parent) else {
        return Vec::new();
    };
    for entry in dir.flatten() {
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        let Some(suffix) = file_name.strip_prefix(&prefix) else {
            continue;
        };
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(number) = suffix.parse::<u64>() {
                found.push((number, parent.join(file_name)));
            }
        }
    }
    found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    found
}

/// Loads one generation file, verifying header, manifest presence,
/// entry count, and checksum. Any mismatch is an `InvalidData` error —
/// the caller falls back to an older generation.
fn load_generation(path: &Path, number: u64) -> std::io::Result<Vec<(String, Arc<str>)>> {
    let torn = |details: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {details}", path.display()),
        )
    };
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| torn("empty generation"))??;
    let header = Json::parse(&header).map_err(|_| torn("unparseable generation header"))?;
    if header.get("kind").and_then(Json::as_str) != Some(GENERATION_KIND)
        || header.get("generation").and_then(Json::as_f64) != Some(number as f64)
    {
        return Err(torn("wrong generation header"));
    }
    let mut entries = Vec::new();
    let mut checksum = Fnv1a::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(&line).map_err(|_| torn("corrupt generation line"))?;
        if value.get("kind").and_then(Json::as_str) == Some(MANIFEST_KIND) {
            // The closing manifest: the generation is complete iff the
            // count and checksum both verify.
            if value.get("generation").and_then(Json::as_f64) != Some(number as f64) {
                return Err(torn("manifest generation mismatch"));
            }
            if value.get("entries").and_then(Json::as_f64) != Some(entries.len() as f64) {
                return Err(torn("manifest entry count mismatch"));
            }
            let expect = format!("{:016x}", checksum.finish());
            if value.get("checksum").and_then(Json::as_str) != Some(expect.as_str()) {
                return Err(torn("manifest checksum mismatch"));
            }
            return Ok(entries);
        }
        let mut with_newline = line.clone();
        with_newline.push('\n');
        checksum.update(with_newline.as_bytes());
        let (key, verdict) = parse_entry(&line).ok_or_else(|| torn("malformed entry"))?;
        entries.push((key, verdict));
    }
    Err(torn("generation has no manifest (torn write)"))
}

/// FNV-1a 64: the tiny streaming checksum sealing a generation file.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(name: &str, n: usize) -> Query {
        Query::new(
            gsb_engine::named_task(name, n, None).unwrap(),
            Question::Classify,
        )
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = VerdictStore::in_memory();
        let query = classify("wsb", 4);
        assert!(store.lookup(&query).is_none());
        let verdict = query.run_with(&EngineCache::new()).unwrap();
        assert!(store.insert(&query, &verdict));
        assert!(!store.insert(&query, &verdict), "idempotent");
        let served = store.lookup(&query).expect("stored");
        let parsed = Verdict::from_json(&served).unwrap();
        assert_eq!(parsed.solvability, verdict.solvability);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn disk_store_survives_reload_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "gsb-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.jsonl");
        let _ = std::fs::remove_file(&path);

        let query = classify("wsb", 5);
        let verdict = query.run_with(&EngineCache::new()).unwrap();
        {
            let store = VerdictStore::open(&path).unwrap();
            assert!(store.insert(&query, &verdict));
        }
        // Simulate a crash mid-append: a torn half line at the tail.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            write!(file, "{{\"key\":{{\"question\"").unwrap();
        }
        let reloaded = VerdictStore::open(&path).unwrap();
        assert_eq!(reloaded.stats().entries, 1, "torn tail is skipped");
        let served = reloaded.lookup(&query).expect("survives reload");
        assert_eq!(
            Verdict::from_json(&served).unwrap().solvability,
            verdict.solvability
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_store_files_are_refused() {
        let dir = std::env::temp_dir().join(format!("gsb-store-refuse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-store.jsonl");
        std::fs::write(&path, "not a store\n").unwrap();
        assert!(VerdictStore::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gsb-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Classify verdicts for a handful of zoo tasks — cheap to solve,
    /// distinct keys.
    fn seed_verdicts(count: usize) -> Vec<(Query, Verdict)> {
        let cache = EngineCache::new();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        'outer: for n in 2..=4 {
            for entry in gsb_core::zoo::catalog(n).unwrap() {
                let query = Query::new(entry.spec, Question::Classify);
                // Zoo synonyms share canonical keys; keep distinct ones.
                if !seen.insert(canonical_key(&query)) {
                    continue;
                }
                let verdict = query.run_with(&cache).unwrap();
                out.push((query, verdict));
                if out.len() == count {
                    break 'outer;
                }
            }
        }
        out
    }

    #[test]
    fn compaction_writes_a_generation_and_resets_the_log() {
        let dir = temp_dir("compact");
        let path = dir.join("verdicts.jsonl");
        let seeds = seed_verdicts(6);
        let store = VerdictStore::open(&path).unwrap();
        for (query, verdict) in &seeds {
            assert!(store.insert(query, verdict));
        }
        let report = store.compact().unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.entries, seeds.len());

        // The log is back to its bare header; the generation is sorted
        // and sealed by a verifying manifest.
        let log = std::fs::read_to_string(&path).unwrap();
        assert_eq!(log.trim(), HEADER);
        let gen_file = std::fs::read_to_string(generation_path(&path, 1)).unwrap();
        let lines: Vec<&str> = gen_file.lines().collect();
        assert_eq!(lines.len(), seeds.len() + 2, "header + entries + manifest");
        assert!(lines[0].contains(GENERATION_KIND));
        assert!(lines[lines.len() - 1].contains(MANIFEST_KIND));
        let mut keys: Vec<String> = lines[1..lines.len() - 1]
            .iter()
            .map(|l| Json::parse(l).unwrap().get("key").unwrap().render_compact())
            .collect();
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted, "generation entries are key-sorted");

        // Reload serves everything from the generation alone.
        let reloaded = VerdictStore::open(&path).unwrap();
        let stats = reloaded.stats();
        assert_eq!(stats.entries, seeds.len());
        assert_eq!(stats.generation, 1);
        for (query, verdict) in &seeds {
            let served = reloaded.lookup(query).expect("generation entry");
            assert_eq!(
                Verdict::from_json(&served).unwrap().solvability,
                verdict.solvability
            );
        }
        // Post-compaction inserts overlay the new log on the generation.
        drop(reloaded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_falls_back_past_a_torn_generation() {
        let dir = temp_dir("torn-gen");
        let path = dir.join("verdicts.jsonl");
        let seeds = seed_verdicts(5);
        let store = VerdictStore::open(&path).unwrap();
        for (query, verdict) in &seeds[..3] {
            store.insert(query, verdict);
        }
        store.compact().unwrap(); // generation 1: 3 entries
        for (query, verdict) in &seeds[3..] {
            store.insert(query, verdict);
        }
        store.compact().unwrap(); // generation 2: all 5
        drop(store);

        // Tear generation 2: chop it mid-file (manifest gone).
        let gen2 = generation_path(&path, 2);
        let bytes = std::fs::read(&gen2).unwrap();
        std::fs::write(&gen2, &bytes[..bytes.len() / 2]).unwrap();

        let reloaded = VerdictStore::open(&path).unwrap();
        let stats = reloaded.stats();
        assert_eq!(stats.generation, 1, "fell back to the complete one");
        assert_eq!(stats.entries, 3);
        assert!(stats.torn_skipped >= 1);
        for (query, _) in &seeds[..3] {
            assert!(reloaded.lookup(query).is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_manifests_are_rejected() {
        let dir = temp_dir("bad-manifest");
        let path = dir.join("verdicts.jsonl");
        let seeds = seed_verdicts(3);
        let store = VerdictStore::open(&path).unwrap();
        for (query, verdict) in &seeds {
            store.insert(query, verdict);
        }
        store.compact().unwrap();
        drop(store);
        // Flip one byte inside an entry line: count still matches, the
        // checksum doesn't.
        let gen1 = generation_path(&path, 1);
        let mut bytes = std::fs::read(&gen1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&gen1, &bytes).unwrap();
        let reloaded = VerdictStore::open(&path).unwrap();
        assert_eq!(reloaded.stats().generation, 0, "checksum failure rejected");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_triggers_on_the_entry_threshold() {
        let dir = temp_dir("auto");
        let path = dir.join("verdicts.jsonl");
        let seeds = seed_verdicts(7);
        let store = VerdictStore::open_with(
            &path,
            Some(CompactionPolicy {
                max_log_entries: 3,
                max_log_bytes: u64::MAX,
            }),
        )
        .unwrap();
        for (query, verdict) in &seeds {
            store.insert(query, verdict);
        }
        let stats = store.stats();
        assert!(stats.compactions >= 2, "7 inserts at threshold 3");
        assert_eq!(stats.entries, seeds.len());
        // Older generations beyond the fallback window are pruned.
        let on_disk = scan_generations(&path);
        assert!(on_disk.len() <= KEEP_GENERATIONS as usize);
        assert_eq!(on_disk[0].0, stats.generation);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_stores_refuse_compaction() {
        let store = VerdictStore::in_memory();
        let err = store.compact().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }

    #[test]
    fn atlas_build_covers_the_zoo() {
        let store = VerdictStore::in_memory();
        let cache = EngineCache::new();
        let added = store.build_atlas(4, &cache).unwrap();
        assert!(added > 0);
        // catalog(1) errors (election needs two processes); the build
        // skips it, so coverage starts at n = 2.
        for n in 2..=4 {
            for entry in gsb_core::zoo::catalog(n).unwrap() {
                let query = Query::new(entry.spec.clone(), Question::Classify);
                assert!(
                    store.lookup(&query).is_some(),
                    "zoo entry {} (n={n}) must be precomputed",
                    entry.name
                );
            }
        }
    }
}
