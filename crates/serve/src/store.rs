//! The disk-backed [`VerdictStore`]: a content-addressed map from
//! canonical `(question, spec)` keys to serialized verdicts.
//!
//! On-disk format is JSON-lines, append-only:
//!
//! ```json
//! {"kind":"gsb-verdict-store","version":1}
//! {"key":{"question":{...},"spec":{...}},"verdict":{...}}
//! {"key":{"question":{...},"spec":{...}},"verdict":{...}}
//! ```
//!
//! The whole file is read into memory at startup; solver misses are
//! appended (one flushed line per verdict, so a killed server loses at
//! most the line being written and a torn trailing line is skipped on
//! the next load). Values are kept as pre-rendered compact JSON: a
//! store hit is a map lookup plus a string splice, never a re-render.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gsb_engine::{Batch, EngineCache, Json, Query, Question, Verdict};

use crate::proto::canonical_key;

/// Magic header object expected on the first line of a store file.
const HEADER: &str = "{\"kind\":\"gsb-verdict-store\",\"version\":1}";

/// Counters of one [`VerdictStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries currently held in memory.
    pub entries: usize,
    /// Entries appended since the store was opened.
    pub appended: u64,
}

impl StoreStats {
    /// Serializes the counters for the metrics response.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("hits".into(), Json::Num(self.hits as f64)),
            ("misses".into(), Json::Num(self.misses as f64)),
            ("entries".into(), Json::Num(self.entries as f64)),
            ("appended".into(), Json::Num(self.appended as f64)),
        ])
    }
}

/// A content-addressed verdict map, optionally backed by an append-only
/// JSON-lines file.
#[derive(Debug)]
pub struct VerdictStore {
    entries: Mutex<HashMap<String, Arc<str>>>,
    appender: Mutex<Option<BufWriter<File>>>,
    path: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    appended: AtomicU64,
}

impl VerdictStore {
    /// An empty, memory-only store (nothing is ever written to disk).
    #[must_use]
    pub fn in_memory() -> Self {
        VerdictStore {
            entries: Mutex::new(HashMap::new()),
            appender: Mutex::new(None),
            path: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a disk-backed store at `path`, loading every
    /// complete entry line into memory and keeping the file open for
    /// appends. A torn trailing line — a crash mid-append — is skipped.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be read or created, or
    /// an [`std::io::ErrorKind::InvalidData`] error when it exists but
    /// does not start with the store header.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let mut entries = HashMap::new();
        let existed = path.exists();
        if existed {
            let reader = BufReader::new(File::open(path)?);
            let mut lines = reader.lines();
            // An empty file is a fresh store; anything else must lead
            // with the header line.
            if let Some(first) = lines.next() {
                let first = first?;
                if Json::parse(&first).is_err() || first.trim() != HEADER {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{} is not a gsb verdict store", path.display()),
                    ));
                }
            }
            for line in lines {
                let line = line?;
                // Torn or corrupt lines are dropped, not fatal: the
                // store is a cache, and a crash mid-append must not
                // brick the server.
                if let Some((key, verdict)) = parse_entry(&line) {
                    entries.insert(key, verdict);
                }
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if !existed || file.metadata()?.len() == 0 {
            writeln!(file, "{HEADER}")?;
            file.flush()?;
        }
        Ok(VerdictStore {
            entries: Mutex::new(entries),
            appender: Mutex::new(Some(BufWriter::new(file))),
            path: Some(path.to_path_buf()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
        })
    }

    /// The backing file, when disk-backed.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up the canonical key of `query`, counting a hit or miss.
    /// The value is the verdict's compact JSON rendering.
    #[must_use]
    pub fn lookup(&self, query: &Query) -> Option<Arc<str>> {
        let key = canonical_key(query);
        let found = self
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts the verdict for `query`, appending to the backing file.
    /// Indeterminate verdicts (budget/deadline truncations) are never
    /// stored — a better-funded query must be able to retry. Returns
    /// whether the entry was new.
    pub fn insert(&self, query: &Query, verdict: &Verdict) -> bool {
        if verdict.is_indeterminate() {
            return false;
        }
        let key = canonical_key(query);
        let rendered: Arc<str> = verdict.to_json_value().render_compact().into();
        let new = self
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key.clone(), Arc::clone(&rendered))
            .is_none();
        if new {
            self.appended.fetch_add(1, Ordering::Relaxed);
            let mut appender = self.appender.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(file) = appender.as_mut() {
                // One flushed line per verdict: a kill between lines
                // loses nothing, a kill mid-line loses one entry.
                let _ = writeln!(file, "{{\"key\":{key},\"verdict\":{rendered}}}");
                let _ = file.flush();
            }
        }
        new
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap_or_else(|p| p.into_inner()).len(),
            appended: self.appended.load(Ordering::Relaxed),
        }
    }

    /// Precomputes the symmetric-task universe through `max_n`
    /// processes: for every feasible symmetric task `SB(n, m, l, u)`
    /// with `m ≤ n ≤ max_n` **and** every task-zoo entry (which adds
    /// the asymmetric election variants), the classification and
    /// no-communication-witness verdicts are solved through `cache` and
    /// inserted. Returns the number of entries added.
    ///
    /// # Errors
    ///
    /// Returns the first engine error of the batch (the precompute runs
    /// ungoverned, so errors are genuine bugs, not budget trips).
    pub fn build_atlas(
        &self,
        max_n: usize,
        cache: &EngineCache,
    ) -> Result<usize, gsb_engine::Error> {
        let mut specs = Vec::new();
        for n in 1..=max_n {
            for m in 1..=n {
                if let Ok(family) = gsb_core::order::feasible_family(n, m) {
                    specs.extend(family.into_iter().map(|task| task.to_spec()));
                }
            }
            if let Ok(entries) = gsb_core::zoo::catalog(n) {
                specs.extend(entries.into_iter().map(|entry| entry.spec));
            }
        }
        let mut seen = std::collections::HashSet::new();
        specs.retain(|spec| seen.insert(spec.clone()));
        let mut batch = Batch::new();
        for spec in &specs {
            batch.push(Query::new(spec.clone(), Question::Classify));
            batch.push(Query::new(spec.clone(), Question::NoCommWitness));
        }
        let mut added = 0;
        for (query, verdict) in batch.queries().iter().zip(batch.run_with(cache)) {
            if self.insert(query, &verdict?) {
                added += 1;
            }
        }
        Ok(added)
    }
}

/// Parses one `{"key":...,"verdict":...}` entry line; `None` on torn or
/// malformed lines. The key is re-rendered compact so look-ups match
/// byte-for-byte whatever whitespace the line used.
fn parse_entry(line: &str) -> Option<(String, Arc<str>)> {
    let value = Json::parse(line).ok()?;
    let key = value.get("key")?;
    key.get("question")?;
    let verdict = value.get("verdict")?;
    // Only load entries that still parse as verdicts: a corrupt or
    // stale-schema line must not be served back to clients.
    let rendered = verdict.render_compact();
    Verdict::from_json(&rendered).ok()?;
    Some((key.render_compact(), rendered.into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(name: &str, n: usize) -> Query {
        Query::new(
            gsb_engine::named_task(name, n, None).unwrap(),
            Question::Classify,
        )
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = VerdictStore::in_memory();
        let query = classify("wsb", 4);
        assert!(store.lookup(&query).is_none());
        let verdict = query.run_with(&EngineCache::new()).unwrap();
        assert!(store.insert(&query, &verdict));
        assert!(!store.insert(&query, &verdict), "idempotent");
        let served = store.lookup(&query).expect("stored");
        let parsed = Verdict::from_json(&served).unwrap();
        assert_eq!(parsed.solvability, verdict.solvability);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn disk_store_survives_reload_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "gsb-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.jsonl");
        let _ = std::fs::remove_file(&path);

        let query = classify("wsb", 5);
        let verdict = query.run_with(&EngineCache::new()).unwrap();
        {
            let store = VerdictStore::open(&path).unwrap();
            assert!(store.insert(&query, &verdict));
        }
        // Simulate a crash mid-append: a torn half line at the tail.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            write!(file, "{{\"key\":{{\"question\"").unwrap();
        }
        let reloaded = VerdictStore::open(&path).unwrap();
        assert_eq!(reloaded.stats().entries, 1, "torn tail is skipped");
        let served = reloaded.lookup(&query).expect("survives reload");
        assert_eq!(
            Verdict::from_json(&served).unwrap().solvability,
            verdict.solvability
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_store_files_are_refused() {
        let dir = std::env::temp_dir().join(format!("gsb-store-refuse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-store.jsonl");
        std::fs::write(&path, "not a store\n").unwrap();
        assert!(VerdictStore::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atlas_build_covers_the_zoo() {
        let store = VerdictStore::in_memory();
        let cache = EngineCache::new();
        let added = store.build_atlas(4, &cache).unwrap();
        assert!(added > 0);
        // catalog(1) errors (election needs two processes); the build
        // skips it, so coverage starts at n = 2.
        for n in 2..=4 {
            for entry in gsb_core::zoo::catalog(n).unwrap() {
                let query = Query::new(entry.spec.clone(), Question::Classify);
                assert!(
                    store.lookup(&query).is_some(),
                    "zoo entry {} (n={n}) must be precomputed",
                    entry.name
                );
            }
        }
    }
}
