//! The JSON-lines wire protocol: one compact JSON object per line in
//! each direction.
//!
//! Requests:
//!
//! ```json
//! {"kind":"ping"}
//! {"kind":"query","id":7,"question":{"kind":"classify"},"spec":{...},"opts":{...},"attempt":2}
//! {"kind":"metrics"}
//! {"kind":"reload","path":"verdicts.jsonl"}
//! {"kind":"shutdown"}
//! ```
//!
//! `id` is an optional client-chosen correlation number echoed back on
//! the verdict line. `spec` is required for every question except
//! `atlas` (which must omit it or send `null`). `opts` is optional; when
//! present it uses the [`EngineOpts`] JSON schema (so it must carry a
//! `"search"` engine label) and is clamped by the server's
//! [`AdmissionPolicy`](crate::AdmissionPolicy) before execution.
//! `attempt` is an optional retry counter (0 or absent = first try);
//! the server counts positive attempts in its `retries_observed`
//! metric. `reload`'s `path` is optional: absent means re-open the
//! store file the server is already serving.
//!
//! Responses:
//!
//! ```json
//! {"kind":"pong","protocol":1}
//! {"kind":"verdict","id":7,"served_by":"store","verdict":{...}}
//! {"kind":"overloaded","in_flight":64,"limit":64,"retry_after_ms":25}
//! {"kind":"rejected","reason":"..."}
//! {"kind":"error","details":"..."}
//! {"kind":"metrics", ...}
//! {"kind":"reloaded","entries":412,"generation":3,"path":"verdicts.jsonl"}
//! {"kind":"shutting-down"}
//! ```
//!
//! `retry_after_ms` on the overloaded response is an optional hint: a
//! well-behaved client backs off at least that long before retrying.

use gsb_engine::json::{spec_from_json, spec_to_json};
use gsb_engine::{EngineOpts, Json, Query, Question};

/// The protocol version echoed in `pong` responses.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// A solvability question, ready to execute (boxed: a query is two
    /// orders of magnitude bigger than the other variants).
    Query {
        /// Client-chosen correlation id, echoed on the verdict line.
        id: Option<u64>,
        /// Which retry this is (0 = first try); positive attempts are
        /// counted in the server's `retries_observed` metric.
        attempt: u64,
        /// The engine query assembled from `question`/`spec`/`opts`.
        query: Box<Query>,
    },
    /// Snapshot of server, cache, and store counters.
    Metrics,
    /// Hot-swap the verdict store from disk without a restart.
    Reload {
        /// Store file to load; `None` re-opens the served store's path.
        path: Option<String>,
    },
    /// Graceful server shutdown.
    Shutdown,
}

/// Parses one request line. Returns a human-readable rejection detail
/// on malformed input — the server turns it into an `error` response
/// and keeps the connection alive.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Json::parse(line).map_err(|e| e.to_string())?;
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string 'kind' field".to_string())?;
    match kind {
        "ping" => Ok(Request::Ping),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "reload" => {
            let path = match value.get("path") {
                None | Some(Json::Null) => None,
                Some(Json::Str(path)) => Some(path.clone()),
                Some(_) => return Err("field 'path' is not a string".to_string()),
            };
            Ok(Request::Reload { path })
        }
        "query" => {
            let question = Question::from_json_value(
                value
                    .get("question")
                    .ok_or_else(|| "query needs a 'question' field".to_string())?,
            )
            .map_err(|e| e.to_string())?;
            let spec = match value.get("spec") {
                None | Some(Json::Null) => None,
                Some(other) => Some(spec_from_json(other).map_err(|e| e.to_string())?),
            };
            let mut query = match (&question, spec) {
                (Question::Atlas { max_n }, None) => Query::atlas(*max_n),
                (Question::Atlas { .. }, Some(_)) => {
                    return Err("the atlas question is spec-less: omit 'spec'".into())
                }
                (_, Some(spec)) => Query::new(spec, question),
                (_, None) => return Err(format!("question '{question}' needs a 'spec'")),
            };
            if let Some(opts) = value.get("opts") {
                if !matches!(opts, Json::Null) {
                    *query.opts_mut() =
                        EngineOpts::from_json_value(opts).map_err(|e| e.to_string())?;
                }
            }
            let uint_field = |name: &str| -> Result<Option<u64>, String> {
                match value.get(name) {
                    None | Some(Json::Null) => Ok(None),
                    Some(other) => other
                        .as_f64()
                        .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
                        .map(|x| Some(x as u64))
                        .ok_or_else(|| format!("field '{name}' is not a non-negative integer")),
                }
            };
            let id = uint_field("id")?;
            let attempt = uint_field("attempt")?.unwrap_or(0);
            Ok(Request::Query {
                id,
                attempt,
                query: Box::new(query),
            })
        }
        other => Err(format!("unknown request kind '{other}'")),
    }
}

/// Renders a query request line (the client side of [`parse_request`]).
#[must_use]
pub fn render_query(query: &Query, id: Option<u64>) -> String {
    render_query_attempt(query, id, 0)
}

/// [`render_query`] with an explicit retry counter; `attempt` 0 (a
/// first try) is omitted from the wire, so plain requests look exactly
/// as they did before retries existed.
#[must_use]
pub fn render_query_attempt(query: &Query, id: Option<u64>, attempt: u64) -> String {
    let mut pairs = vec![("kind".to_string(), Json::Str("query".into()))];
    if let Some(id) = id {
        pairs.push(("id".into(), Json::Num(id as f64)));
    }
    if attempt > 0 {
        pairs.push(("attempt".into(), Json::Num(attempt as f64)));
    }
    pairs.push(("question".into(), query.question().to_json_value()));
    pairs.push(("spec".into(), query.spec().map_or(Json::Null, spec_to_json)));
    pairs.push(("opts".into(), query.opts().to_json_value()));
    Json::Obj(pairs).render_compact()
}

/// The canonical store/wire key of a query: its question and spec,
/// rendered compact with fixed field order. Engine options are
/// deliberately excluded — complete verdicts are option-independent.
#[must_use]
pub fn canonical_key(query: &Query) -> String {
    Json::Obj(vec![
        ("question".into(), query.question().to_json_value()),
        ("spec".into(), query.spec().map_or(Json::Null, spec_to_json)),
    ])
    .render_compact()
}

/// One-line response constructors (all rendered compact, no newline).
pub mod response {
    use super::{Json, PROTOCOL_VERSION};

    /// `pong` with the protocol version.
    #[must_use]
    pub fn pong() -> String {
        Json::Obj(vec![
            ("kind".into(), Json::Str("pong".into())),
            ("protocol".into(), Json::Num(PROTOCOL_VERSION as f64)),
        ])
        .render_compact()
    }

    /// A verdict line. `verdict_json` is the pre-rendered compact
    /// verdict object (spliced, not re-parsed — store hits stay cheap).
    #[must_use]
    pub fn verdict(id: Option<u64>, served_by: &str, verdict_json: &str) -> String {
        let id = id.map_or("null".to_string(), |x| x.to_string());
        format!(
            "{{\"kind\":\"verdict\",\"id\":{id},\"served_by\":\"{served_by}\",\"verdict\":{verdict_json}}}"
        )
    }

    /// Typed load-shed response. `retry_after_ms` is the optional
    /// back-off hint a self-healing client honors before retrying.
    #[must_use]
    pub fn overloaded(in_flight: usize, limit: usize, retry_after_ms: Option<u64>) -> String {
        let mut pairs = vec![
            ("kind".into(), Json::Str("overloaded".into())),
            ("in_flight".into(), Json::Num(in_flight as f64)),
            ("limit".into(), Json::Num(limit as f64)),
        ];
        if let Some(ms) = retry_after_ms {
            pairs.push(("retry_after_ms".into(), Json::Num(ms as f64)));
        }
        Json::Obj(pairs).render_compact()
    }

    /// Acknowledgement of a completed hot reload.
    #[must_use]
    pub fn reloaded(entries: usize, generation: u64, path: &str) -> String {
        Json::Obj(vec![
            ("kind".into(), Json::Str("reloaded".into())),
            ("entries".into(), Json::Num(entries as f64)),
            ("generation".into(), Json::Num(generation as f64)),
            ("path".into(), Json::Str(path.into())),
        ])
        .render_compact()
    }

    /// Admission rejection (structurally outside the server's limits).
    #[must_use]
    pub fn rejected(reason: &str) -> String {
        Json::Obj(vec![
            ("kind".into(), Json::Str("rejected".into())),
            ("reason".into(), Json::Str(reason.into())),
        ])
        .render_compact()
    }

    /// Malformed request or engine failure.
    #[must_use]
    pub fn error(details: &str) -> String {
        Json::Obj(vec![
            ("kind".into(), Json::Str("error".into())),
            ("details".into(), Json::Str(details.into())),
        ])
        .render_compact()
    }

    /// Acknowledgement of a graceful shutdown request.
    #[must_use]
    pub fn shutting_down() -> String {
        Json::Obj(vec![("kind".into(), Json::Str("shutting-down".into()))]).render_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> gsb_core::GsbSpec {
        gsb_engine::named_task("wsb", 4, None).unwrap()
    }

    #[test]
    fn query_round_trips_through_the_wire_format() {
        let query = Query::new(spec(), Question::SolvableInRounds { rounds: 2 });
        let line = render_query(&query, Some(9));
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            Request::Query {
                id,
                attempt,
                query: parsed,
            } => {
                assert_eq!(id, Some(9));
                assert_eq!(attempt, 0);
                assert_eq!(parsed.spec(), query.spec());
                assert_eq!(parsed.question(), query.question());
            }
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn attempts_round_trip_and_default_to_zero() {
        let query = Query::new(spec(), Question::Classify);
        let first = render_query_attempt(&query, None, 0);
        assert!(!first.contains("attempt"), "attempt 0 stays off the wire");
        let retry = render_query_attempt(&query, Some(3), 2);
        match parse_request(&retry).unwrap() {
            Request::Query { id, attempt, .. } => {
                assert_eq!(id, Some(3));
                assert_eq!(attempt, 2);
            }
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn reload_parses_with_and_without_a_path() {
        match parse_request("{\"kind\":\"reload\"}").unwrap() {
            Request::Reload { path: None } => {}
            other => panic!("expected a pathless reload, got {other:?}"),
        }
        match parse_request("{\"kind\":\"reload\",\"path\":\"v.jsonl\"}").unwrap() {
            Request::Reload { path: Some(p) } => assert_eq!(p, "v.jsonl"),
            other => panic!("expected a reload, got {other:?}"),
        }
        assert!(parse_request("{\"kind\":\"reload\",\"path\":7}").is_err());
    }

    #[test]
    fn atlas_rejects_a_spec_and_others_require_one() {
        let atlas = "{\"kind\":\"query\",\"question\":{\"kind\":\"atlas\",\"max_n\":4}}";
        assert!(matches!(
            parse_request(atlas),
            Ok(Request::Query { query, .. }) if query.spec().is_none()
        ));
        let bad = "{\"kind\":\"query\",\"question\":{\"kind\":\"classify\"}}";
        assert!(parse_request(bad).is_err());
    }

    #[test]
    fn canonical_keys_ignore_opts_and_ids() {
        let a = Query::new(spec(), Question::Classify);
        let mut b = Query::new(spec(), Question::Classify);
        b.opts_mut().conflict_budget = Some(10);
        assert_eq!(canonical_key(&a), canonical_key(&b));
        let c = Query::new(spec(), Question::NoCommWitness);
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn malformed_requests_are_rejected_with_details() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"kind\":\"frobnicate\"}",
            "{\"kind\":\"query\"}",
            "{\"kind\":\"query\",\"question\":{\"kind\":\"classify\"},\"spec\":{},\"id\":-1}",
        ] {
            assert!(parse_request(line).is_err(), "{line:?} must be rejected");
        }
    }
}
