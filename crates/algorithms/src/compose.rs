//! Protocol composition: the constructions of Theorems 1 and 2.
//!
//! Both theorems share one move: first run an index-independent,
//! comparison-based `(2n−1)`-renaming layer, then use the new names as
//! the identities of an inner algorithm. Theorem 1 concludes that
//! identity spaces larger than `[1..2n−1]` add no power; Theorem 2 that
//! comparison-based algorithms are as powerful as unrestricted ones
//! (the renaming layer consumes the raw identity values; the composite
//! interacts with identities only through the comparison-based layer).
//!
//! [`RenameThenProtocol`] mechanizes the move for arbitrary inner
//! protocols: it runs [`RenamingProtocol`]
//! to completion, builds the inner protocol from the acquired name, and
//! forwards all subsequent actions. The inner protocol's register traffic
//! is kept disjoint from the renaming layer's by tagging written values.

use gsb_core::Identity;
use gsb_memory::{Action, Observation, Protocol, Value, Word};

use crate::renaming::RenamingProtocol;

/// Tag separating the renaming layer's `[id, name]` prefix from the
/// inner protocol's payload in a composite register value.
const INNER_TAG: Word = u64::MAX - 1;

/// A factory building the inner protocol once the renaming layer has
/// produced the process's new identity in `[1..2n−1]`.
pub type InnerFactory = dyn Fn(Identity, usize) -> Box<dyn Protocol> + Send + Sync;

/// Theorem 1/2 composition: `(2n−1)`-rename first, then run the inner
/// protocol with the new name as identity.
///
/// Both layers share the single register array in full-information style:
/// before renaming completes, a process's register holds the plain
/// `[id, proposal]` pair; afterwards every inner write is encoded as
/// `[id, final_name, INNER_TAG, inner_payload…]`, so the process's name
/// claim stays visible to still-renaming processes (the renaming layer
/// parses values by their 2-word prefix) while the inner protocol sees
/// only the payloads past the tag.
pub struct RenameThenProtocol {
    renaming: RenamingProtocol,
    inner: Option<Box<dyn Protocol>>,
    /// `[raw_id, final_name]`, fixed once renaming completes.
    outer_prefix: Vec<Word>,
    raw_id: Word,
    build_inner: std::sync::Arc<InnerFactory>,
    n: usize,
}

impl std::fmt::Debug for RenameThenProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RenameThenProtocol")
            .field("renamed", &self.inner.is_some())
            .finish_non_exhaustive()
    }
}

impl RenameThenProtocol {
    /// Creates the composite for a process with raw identity `id` among
    /// `n`, with `build_inner` constructing the post-renaming protocol.
    #[must_use]
    pub fn new(id: Identity, n: usize, build_inner: std::sync::Arc<InnerFactory>) -> Self {
        RenameThenProtocol {
            renaming: RenamingProtocol::new(id),
            inner: None,
            outer_prefix: Vec::new(),
            raw_id: u64::from(id.get()),
            build_inner,
            n,
        }
    }

    fn wrap_inner_action(&self, action: Action) -> Action {
        match action {
            Action::Write(mut value) => {
                let mut full = self.outer_prefix.clone();
                full.push(INNER_TAG);
                full.append(&mut value);
                Action::Write(full)
            }
            other => other,
        }
    }

    fn unwrap_inner_observation(observation: Observation) -> Observation {
        match observation {
            Observation::Snapshot(snap) => {
                Observation::Snapshot(snap.into_iter().map(Self::strip_prefix).collect())
            }
            Observation::CellValue(value) => Observation::CellValue(Self::strip_prefix(value)),
            other => other,
        }
    }

    fn strip_prefix(value: Option<Value>) -> Option<Value> {
        match value {
            Some(v) if v.len() >= 3 && v[2] == INNER_TAG => Some(v[3..].to_vec()),
            // Values still belonging to the renaming layer are invisible
            // to the inner protocol.
            _ => None,
        }
    }
}

impl Protocol for RenameThenProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        if let Some(inner) = &mut self.inner {
            let inner_obs = Self::unwrap_inner_observation(observation);
            let action = inner.next_action(inner_obs);
            return self.wrap_inner_action(action);
        }
        match self.renaming.next_action(observation) {
            Action::Decide(name) => {
                // Renaming layer finished: fix the full-information prefix,
                // boot the inner protocol with the new identity, and
                // deliver its first activation.
                self.outer_prefix = vec![self.raw_id, name as Word];
                let new_id = Identity::new(name as u32).expect("names are ≥ 1");
                let mut inner = (self.build_inner)(new_id, self.n);
                let first = inner.next_action(Observation::Start);
                self.inner = Some(inner);
                self.wrap_inner_action(first)
            }
            other => other,
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(RenameThenProtocol {
            renaming: self.renaming.clone(),
            inner: self.inner.as_ref().map(|p| p.boxed_clone()),
            outer_prefix: self.outer_prefix.clone(),
            raw_id: self.raw_id,
            build_inner: std::sync::Arc::clone(&self.build_inner),
            n: self.n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::free::FreeDecisionProtocol;
    use crate::harness::{sweep_exhaustive, sweep_random, AlgorithmUnderTest};
    use crate::slot::SlotRenamingProtocol;
    use gsb_core::SymmetricGsb;
    use gsb_memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};
    use std::sync::Arc;

    fn ids(values: &[u32]) -> Vec<Identity> {
        values.iter().map(|&v| Identity::new(v).unwrap()).collect()
    }

    #[test]
    fn theorem_1_free_solver_with_huge_identities() {
        // x-bounded homonymous renaming with identities up to 10⁶:
        // rename down to [1..2n−1], then decide δ(new name).
        let n = 4;
        let spec = SymmetricGsb::homonymous_renaming(n, 2).unwrap().to_spec();
        let spec_inner = spec.clone();
        let build: Arc<InnerFactory> = Arc::new(move |id, _n| {
            Box::new(FreeDecisionProtocol::new(&spec_inner, id).expect("solvable"))
        });
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, n| {
            Box::new(RenameThenProtocol::new(id, n, Arc::clone(&build)))
        });
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        sweep_random(&algo, 100_000, 40, 83).unwrap();
    }

    #[test]
    fn theorem_2_composite_with_register_based_inner() {
        // Inner protocol that itself uses registers and oracles: Figure 2
        // slot→renaming, running on renamed identities, raw ids huge.
        let n = 3;
        let spec = SymmetricGsb::renaming(n, n + 1).unwrap().to_spec();
        let build: Arc<InnerFactory> = Arc::new(|id, n| Box::new(SlotRenamingProtocol::new(id, n)));
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, n| {
            Box::new(RenameThenProtocol::new(id, n, Arc::clone(&build)))
        });
        let oracles = move || -> Vec<Box<dyn Oracle>> {
            let slot = SymmetricGsb::slot(n, n - 1).unwrap().to_spec();
            vec![Box::new(
                GsbOracle::new(slot, OraclePolicy::Seeded(13)).unwrap(),
            )]
        };
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &oracles,
        };
        sweep_random(&algo, 50_000, 40, 89).unwrap();
    }

    #[test]
    fn composite_exhaustive_two_processes() {
        let n = 2;
        let spec = SymmetricGsb::loose_renaming(n).unwrap().to_spec();
        let spec_inner = spec.clone();
        let build: Arc<InnerFactory> = Arc::new(move |id, _n| {
            Box::new(FreeDecisionProtocol::new(&spec_inner, id).expect("solvable"))
        });
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, n| {
            Box::new(RenameThenProtocol::new(id, n, Arc::clone(&build)))
        });
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        sweep_exhaustive(&algo, &ids(&[977, 41]), 100_000).unwrap();
    }

    #[test]
    fn composite_encoding_round_trips() {
        // Full-information value [raw_id, name, TAG, payload…] keeps the
        // renaming claim visible while the inner layer sees the payload.
        let composite = vec![42u64, 3, INNER_TAG, 7, 8];
        assert_eq!(
            RenameThenProtocol::strip_prefix(Some(composite.clone())),
            Some(vec![7, 8])
        );
        // Renaming-layer values are hidden from the inner protocol.
        assert_eq!(RenameThenProtocol::strip_prefix(Some(vec![3, 1])), None);
        assert_eq!(RenameThenProtocol::strip_prefix(None), None);
    }

    #[test]
    fn composite_preserves_name_claims_against_laggards() {
        // Regression for the overwrite hazard: one process renames and
        // starts writing inner data while another is still renaming; the
        // laggard must not steal the finished process's name.
        let n = 3;
        let spec = SymmetricGsb::renaming(n, 2 * n - 1).unwrap().to_spec();
        let spec_inner = SymmetricGsb::loose_renaming(n).unwrap().to_spec();
        let build: Arc<InnerFactory> = Arc::new(move |id, _n| {
            Box::new(FreeDecisionProtocol::new(&spec_inner, id).expect("solvable"))
        });
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, n| {
            Box::new(RenameThenProtocol::new(id, n, Arc::clone(&build)))
        });
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        // Adversarial scheduling maximizes the laggard window.
        crate::harness::sweep_adversarial(&algo, 500, 80, 97).unwrap();
    }
}
