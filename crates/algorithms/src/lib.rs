//! # gsb-algorithms — distributed algorithms for GSB tasks
//!
//! Executable versions of every algorithm and reduction in *The Universe
//! of Symmetry Breaking Tasks*, built on the `gsb-memory` simulator:
//!
//! | Paper result | Module |
//! |---|---|
//! | `(2n−1)`-renaming (Theorems 1–2's tool, \[7\]) | [`renaming`] |
//! | Theorem 9 communication-free solvers, Corollary 2, Theorem 1's identity-space reduction | [`free`] |
//! | Theorem 8: perfect renaming is universal | [`universal`] |
//! | Figure 2 / Theorem 12: `(n+1)`-renaming from an `(n−1)`-slot object | [`slot`] |
//! | WSB ↔ `(2n−2)`-renaming (easy direction), Corollary 4 `k`-WSB | [`wsb`] |
//! | Election from test&set / perfect renaming (vs. Theorem 11) | [`election`] |
//! | Theorem 1/2 layer composition (rename, then run anything) | [`compose`] |
//!
//! The [`harness`] module is the validation entry point: seeded-random,
//! adversarial and exhaustive schedule sweeps, plus the paper's
//! index-independence and comparison-based replay checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compose;
pub mod election;
mod error;
pub mod free;
pub mod harness;
pub mod renaming;
pub mod slot;
pub mod universal;
pub mod wsb;

pub use compose::{InnerFactory, RenameThenProtocol};
pub use election::{ElectionFromPerfectRenaming, ElectionFromTestAndSet};
pub use error::{Error, Result};
pub use free::{homonymous_decision, FreeDecisionProtocol, RenamedFreeProtocol};
pub use harness::{
    check_hygiene, run_synchronous, sweep_adversarial, sweep_exhaustive, sweep_random,
    AlgorithmUnderTest, SweepReport,
};
pub use renaming::{IsRenamingProtocol, RenamingProtocol};
pub use slot::SlotRenamingProtocol;
pub use universal::UniversalGsbProtocol;
pub use wsb::{wsb_is_two_slot, KWsbFromRenamingProtocol, WsbFromRenamingProtocol};
