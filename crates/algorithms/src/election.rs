//! Election (Section 3.2, Theorem 11).
//!
//! The election GSB task — exactly one process outputs 1, the other `n−1`
//! output 2 — is **not wait-free solvable** from registers (Theorem 11;
//! verified computationally in `gsb-topology`). It *is* solvable from
//! stronger objects, which these protocols demonstrate:
//!
//! * [`ElectionFromTestAndSet`] — the winner of an (adaptive) test&set
//!   object becomes the leader. This also illustrates the paper's remark
//!   that election GSB is the *non-adaptive* weakening of test&set.
//! * [`ElectionFromPerfectRenaming`] — Theorem 8 specialized: the process
//!   renamed `1` becomes the leader.

use gsb_memory::{Action, Observation, Protocol};

/// Which oracle slot holds the strong object (test&set or perfect
/// renaming).
pub const ELECTION_ORACLE: usize = 0;

/// Election from a test&set object: reply 1 (winner) → decide 1, reply 2
/// → decide 2.
#[derive(Debug, Clone, Default)]
pub struct ElectionFromTestAndSet;

impl ElectionFromTestAndSet {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        ElectionFromTestAndSet
    }
}

impl Protocol for ElectionFromTestAndSet {
    fn next_action(&mut self, observation: Observation) -> Action {
        match observation {
            Observation::Start => Action::Oracle {
                object: ELECTION_ORACLE,
                input: 0,
            },
            Observation::OracleReply(reply) => Action::Decide(if reply == 1 { 1 } else { 2 }),
            other => unreachable!("election never observes {other:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// Election from a perfect-renaming object: the process named 1 leads.
#[derive(Debug, Clone, Default)]
pub struct ElectionFromPerfectRenaming;

impl ElectionFromPerfectRenaming {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        ElectionFromPerfectRenaming
    }
}

impl Protocol for ElectionFromPerfectRenaming {
    fn next_action(&mut self, observation: Observation) -> Action {
        match observation {
            Observation::Start => Action::Oracle {
                object: ELECTION_ORACLE,
                input: 0,
            },
            Observation::OracleReply(name) => Action::Decide(if name == 1 { 1 } else { 2 }),
            other => unreachable!("election never observes {other:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{sweep_exhaustive, sweep_random, AlgorithmUnderTest};
    use gsb_core::{GsbSpec, Identity, SymmetricGsb};
    use gsb_memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory, TestAndSetOracle};

    #[test]
    fn election_from_test_and_set() {
        for n in [2usize, 3, 5, 7] {
            let factory: Box<ProtocolFactory<'static>> =
                Box::new(|_pid, _id, _n| Box::new(ElectionFromTestAndSet::new()));
            let oracles = || vec![Box::new(TestAndSetOracle::new()) as Box<dyn Oracle>];
            let algo = AlgorithmUnderTest {
                spec: GsbSpec::election(n).unwrap(),
                factory: &factory,
                oracles: &oracles,
            };
            sweep_random(&algo, (2 * n - 1) as u32, 40, 41)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn election_from_perfect_renaming() {
        for n in [2usize, 4, 6] {
            for policy in [OraclePolicy::FirstFit, OraclePolicy::Seeded(6)] {
                let factory: Box<ProtocolFactory<'static>> =
                    Box::new(|_pid, _id, _n| Box::new(ElectionFromPerfectRenaming::new()));
                let oracles = move || {
                    let spec = SymmetricGsb::perfect_renaming(n).unwrap().to_spec();
                    vec![Box::new(GsbOracle::new(spec, policy).unwrap()) as Box<dyn Oracle>]
                };
                let algo = AlgorithmUnderTest {
                    spec: GsbSpec::election(n).unwrap(),
                    factory: &factory,
                    oracles: &oracles,
                };
                sweep_random(&algo, (2 * n - 1) as u32, 30, 43)
                    .unwrap_or_else(|e| panic!("n={n} {policy:?}: {e}"));
            }
        }
    }

    #[test]
    fn election_exhaustive_three_processes() {
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, _id, _n| Box::new(ElectionFromTestAndSet::new()));
        let oracles = || vec![Box::new(TestAndSetOracle::new()) as Box<dyn Oracle>];
        let algo = AlgorithmUnderTest {
            spec: GsbSpec::election(3).unwrap(),
            factory: &factory,
            oracles: &oracles,
        };
        let ids: Vec<Identity> = [2u32, 5, 1]
            .iter()
            .map(|&v| Identity::new(v).unwrap())
            .collect();
        let report = sweep_exhaustive(&algo, &ids, 1000).unwrap();
        assert_eq!(report.runs, 90); // interleavings of three 2-step runs
    }

    #[test]
    fn election_solves_wsb_but_not_conversely() {
        // Election's outputs are WSB outputs (containment) — run the
        // election protocol, check it against the *WSB* spec.
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, _id, _n| Box::new(ElectionFromTestAndSet::new()));
        let oracles = || vec![Box::new(TestAndSetOracle::new()) as Box<dyn Oracle>];
        let algo = AlgorithmUnderTest {
            spec: SymmetricGsb::wsb(5).unwrap().to_spec(),
            factory: &factory,
            oracles: &oracles,
        };
        sweep_random(&algo, 9, 30, 47).unwrap();
        // The converse separation (WSB ⇏ election) is Theorem 11 +
        // [17]: see gsb-core's classifier and gsb-topology's checker.
        use gsb_core::Solvability;
        assert_eq!(
            GsbSpec::election(6).unwrap().classify().solvability,
            Solvability::NotWaitFreeSolvable
        );
        assert_eq!(
            SymmetricGsb::wsb(6).unwrap().classify().solvability,
            Solvability::WaitFreeSolvable
        );
    }
}
