//! Weak symmetry breaking and its renaming reductions
//! (Section 5.3, Corollary 4, Section 6's equivalences).
//!
//! * [`WsbFromRenamingProtocol`] — WSB from a `(2n−2)`-renaming object:
//!   decide 1 if the new name is `≤ n−1`, else 2. Pigeonhole on the
//!   `2n−2` distinct names forbids unanimity. This is the easy direction
//!   of the `WSB ≡ (2n−2)-renaming` equivalence (\[29\]) the paper builds
//!   Theorem 10 on.
//! * [`KWsbFromRenamingProtocol`] — **Corollary 4**: `k`-WSB with no
//!   further communication from `2(n−k)`-renaming: decide 1 iff the new
//!   name is `≤ n−k`. Each side gets between `k` and `n−k` deciders.
//! * [`wsb_is_two_slot`] — WSB and the 2-slot task are the *same* task
//!   (equal kernel sets), so the identity reduction connects them.

use gsb_core::SymmetricGsb;
use gsb_memory::{Action, Observation, Protocol};

use crate::error::{Error, Result};

/// Which oracle slot holds the renaming object.
pub const RENAMING_ORACLE: usize = 0;

/// WSB from `(2n−2)`-renaming: decide `1` iff the acquired name is
/// `≤ n − 1`.
#[derive(Debug, Clone)]
pub struct WsbFromRenamingProtocol {
    threshold: usize,
}

impl WsbFromRenamingProtocol {
    /// Creates the protocol for an `n`-process system (`n ≥ 2`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(Error::Unsupported {
                reason: "WSB needs at least two processes".into(),
            });
        }
        Ok(WsbFromRenamingProtocol { threshold: n - 1 })
    }
}

impl Protocol for WsbFromRenamingProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        match observation {
            Observation::Start => Action::Oracle {
                object: RENAMING_ORACLE,
                input: 0,
            },
            Observation::OracleReply(name) => {
                Action::Decide(if (name as usize) <= self.threshold {
                    1
                } else {
                    2
                })
            }
            other => unreachable!("WSB-from-renaming never observes {other:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// Corollary 4: `k`-WSB from `2(n−k)`-renaming, deciding `1` iff the name
/// is `≤ n − k`.
#[derive(Debug, Clone)]
pub struct KWsbFromRenamingProtocol {
    threshold: usize,
}

impl KWsbFromRenamingProtocol {
    /// Creates the protocol for `k`-WSB on `n` processes (`1 ≤ k ≤ n/2`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for out-of-range `k`.
    pub fn new(n: usize, k: usize) -> Result<Self> {
        if k == 0 || 2 * k > n {
            return Err(Error::Unsupported {
                reason: format!("k-WSB requires 1 ≤ k ≤ n/2, got k = {k}, n = {n}"),
            });
        }
        Ok(KWsbFromRenamingProtocol { threshold: n - k })
    }

    /// The renaming task whose oracle this protocol expects:
    /// `2(n−k)`-renaming.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Core`] for malformed parameters.
    pub fn oracle_spec(n: usize, k: usize) -> Result<SymmetricGsb> {
        SymmetricGsb::renaming(n, 2 * (n - k)).map_err(Error::Core)
    }
}

impl Protocol for KWsbFromRenamingProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        match observation {
            Observation::Start => Action::Oracle {
                object: RENAMING_ORACLE,
                input: 0,
            },
            Observation::OracleReply(name) => {
                Action::Decide(if (name as usize) <= self.threshold {
                    1
                } else {
                    2
                })
            }
            other => unreachable!("k-WSB-from-renaming never observes {other:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// WSB `⟨n, 2, 1, n−1⟩` and the 2-slot task `⟨n, 2, 1, n⟩` are synonyms
/// (the same task) — Section 3.2's observation "the WSB task is nothing
/// else than the 2-slot task". Returns both for callers wanting the pair.
///
/// # Errors
///
/// Returns [`Error::Core`] for `n < 2`.
pub fn wsb_is_two_slot(n: usize) -> Result<(SymmetricGsb, SymmetricGsb)> {
    let wsb = SymmetricGsb::wsb(n).map_err(Error::Core)?;
    let two_slot = SymmetricGsb::slot(n, 2).map_err(Error::Core)?;
    debug_assert!(wsb.is_synonym_of(&two_slot));
    Ok((wsb, two_slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{sweep_exhaustive, sweep_random, AlgorithmUnderTest};
    use gsb_core::Identity;
    use gsb_memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};

    fn renaming_oracles(n: usize, m: usize, policy: OraclePolicy) -> Vec<Box<dyn Oracle>> {
        let spec = SymmetricGsb::renaming(n, m).unwrap().to_spec();
        vec![Box::new(GsbOracle::new(spec, policy).unwrap())]
    }

    #[test]
    fn wsb_from_2n_minus_2_renaming() {
        for n in [2usize, 3, 4, 6, 8] {
            for policy in [
                OraclePolicy::FirstFit,
                OraclePolicy::LastFit,
                OraclePolicy::Seeded(2),
            ] {
                let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, n| {
                    Box::new(WsbFromRenamingProtocol::new(n).unwrap())
                });
                let oracles = move || renaming_oracles(n, (2 * n - 2).max(n), policy);
                let algo = AlgorithmUnderTest {
                    spec: SymmetricGsb::wsb(n).unwrap().to_spec(),
                    factory: &factory,
                    oracles: &oracles,
                };
                sweep_random(&algo, (2 * n - 1) as u32, 30, 31)
                    .unwrap_or_else(|e| panic!("n={n} {policy:?}: {e}"));
            }
        }
    }

    #[test]
    fn corollary_4_k_wsb() {
        for (n, k) in [(4usize, 2usize), (6, 2), (6, 3), (8, 3), (9, 4)] {
            for policy in [OraclePolicy::FirstFit, OraclePolicy::Seeded(4)] {
                let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, n| {
                    Box::new(KWsbFromRenamingProtocol::new(n, k).unwrap())
                });
                let oracles = move || renaming_oracles(n, 2 * (n - k), policy);
                let algo = AlgorithmUnderTest {
                    spec: SymmetricGsb::k_wsb(n, k).unwrap().to_spec(),
                    factory: &factory,
                    oracles: &oracles,
                };
                sweep_random(&algo, (2 * n - 1) as u32, 30, 37)
                    .unwrap_or_else(|e| panic!("n={n} k={k} {policy:?}: {e}"));
            }
        }
    }

    #[test]
    fn k_wsb_exhaustive_small() {
        let (n, k) = (4usize, 2usize);
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(move |_pid, _id, n| Box::new(KWsbFromRenamingProtocol::new(n, k).unwrap()));
        let oracles = move || renaming_oracles(n, 2 * (n - k), OraclePolicy::FirstFit);
        let algo = AlgorithmUnderTest {
            spec: SymmetricGsb::k_wsb(n, k).unwrap().to_spec(),
            factory: &factory,
            oracles: &oracles,
        };
        let ids: Vec<Identity> = [2u32, 7, 4, 1]
            .iter()
            .map(|&v| Identity::new(v).unwrap())
            .collect();
        sweep_exhaustive(&algo, &ids, 10_000).unwrap();
    }

    #[test]
    fn constructor_validation() {
        assert!(WsbFromRenamingProtocol::new(1).is_err());
        assert!(KWsbFromRenamingProtocol::new(4, 0).is_err());
        assert!(KWsbFromRenamingProtocol::new(4, 3).is_err());
        assert!(KWsbFromRenamingProtocol::oracle_spec(6, 2).is_ok());
    }

    #[test]
    fn wsb_two_slot_synonym() {
        for n in 2..=8 {
            let (wsb, two_slot) = wsb_is_two_slot(n).unwrap();
            assert!(wsb.is_synonym_of(&two_slot), "n = {n}");
        }
    }

    #[test]
    fn pigeonhole_forbids_unanimity() {
        // Direct check of the reduction's counting argument: any set of n
        // distinct names in [1..2n−2] has one ≤ n−1 and one ≥ n.
        let n = 5;
        let names: Vec<usize> = (n - 1..2 * n - 1).collect(); // worst case high
        assert!(names.iter().any(|&x| x < n));
        assert!(names.iter().any(|&x| x >= n));
    }
}
