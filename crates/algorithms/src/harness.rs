//! Validation harness: runs an algorithm over many schedules, crash plans
//! and identity assignments, asserting the task specification on every
//! outcome.
//!
//! Wait-free correctness is a ∀-schedules property; this harness is how
//! the repository's tests, benches and examples all quantify over runs:
//! seeded-random and adversarial sweeps for breadth, exhaustive
//! enumeration for small systems, plus the paper's two hygiene replays
//! (index-independence, comparison-basedness).

use gsb_core::{GsbSpec, Identity};
use gsb_memory::enumerate::{enumerate_schedules, permutations};
use gsb_memory::{
    build_executor, replay_index_permuted, replay_order_isomorphic, AdversarialScheduler,
    CrashPlan, Oracle, Pid, ProtocolFactory, RoundRobinScheduler, RunOutcome, SeededScheduler,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{Error, Result};

/// Everything needed to run one algorithm configuration: the task it
/// solves, how to build its protocols, and how to build its oracles.
pub struct AlgorithmUnderTest<'a> {
    /// The task specification the outcomes are checked against.
    pub spec: GsbSpec,
    /// Builds the per-process protocol instances.
    pub factory: &'a ProtocolFactory<'a>,
    /// Builds a fresh set of oracle objects for each run.
    pub oracles: &'a dyn Fn() -> Vec<Box<dyn Oracle>>,
}

impl std::fmt::Debug for AlgorithmUnderTest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmUnderTest")
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// Summary of a validation sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Runs executed.
    pub runs: usize,
    /// Total steps across all runs.
    pub total_steps: usize,
    /// Maximum steps of any single run (the wait-free worst case seen).
    pub max_steps: usize,
    /// Runs that contained crashes.
    pub crashed_runs: usize,
}

impl SweepReport {
    fn absorb(&mut self, outcome: &RunOutcome, crashed: bool) {
        self.runs += 1;
        self.total_steps += outcome.steps;
        self.max_steps = self.max_steps.max(outcome.steps);
        if crashed {
            self.crashed_runs += 1;
        }
    }
}

/// Default per-run step budget used by the sweeps.
pub const DEFAULT_STEP_LIMIT: usize = 200_000;

/// Generates a pseudo-random identity assignment for `n` processes from
/// the space `[1..bound]`.
///
/// # Panics
///
/// Panics if `bound < n`.
#[must_use]
pub fn random_ids(n: usize, bound: u32, rng: &mut StdRng) -> Vec<Identity> {
    assert!(bound as usize >= n, "need at least n identities");
    let mut pool: Vec<u32> = (1..=bound).collect();
    pool.shuffle(rng);
    pool.truncate(n);
    pool.into_iter()
        .map(|v| Identity::new(v).expect("non-zero identity"))
        .collect()
}

/// Runs `runs` seeded-random schedules (half of them with random crash
/// plans), checking every outcome against the spec.
///
/// # Errors
///
/// Returns [`Error::SpecViolation`] on the first violating run, and
/// propagates simulation errors.
pub fn sweep_random(
    algo: &AlgorithmUnderTest<'_>,
    id_bound: u32,
    runs: usize,
    seed: u64,
) -> Result<SweepReport> {
    let n = algo.spec.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = SweepReport::default();
    for run in 0..runs {
        let ids = random_ids(n, id_bound, &mut rng);
        let crash = run % 2 == 1;
        let plan = if crash {
            let count = rng.gen_range(1..n.max(2));
            let crashes: Vec<(Pid, usize)> = (0..count)
                .map(|_| (Pid::new(rng.gen_range(0..n)), rng.gen_range(0..30)))
                .collect();
            CrashPlan::with_crashes(n, &crashes)
        } else {
            CrashPlan::none(n)
        };
        let mut exec = build_executor(algo.factory, &ids, (algo.oracles)());
        let mut sched = SeededScheduler::new(seed.wrapping_add(run as u64));
        let outcome = exec.run(&mut sched, &plan, DEFAULT_STEP_LIMIT)?;
        if !outcome.satisfies(&algo.spec) {
            return Err(Error::SpecViolation {
                details: format!(
                    "random sweep run {run} (ids {ids:?}): decisions {:?} violate {}",
                    outcome.decisions, algo.spec
                ),
            });
        }
        report.absorb(&outcome, plan.crash_count() > 0);
    }
    Ok(report)
}

/// Runs `runs` adversarial schedules (solo bursts, extremal picks), again
/// with interleaved crash plans.
///
/// # Errors
///
/// Returns [`Error::SpecViolation`] on the first violating run, and
/// propagates simulation errors.
pub fn sweep_adversarial(
    algo: &AlgorithmUnderTest<'_>,
    id_bound: u32,
    runs: usize,
    seed: u64,
) -> Result<SweepReport> {
    let n = algo.spec.n();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xadd5);
    let mut report = SweepReport::default();
    for run in 0..runs {
        let ids = random_ids(n, id_bound, &mut rng);
        let plan = if run % 3 == 2 {
            CrashPlan::with_crashes(n, &[(Pid::new(rng.gen_range(0..n)), rng.gen_range(0..10))])
        } else {
            CrashPlan::none(n)
        };
        let mut exec = build_executor(algo.factory, &ids, (algo.oracles)());
        let mut sched = AdversarialScheduler::new(seed.wrapping_add(run as u64), 40);
        let outcome = exec.run(&mut sched, &plan, DEFAULT_STEP_LIMIT)?;
        if !outcome.satisfies(&algo.spec) {
            return Err(Error::SpecViolation {
                details: format!(
                    "adversarial sweep run {run} (ids {ids:?}): decisions {:?} violate {}",
                    outcome.decisions, algo.spec
                ),
            });
        }
        report.absorb(&outcome, plan.crash_count() > 0);
    }
    Ok(report)
}

/// Exhaustively enumerates **every** schedule for the given identity
/// assignment, checking the spec at every leaf and decision-prefix
/// completability at every node. Only for small `n` / short algorithms.
///
/// # Errors
///
/// Returns [`Error::SpecViolation`] on the first violating run, and
/// propagates simulation errors.
pub fn sweep_exhaustive(
    algo: &AlgorithmUnderTest<'_>,
    ids: &[Identity],
    step_limit: usize,
) -> Result<SweepReport> {
    let exec = build_executor(algo.factory, ids, (algo.oracles)());
    let mut report = SweepReport::default();
    let violation = std::cell::RefCell::new(None::<String>);
    enumerate_schedules(
        &exec,
        step_limit,
        &mut |node| {
            // Prefix check: decided values must stay completable.
            let outcome = node.outcome();
            if !outcome.satisfies(&algo.spec) {
                *violation.borrow_mut() = Some(format!(
                    "prefix after {} steps: decisions {:?} not completable for {}",
                    outcome.steps, outcome.decisions, algo.spec
                ));
                return false;
            }
            true
        },
        &mut |outcome| {
            if !outcome.satisfies(&algo.spec) {
                *violation.borrow_mut() = Some(format!(
                    "complete run: decisions {:?} violate {}",
                    outcome.decisions, algo.spec
                ));
                return false;
            }
            report.absorb(outcome, false);
            true
        },
    )?;
    match violation.into_inner() {
        Some(details) => Err(Error::SpecViolation { details }),
        None => Ok(report),
    }
}

/// Checks the paper's hygiene conditions on one recorded run: replays it
/// under every index permutation (index-independence) and under an
/// order-isomorphic identity shift (comparison-basedness).
///
/// Oracles must be deterministic for the replay to be meaningful — pass a
/// factory building deterministic-policy oracles.
///
/// # Errors
///
/// Returns [`Error::SpecViolation`] naming the failing permutation, and
/// propagates simulation errors.
pub fn check_hygiene(
    algo: &AlgorithmUnderTest<'_>,
    ids: &[Identity],
    shifted_ids: &[Identity],
    seed: u64,
) -> Result<()> {
    let n = algo.spec.n();
    let mut exec = build_executor(algo.factory, ids, (algo.oracles)());
    let outcome = exec.run(
        &mut SeededScheduler::new(seed),
        &CrashPlan::none(n),
        DEFAULT_STEP_LIMIT,
    )?;
    let schedule = outcome.history.schedule();
    for permutation in permutations(n) {
        let ok = replay_index_permuted(
            algo.factory,
            ids,
            &schedule,
            &outcome.decisions,
            &permutation,
            algo.oracles,
        )?;
        if !ok {
            return Err(Error::SpecViolation {
                details: format!("index-independence fails under permutation {permutation:?}"),
            });
        }
    }
    let ok = replay_order_isomorphic(
        algo.factory,
        shifted_ids,
        &schedule,
        &outcome.decisions,
        algo.oracles,
    )?;
    if !ok {
        return Err(Error::SpecViolation {
            details: "comparison-basedness fails under order-isomorphic identities".into(),
        });
    }
    Ok(())
}

/// Runs one synchronous (round-robin), crash-free run and returns its
/// outcome — the "quick look" entry point used by examples.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_synchronous(algo: &AlgorithmUnderTest<'_>, ids: &[Identity]) -> Result<RunOutcome> {
    let mut exec = build_executor(algo.factory, ids, (algo.oracles)());
    let outcome = exec.run(
        &mut RoundRobinScheduler::new(),
        &CrashPlan::none(ids.len()),
        DEFAULT_STEP_LIMIT,
    )?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_memory::{Action, Observation, Protocol};

    /// Decides 1 immediately — solves ⟨n, 1, 0, n⟩.
    #[derive(Debug, Clone)]
    struct AlwaysOne;

    impl Protocol for AlwaysOne {
        fn next_action(&mut self, _obs: Observation) -> Action {
            Action::Decide(1)
        }
        fn boxed_clone(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn harness_accepts_a_correct_algorithm() {
        let spec = gsb_core::SymmetricGsb::new(3, 1, 0, 3).unwrap().to_spec();
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_, _, _| Box::new(AlwaysOne) as Box<dyn Protocol>);
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        let report = sweep_random(&algo, 5, 20, 1).unwrap();
        assert_eq!(report.runs, 20);
        assert!(report.crashed_runs > 0);
        let report = sweep_adversarial(&algo, 5, 10, 2).unwrap();
        assert_eq!(report.runs, 10);
        let ids: Vec<Identity> = [1u32, 2, 3]
            .iter()
            .map(|&v| Identity::new(v).unwrap())
            .collect();
        let report = sweep_exhaustive(&algo, &ids, 100).unwrap();
        assert_eq!(report.runs, 6); // 3 one-step processes → 3! orders
    }

    #[test]
    fn harness_rejects_an_incorrect_algorithm() {
        // AlwaysOne does NOT solve WSB (all processes decide the same).
        let spec = gsb_core::SymmetricGsb::wsb(3).unwrap().to_spec();
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_, _, _| Box::new(AlwaysOne) as Box<dyn Protocol>);
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        let err = sweep_random(&algo, 5, 5, 3).unwrap_err();
        assert!(matches!(err, Error::SpecViolation { .. }));
        let ids: Vec<Identity> = [1u32, 2, 3]
            .iter()
            .map(|&v| Identity::new(v).unwrap())
            .collect();
        assert!(sweep_exhaustive(&algo, &ids, 100).is_err());
    }

    #[test]
    fn random_ids_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let ids = random_ids(4, 7, &mut rng);
            assert_eq!(ids.len(), 4);
            let mut raw: Vec<u32> = ids.iter().map(|i| i.get()).collect();
            raw.sort_unstable();
            raw.dedup();
            assert_eq!(raw.len(), 4);
            assert!(raw.iter().all(|&v| (1..=7).contains(&v)));
        }
    }
}
