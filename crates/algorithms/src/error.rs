//! Error types for the `gsb-algorithms` crate.

use std::fmt;

/// A specialized [`Result`](std::result::Result) type for `gsb-algorithms`.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type for algorithm construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The task/parameters do not fit the algorithm's preconditions.
    Unsupported {
        /// Human-readable description.
        reason: String,
    },
    /// A core-model error (invalid spec, infeasible task…).
    Core(gsb_core::Error),
    /// A simulation error (step limit, protocol violation…).
    Memory(gsb_memory::Error),
    /// A validation sweep found a run violating the task specification.
    SpecViolation {
        /// Description of the violating run (seed/schedule and outputs).
        details: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unsupported { reason } => write!(f, "unsupported configuration: {reason}"),
            Error::Core(e) => write!(f, "core error: {e}"),
            Error::Memory(e) => write!(f, "simulation error: {e}"),
            Error::SpecViolation { details } => write!(f, "specification violated: {details}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gsb_core::Error> for Error {
    fn from(e: gsb_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<gsb_memory::Error> for Error {
    fn from(e: gsb_memory::Error) -> Self {
        Error::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let core: Error = gsb_core::Error::DuplicateIdentity { id: 3 }.into();
        assert!(core.to_string().contains("duplicate"));
        let mem: Error = gsb_memory::Error::InvalidConfig { reason: "x".into() }.into();
        assert!(mem.to_string().contains("simulation error"));
        use std::error::Error as _;
        assert!(core.source().is_some());
    }
}
