//! Figure 2 / Theorem 12: `(n+1)`-renaming from an `(n−1)`-slot object.
//!
//! The algorithm, verbatim from the paper (code for `p_i`):
//!
//! ```text
//! operation new_name():
//! (01) my_slot_i ← KS.slot_request_{n−1}();
//! (02) STATE[i] ← ⟨my_slot_i, id_i⟩; (slot_i, ids_i) ← STATE.snapshot();
//! (03) if (∀ j ≠ i : slot_i[j] ≠ my_slot_i)
//! (04)    then return(my_slot_i)
//! (05)    else let j ≠ i such that slot_i[j] = my_slot_i;
//! (06)         if (id_i < ids_i[j]) then return(n) else return(n+1)
//! (07) end if.
//! ```
//!
//! The `(n−1)`-slot object `KS` guarantees each slot in `[1..n−1]` is
//! returned at least once, so at most one slot is duplicated, and exactly
//! one pair of processes can conflict; the snapshot totally orders their
//! observations, and identity comparison splits them between names `n` and
//! `n+1`.

use gsb_core::Identity;
use gsb_memory::{Action, Observation, Protocol, Word};

/// Which oracle slot holds the `(n−1)`-slot object `KS`.
pub const SLOT_ORACLE: usize = 0;

/// The Figure 2 protocol: `(n+1)`-renaming in
/// `ASM_{n,n−1}[⟨n, n−1, 1, n⟩-GSB]`.
#[derive(Debug, Clone)]
pub struct SlotRenamingProtocol {
    id: Word,
    n: usize,
    my_slot: usize,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    RequestSlot,
    AwaitSlot,
    AwaitWrite,
    AwaitSnapshot,
}

impl SlotRenamingProtocol {
    /// Creates the protocol for a process with identity `id` in an
    /// `n`-process system (`n ≥ 2`: the slot object needs `n − 1 ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(id: Identity, n: usize) -> Self {
        assert!(n >= 2, "slot renaming needs n ≥ 2");
        SlotRenamingProtocol {
            id: u64::from(id.get()),
            n,
            my_slot: 0,
            phase: Phase::RequestSlot,
        }
    }
}

impl Protocol for SlotRenamingProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        match (self.phase, observation) {
            // (01) my_slot ← KS.slot_request()
            (Phase::RequestSlot, Observation::Start) => {
                self.phase = Phase::AwaitSlot;
                Action::Oracle {
                    object: SLOT_ORACLE,
                    input: 0,
                }
            }
            // (02) STATE[i] ← ⟨my_slot, id⟩ …
            (Phase::AwaitSlot, Observation::OracleReply(slot)) => {
                self.my_slot = slot as usize;
                self.phase = Phase::AwaitWrite;
                Action::Write(vec![slot, self.id])
            }
            // (02) … ; snapshot
            (Phase::AwaitWrite, Observation::Written) => {
                self.phase = Phase::AwaitSnapshot;
                Action::Snapshot
            }
            // (03)–(06)
            (Phase::AwaitSnapshot, Observation::Snapshot(snap)) => {
                let conflict = snap
                    .iter()
                    .flatten()
                    .filter(|v| v.len() == 2)
                    .find(|v| v[1] != self.id && v[0] as usize == self.my_slot);
                match conflict {
                    // (03)–(04): slot unique — keep it.
                    None => Action::Decide(self.my_slot),
                    // (05)–(06): one conflicting process j.
                    Some(entry) => {
                        let other_id = entry[1];
                        if self.id < other_id {
                            Action::Decide(self.n)
                        } else {
                            Action::Decide(self.n + 1)
                        }
                    }
                }
            }
            (phase, obs) => unreachable!("slot renaming: {obs:?} in phase {phase:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{
        check_hygiene, sweep_adversarial, sweep_exhaustive, sweep_random, AlgorithmUnderTest,
    };
    use gsb_core::SymmetricGsb;
    use gsb_memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};

    fn ids(values: &[u32]) -> Vec<Identity> {
        values.iter().map(|&v| Identity::new(v).unwrap()).collect()
    }

    fn slot_oracles(n: usize, policy: OraclePolicy) -> Vec<Box<dyn Oracle>> {
        let spec = SymmetricGsb::slot(n, n - 1).unwrap().to_spec();
        vec![Box::new(GsbOracle::new(spec, policy).unwrap())]
    }

    fn slot_factory() -> Box<ProtocolFactory<'static>> {
        Box::new(|_pid, id, n| Box::new(SlotRenamingProtocol::new(id, n)))
    }

    fn renaming_spec(n: usize) -> gsb_core::GsbSpec {
        SymmetricGsb::renaming(n, n + 1).unwrap().to_spec()
    }

    #[test]
    fn theorem_12_random_sweeps() {
        for n in [2usize, 3, 4, 5, 6, 8] {
            for policy in [
                OraclePolicy::FirstFit,
                OraclePolicy::LastFit,
                OraclePolicy::Seeded(11),
            ] {
                let factory = slot_factory();
                let oracles = move || slot_oracles(n, policy);
                let algo = AlgorithmUnderTest {
                    spec: renaming_spec(n),
                    factory: &factory,
                    oracles: &oracles,
                };
                sweep_random(&algo, (2 * n - 1) as u32, 40, 23)
                    .unwrap_or_else(|e| panic!("n={n} {policy:?}: {e}"));
            }
        }
    }

    #[test]
    fn theorem_12_adversarial_sweeps() {
        for n in [3usize, 5] {
            let factory = slot_factory();
            let oracles = move || slot_oracles(n, OraclePolicy::Seeded(5));
            let algo = AlgorithmUnderTest {
                spec: renaming_spec(n),
                factory: &factory,
                oracles: &oracles,
            };
            let report = sweep_adversarial(&algo, (2 * n - 1) as u32, 60, 29).unwrap();
            assert!(report.crashed_runs > 0);
        }
    }

    #[test]
    fn theorem_12_exhaustive_small_systems() {
        // Every schedule for n = 2 and n = 3 under deterministic oracles
        // (both reply policies), several identity assignments.
        for n in [2usize, 3] {
            for policy in [OraclePolicy::FirstFit, OraclePolicy::LastFit] {
                let factory = slot_factory();
                let oracles = move || slot_oracles(n, policy);
                let algo = AlgorithmUnderTest {
                    spec: renaming_spec(n),
                    factory: &factory,
                    oracles: &oracles,
                };
                let assignments: Vec<Vec<Identity>> = match n {
                    2 => vec![ids(&[1, 2]), ids(&[3, 1]), ids(&[2, 3])],
                    _ => vec![ids(&[1, 2, 3]), ids(&[5, 1, 3]), ids(&[4, 5, 2])],
                };
                for assignment in assignments {
                    let report = sweep_exhaustive(&algo, &assignment, 10_000)
                        .unwrap_or_else(|e| panic!("n={n} {policy:?}: {e}"));
                    assert!(report.runs >= 6, "n={n}: only {} runs", report.runs);
                }
            }
        }
    }

    #[test]
    fn losers_split_by_identity() {
        // Force the duplicate-slot case: n = 2, the 1-slot object hands
        // slot 1 to both processes; they must decide {2, 3} by id order.
        use gsb_memory::{build_executor, CrashPlan, RoundRobinScheduler};
        let factory = slot_factory();
        let mut exec = build_executor(
            &factory,
            &ids(&[3, 1]),
            slot_oracles(2, OraclePolicy::FirstFit),
        );
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(2), 1000)
            .unwrap();
        // Both got slot 1 (the only slot); id 1 < 3 so p2 takes name n = 2,
        // p1 takes n + 1 = 3.
        assert_eq!(outcome.decisions, vec![Some(3), Some(2)]);
    }

    #[test]
    fn fast_path_keeps_slot_names() {
        // Sequential (round-robin) runs with n = 4: the conflict pair is
        // resolved, everyone else keeps a slot in [1..n−1].
        use gsb_memory::{build_executor, CrashPlan, RoundRobinScheduler};
        let factory = slot_factory();
        let mut exec = build_executor(
            &factory,
            &ids(&[2, 7, 4, 1]),
            slot_oracles(4, OraclePolicy::FirstFit),
        );
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &CrashPlan::none(4), 1000)
            .unwrap();
        let out = outcome.output_vector().unwrap();
        assert!(renaming_spec(4).is_legal_output(&out), "{out}");
        // At least n − 2 processes decide a slot name ≤ n − 1.
        let slot_names = out.values().iter().filter(|&&v| v <= 3).count();
        assert!(slot_names >= 2, "{out}");
    }

    #[test]
    fn figure_2_is_comparison_based_and_index_independent() {
        let factory = slot_factory();
        let oracles = || slot_oracles(3, OraclePolicy::FirstFit);
        let algo = AlgorithmUnderTest {
            spec: renaming_spec(3),
            factory: &factory,
            oracles: &oracles,
        };
        check_hygiene(&algo, &ids(&[5, 2, 4]), &ids(&[9, 1, 7]), 77).unwrap();
    }
}
