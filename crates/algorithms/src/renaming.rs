//! Wait-free renaming algorithms.
//!
//! * [`RenamingProtocol`] — the classic `(2n−1)`-renaming algorithm
//!   (Attiya, Bar-Noy, Dolev, Peleg, Reischuk — the paper's \[7\], in its
//!   snapshot formulation): repeatedly propose a name, snapshot, and on
//!   conflict re-propose the `r`-th free name where `r` is the rank of
//!   your identity among the participants you saw. This is the tool behind
//!   Theorems 1 and 2 (shrinking any identity space to `[1..2n−1]`,
//!   comparison-based w.l.o.g.).
//! * [`IsRenamingProtocol`] — order-preserving renaming into
//!   `n(n+1)/2` names from one immediate snapshot: by the IS containment
//!   property, two views of the same size are equal, so
//!   `(|view|, rank in view)` pairs are distinct.

use gsb_core::Identity;
use gsb_memory::immediate::{IsMachine, IsStep};
use gsb_memory::{Action, Observation, Protocol, Word};

/// The classic comparison-based `(2n−1)`-renaming protocol.
///
/// Works for identities from an arbitrary space `[1..N]`; decides names in
/// `[1..2n−1]` (rank ≤ `n` plus at most `n−1` names to skip).
#[derive(Debug, Clone)]
pub struct RenamingProtocol {
    id: Word,
    proposal: usize,
    phase: RenamingPhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenamingPhase {
    Propose,
    AwaitWrite,
    AwaitSnapshot,
}

impl RenamingProtocol {
    /// Creates the protocol for a process with the given identity.
    #[must_use]
    pub fn new(id: Identity) -> Self {
        RenamingProtocol {
            id: u64::from(id.get()),
            proposal: 1,
            phase: RenamingPhase::Propose,
        }
    }

    /// `r`-th smallest positive integer not in `taken` (1-based `r`).
    fn nth_free_name(taken: &[usize], r: usize) -> usize {
        let mut remaining = r;
        let mut candidate = 0usize;
        loop {
            candidate += 1;
            if !taken.contains(&candidate) {
                remaining -= 1;
                if remaining == 0 {
                    return candidate;
                }
            }
        }
    }
}

impl Protocol for RenamingProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        match (self.phase, observation) {
            (RenamingPhase::Propose, Observation::Start) => {
                self.phase = RenamingPhase::AwaitWrite;
                Action::Write(vec![self.id, self.proposal as Word])
            }
            (RenamingPhase::AwaitWrite, Observation::Written) => {
                self.phase = RenamingPhase::AwaitSnapshot;
                Action::Snapshot
            }
            (RenamingPhase::AwaitSnapshot, Observation::Snapshot(snap)) => {
                // Values are parsed by prefix `[id, proposal, …]`: longer
                // values are full-information states of composite layers
                // (see `compose`) whose first two words stay ours.
                let entries: Vec<(Word, usize)> = snap
                    .iter()
                    .flatten()
                    .filter(|v| v.len() >= 2)
                    .map(|v| (v[0], v[1] as usize))
                    .collect();
                let conflict = entries
                    .iter()
                    .any(|&(id, prop)| id != self.id && prop == self.proposal);
                if conflict {
                    let mut ids: Vec<Word> = entries.iter().map(|&(id, _)| id).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    let rank = ids
                        .iter()
                        .position(|&x| x == self.id)
                        .expect("own write is in the snapshot")
                        + 1;
                    let taken: Vec<usize> = entries
                        .iter()
                        .filter(|&&(id, _)| id != self.id)
                        .map(|&(_, prop)| prop)
                        .collect();
                    self.proposal = Self::nth_free_name(&taken, rank);
                    self.phase = RenamingPhase::AwaitWrite;
                    Action::Write(vec![self.id, self.proposal as Word])
                } else {
                    Action::Decide(self.proposal)
                }
            }
            (phase, obs) => unreachable!("renaming: {obs:?} in phase {phase:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// Renaming into `n(n+1)/2` names from one immediate snapshot.
///
/// After the IS completes with view `V` (total order by containment), the
/// process decides `|V|·(|V|−1)/2 + rank(id, V)`. Distinctness: same-size
/// views coincide, and ranks within one view are distinct.
#[derive(Debug, Clone)]
pub struct IsRenamingProtocol {
    id: Word,
    machine: IsMachine,
}

impl IsRenamingProtocol {
    /// Creates the protocol for identity `id` in an `n`-process system.
    #[must_use]
    pub fn new(id: Identity, n: usize) -> Self {
        let id = u64::from(id.get());
        IsRenamingProtocol {
            id,
            machine: IsMachine::new(id, n),
        }
    }

    /// The maximum name this scheme can output for `n` processes.
    #[must_use]
    pub fn name_space(n: usize) -> usize {
        n * (n + 1) / 2
    }
}

impl Protocol for IsRenamingProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        let step = match observation {
            Observation::Start => self.machine.start(),
            Observation::Written => self.machine.absorb(None),
            Observation::Snapshot(snap) => self.machine.absorb(Some(snap)),
            other => unreachable!("IS renaming never observes {other:?}"),
        };
        match step {
            IsStep::Write(value) => Action::Write(value),
            IsStep::Snapshot => Action::Snapshot,
            IsStep::Done(view) => {
                let size = view.len();
                let rank = view
                    .iter()
                    .position(|&x| x == self.id)
                    .expect("IS self-inclusion")
                    + 1;
                Action::Decide(size * (size - 1) / 2 + rank)
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{
        check_hygiene, sweep_adversarial, sweep_exhaustive, sweep_random, AlgorithmUnderTest,
    };
    use gsb_core::SymmetricGsb;
    use gsb_memory::ProtocolFactory;

    fn ids(values: &[u32]) -> Vec<Identity> {
        values.iter().map(|&v| Identity::new(v).unwrap()).collect()
    }

    fn renaming_factory() -> Box<ProtocolFactory<'static>> {
        Box::new(|_pid, id, _n| Box::new(RenamingProtocol::new(id)))
    }

    #[test]
    fn nth_free_name_examples() {
        assert_eq!(RenamingProtocol::nth_free_name(&[], 1), 1);
        assert_eq!(RenamingProtocol::nth_free_name(&[1, 2], 1), 3);
        assert_eq!(RenamingProtocol::nth_free_name(&[2], 2), 3);
        assert_eq!(RenamingProtocol::nth_free_name(&[1, 3], 2), 4);
    }

    #[test]
    fn renaming_random_sweep() {
        for n in [2usize, 3, 4, 5, 6] {
            let spec = SymmetricGsb::renaming(n, 2 * n - 1).unwrap().to_spec();
            let factory = renaming_factory();
            let algo = AlgorithmUnderTest {
                spec,
                factory: &factory,
                oracles: &Vec::new,
            };
            // Large identity space (N = 6n) exercises Theorems 1–2's point.
            sweep_random(&algo, 6 * n as u32, 60, 42).unwrap();
        }
    }

    #[test]
    fn renaming_adversarial_sweep() {
        let spec = SymmetricGsb::renaming(4, 7).unwrap().to_spec();
        let factory = renaming_factory();
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        let report = sweep_adversarial(&algo, 24, 60, 7).unwrap();
        assert!(report.crashed_runs > 0);
    }

    #[test]
    fn renaming_exhaustive_two_processes() {
        let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        let factory = renaming_factory();
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        for id_pair in [[1u32, 2], [2, 1], [9, 4], [3, 17]] {
            let report = sweep_exhaustive(&algo, &ids(&id_pair), 10_000).unwrap();
            assert!(report.runs >= 2, "ids {id_pair:?}");
        }
    }

    #[test]
    fn renaming_is_comparison_based_and_index_independent() {
        let spec = SymmetricGsb::renaming(3, 5).unwrap().to_spec();
        let factory = renaming_factory();
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        // 2 < 5 < 11  ↦  3 < 8 < 20 (order-isomorphic).
        check_hygiene(&algo, &ids(&[5, 2, 11]), &ids(&[8, 3, 20]), 99).unwrap();
    }

    #[test]
    fn solo_renaming_decides_name_one() {
        use gsb_memory::{build_executor, CrashPlan, Pid, RoundRobinScheduler};
        let factory = renaming_factory();
        let mut exec = build_executor(&factory, &ids(&[14, 9, 2]), vec![]);
        let plan = CrashPlan::with_crashes(3, &[(Pid::new(1), 0), (Pid::new(2), 0)]);
        let outcome = exec
            .run(&mut RoundRobinScheduler::new(), &plan, 10_000)
            .unwrap();
        // A solo process proposes 1, sees no conflict, keeps it.
        assert_eq!(outcome.decisions[0], Some(1));
    }

    #[test]
    fn is_renaming_random_sweep() {
        for n in [2usize, 3, 4, 5] {
            let spec = SymmetricGsb::renaming(n, IsRenamingProtocol::name_space(n))
                .unwrap()
                .to_spec();
            let factory: Box<ProtocolFactory<'static>> =
                Box::new(move |_pid, id, n| Box::new(IsRenamingProtocol::new(id, n)));
            let algo = AlgorithmUnderTest {
                spec,
                factory: &factory,
                oracles: &Vec::new,
            };
            sweep_random(&algo, 4 * n as u32, 40, 17).unwrap();
        }
    }

    #[test]
    fn is_renaming_exhaustive_two_processes() {
        let spec = SymmetricGsb::renaming(2, 3).unwrap().to_spec();
        let factory: Box<ProtocolFactory<'static>> =
            Box::new(|_pid, id, n| Box::new(IsRenamingProtocol::new(id, n)));
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        sweep_exhaustive(&algo, &ids(&[3, 1]), 10_000).unwrap();
    }

    #[test]
    fn renaming_step_complexity_is_modest() {
        // Record worst-case steps over a sweep — documents the wait-free
        // bound empirically (full data regenerated by the `renaming` bench).
        let spec = SymmetricGsb::renaming(5, 9).unwrap().to_spec();
        let factory = renaming_factory();
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        let report = sweep_random(&algo, 30, 60, 11).unwrap();
        // Each decision needs ≥ 3 steps (write/snapshot/decide); conflicts
        // add rounds but stay well below the budget.
        assert!(report.max_steps < 10_000, "{}", report.max_steps);
    }
}
