//! The universal construction (Theorem 8): perfect renaming solves every
//! GSB task.
//!
//! Given any black-box solution to the `⟨n, n, 1, 1⟩`-GSB task (perfect
//! renaming), every feasible `⟨n, m, ℓ⃗, u⃗⟩`-GSB task is solved with no
//! further communication:
//!
//! * **symmetric** `⟨n, m, ℓ, u⟩`: decide `((dec − 1) mod m) + 1` where
//!   `dec` is the perfect name. The resulting counting vector is the
//!   balanced kernel `[⌈n/m⌉, …, ⌊n/m⌋]`, legal by feasibility — this is
//!   also Theorem 5's hardest-task vector, so the construction in fact
//!   solves the hardest `⟨n, m, −, −⟩` task.
//! * **asymmetric**: fix the lexicographically first legal output vector
//!   `V` (a deterministic choice shared by all processes) and decide
//!   `V[dec]`; since perfect names are a permutation of `[1..n]`, the
//!   decided multiset is exactly `V`'s.

use gsb_core::{GsbSpec, OutputVector};
use gsb_memory::{Action, Observation, Protocol};

use crate::error::{Error, Result};

/// Which oracle slot holds the perfect-renaming object.
pub const PERFECT_RENAMING_ORACLE: usize = 0;

/// The Theorem 8 protocol: one oracle invocation, one decision.
#[derive(Debug, Clone)]
pub struct UniversalGsbProtocol {
    /// For symmetric targets: `m`; decides `((dec−1) mod m) + 1`.
    /// For asymmetric targets: the fixed output vector `V`.
    rule: DecisionRule,
}

#[derive(Debug, Clone)]
enum DecisionRule {
    SymmetricMod { m: usize },
    FirstVector { vector: OutputVector },
}

impl UniversalGsbProtocol {
    /// Builds the protocol for solving `target` from a perfect-renaming
    /// oracle installed at [`PERFECT_RENAMING_ORACLE`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Core`] with
    /// [`gsb_core::Error::Infeasible`] if the target has no legal outputs.
    pub fn new(target: &GsbSpec) -> Result<Self> {
        target.require_feasible().map_err(Error::Core)?;
        let rule = if target.is_symmetric() {
            DecisionRule::SymmetricMod { m: target.m() }
        } else {
            let vector = target
                .first_legal_output()
                .expect("feasible tasks have a first legal output");
            DecisionRule::FirstVector { vector }
        };
        Ok(UniversalGsbProtocol { rule })
    }

    fn decide(&self, perfect_name: usize) -> usize {
        match &self.rule {
            DecisionRule::SymmetricMod { m } => ((perfect_name - 1) % m) + 1,
            DecisionRule::FirstVector { vector } => vector.values()[perfect_name - 1],
        }
    }
}

impl Protocol for UniversalGsbProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        match observation {
            Observation::Start => Action::Oracle {
                object: PERFECT_RENAMING_ORACLE,
                input: 0,
            },
            Observation::OracleReply(dec) => Action::Decide(self.decide(dec as usize)),
            other => unreachable!("universal protocol never observes {other:?}"),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{sweep_exhaustive, sweep_random, AlgorithmUnderTest};
    use gsb_core::{GsbSpec, Identity, SymmetricGsb};
    use gsb_memory::{GsbOracle, Oracle, OraclePolicy, ProtocolFactory};

    fn perfect_renaming_oracles(n: usize, policy: OraclePolicy) -> Vec<Box<dyn Oracle>> {
        let spec = SymmetricGsb::perfect_renaming(n).unwrap().to_spec();
        vec![Box::new(GsbOracle::new(spec, policy).unwrap())]
    }

    fn validate_target(target: GsbSpec) {
        let n = target.n();
        let target_for_factory = target.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, _n| {
            Box::new(UniversalGsbProtocol::new(&target_for_factory).unwrap())
        });
        for (label, policy) in [
            ("first-fit", OraclePolicy::FirstFit),
            ("last-fit", OraclePolicy::LastFit),
            ("seeded", OraclePolicy::Seeded(3)),
        ] {
            let oracles = move || perfect_renaming_oracles(n, policy);
            let algo = AlgorithmUnderTest {
                spec: target.clone(),
                factory: &factory,
                oracles: &oracles,
            };
            sweep_random(&algo, (2 * n - 1) as u32, 30, 13)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn theorem_8_solves_the_symmetric_zoo() {
        // The tasks Section 3.2 names, plus assorted ⟨n,m,ℓ,u⟩.
        validate_target(SymmetricGsb::wsb(5).unwrap().to_spec());
        validate_target(SymmetricGsb::k_wsb(6, 2).unwrap().to_spec());
        validate_target(SymmetricGsb::slot(5, 3).unwrap().to_spec());
        validate_target(SymmetricGsb::perfect_renaming(4).unwrap().to_spec());
        validate_target(SymmetricGsb::renaming(3, 5).unwrap().to_spec());
        validate_target(SymmetricGsb::new(6, 3, 1, 4).unwrap().to_spec());
        validate_target(SymmetricGsb::hardest(7, 3).unwrap().to_spec());
    }

    #[test]
    fn theorem_8_solves_asymmetric_tasks() {
        validate_target(GsbSpec::election(5).unwrap());
        validate_target(GsbSpec::committees(6, &[(1, 2), (2, 3), (1, 2)]).unwrap());
    }

    #[test]
    fn theorem_8_rejects_infeasible_targets() {
        let bad = SymmetricGsb::renaming(5, 4).unwrap().to_spec();
        assert!(UniversalGsbProtocol::new(&bad).is_err());
    }

    #[test]
    fn symmetric_rule_produces_the_balanced_kernel() {
        // With n = 7, m = 3 the counting vector must be [3, 2, 2].
        let target = SymmetricGsb::new(7, 3, 0, 7).unwrap();
        let protocol = UniversalGsbProtocol::new(&target.to_spec()).unwrap();
        let mut counts = vec![0usize; 3];
        for name in 1..=7 {
            counts[protocol.decide(name) - 1] += 1;
        }
        let mut kernel = counts.clone();
        kernel.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(kernel, target.balanced_kernel().parts());
    }

    #[test]
    fn election_rule_uses_first_legal_vector() {
        let election = GsbSpec::election(4).unwrap();
        let protocol = UniversalGsbProtocol::new(&election).unwrap();
        // First legal vector of election is [1, 2, 2, 2]: name 1 → leader.
        assert_eq!(protocol.decide(1), 1);
        for name in 2..=4 {
            assert_eq!(protocol.decide(name), 2);
        }
    }

    #[test]
    fn exhaustive_universal_election() {
        let target = GsbSpec::election(3).unwrap();
        let target_for_factory = target.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, _id, _n| {
            Box::new(UniversalGsbProtocol::new(&target_for_factory).unwrap())
        });
        let oracles = || perfect_renaming_oracles(3, OraclePolicy::FirstFit);
        let algo = AlgorithmUnderTest {
            spec: target,
            factory: &factory,
            oracles: &oracles,
        };
        let ids: Vec<Identity> = [4u32, 1, 3]
            .iter()
            .map(|&v| Identity::new(v).unwrap())
            .collect();
        let report = sweep_exhaustive(&algo, &ids, 1000).unwrap();
        // Two steps per process → interleavings of 3 two-step sequences.
        assert_eq!(report.runs, 90); // 6!/(2!·2!·2!) = 90
    }
}
