//! Communication-free GSB solvers (Theorem 9, Corollaries 2–4) and the
//! identity-space reduction of Theorem 1.
//!
//! * [`FreeDecisionProtocol`] — decides `δ(id)` immediately, where `δ` is
//!   the witness partition of Theorem 9's proof (requires identities in
//!   `[1..2n−1]`).
//! * [`RenamedFreeProtocol`] — Theorem 1's construction: first run the
//!   `(2n−1)`-renaming algorithm to shrink an arbitrary identity space
//!   `[1..N]` to `[1..2n−1]`, then decide `δ(new name)`. This solves every
//!   no-communication-solvable task for *any* identity space, with
//!   communication used only by the renaming layer.
//! * [`homonymous_decision`] — Corollary 2's closed-form rule
//!   `δ(id) = ⌈id/x⌉` for x-bounded homonymous renaming.

use gsb_core::{GsbSpec, Identity};
use gsb_memory::{Action, Observation, Protocol};

use crate::error::{Error, Result};
use crate::renaming::RenamingProtocol;

/// Decides `δ(id)` with no communication (Theorem 9).
#[derive(Debug, Clone)]
pub struct FreeDecisionProtocol {
    decision: usize,
}

impl FreeDecisionProtocol {
    /// Builds the protocol for one process: looks up the witness map of
    /// `spec` at this process's identity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] if the task is not solvable without
    /// communication, or the identity exceeds `2n−1` (use
    /// [`RenamedFreeProtocol`] for large identity spaces).
    pub fn new(spec: &GsbSpec, id: Identity) -> Result<Self> {
        let witness = spec
            .no_communication_witness()
            .ok_or_else(|| Error::Unsupported {
                reason: format!("{spec} is not solvable without communication"),
            })?;
        let index = id.get() as usize;
        if index == 0 || index > witness.len() {
            return Err(Error::Unsupported {
                reason: format!(
                    "identity {id} outside [1..{}]; rename first (Theorem 1)",
                    witness.len()
                ),
            });
        }
        Ok(FreeDecisionProtocol {
            decision: witness[index - 1],
        })
    }

    /// Builds the protocol from an **externally supplied** witness map
    /// (entry `id − 1` is the value decided by identity `id`), instead of
    /// recomputing Theorem 9's partition. This is how the engine crate
    /// replays a `Verdict`'s no-communication evidence through the actual
    /// simulator: the map under test is exactly the map that ran.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] if the identity falls outside the
    /// witness's index space `[1..witness.len()]`.
    pub fn from_witness(witness: &[usize], id: Identity) -> Result<Self> {
        let index = id.get() as usize;
        if index == 0 || index > witness.len() {
            return Err(Error::Unsupported {
                reason: format!(
                    "identity {id} outside the witness map's space [1..{}]",
                    witness.len()
                ),
            });
        }
        Ok(FreeDecisionProtocol {
            decision: witness[index - 1],
        })
    }
}

impl Protocol for FreeDecisionProtocol {
    fn next_action(&mut self, _observation: Observation) -> Action {
        Action::Decide(self.decision)
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// Theorem 1's construction: `(2n−1)`-rename, then decide `δ(new name)`.
#[derive(Debug, Clone)]
pub struct RenamedFreeProtocol {
    renaming: RenamingProtocol,
    witness: Vec<usize>,
}

impl RenamedFreeProtocol {
    /// Builds the protocol for one process with an identity from an
    /// arbitrary space `[1..N]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] if `spec` is not solvable without
    /// communication (given small identities).
    pub fn new(spec: &GsbSpec, id: Identity) -> Result<Self> {
        let witness = spec
            .no_communication_witness()
            .ok_or_else(|| Error::Unsupported {
                reason: format!("{spec} is not solvable without communication"),
            })?;
        Ok(RenamedFreeProtocol {
            renaming: RenamingProtocol::new(id),
            witness,
        })
    }
}

impl Protocol for RenamedFreeProtocol {
    fn next_action(&mut self, observation: Observation) -> Action {
        match self.renaming.next_action(observation) {
            Action::Decide(name) => {
                // The renaming layer yields a name in [1..2n−1]; apply δ.
                Action::Decide(self.witness[name - 1])
            }
            other => other,
        }
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

/// Corollary 2's decision rule for x-bounded homonymous renaming:
/// `δ(id) = ⌈id/x⌉`.
///
/// # Examples
///
/// ```
/// use gsb_algorithms::free::homonymous_decision;
///
/// assert_eq!(homonymous_decision(1, 3), 1);
/// assert_eq!(homonymous_decision(3, 3), 1);
/// assert_eq!(homonymous_decision(4, 3), 2);
/// ```
#[must_use]
pub fn homonymous_decision(id: u32, x: u32) -> usize {
    (id as usize).div_ceil(x as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{sweep_exhaustive, sweep_random, AlgorithmUnderTest};
    use gsb_core::SymmetricGsb;
    use gsb_memory::ProtocolFactory;

    fn ids(values: &[u32]) -> Vec<Identity> {
        values.iter().map(|&v| Identity::new(v).unwrap()).collect()
    }

    #[test]
    fn free_protocol_solves_loose_renaming() {
        let spec = SymmetricGsb::loose_renaming(4).unwrap().to_spec();
        let spec_for_factory = spec.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, _n| {
            Box::new(FreeDecisionProtocol::new(&spec_for_factory, id).unwrap())
        });
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        // Identities must stay within [1..2n−1] for the direct protocol.
        sweep_random(&algo, 7, 40, 5).unwrap();
    }

    #[test]
    fn free_protocol_solves_homonymous_renaming() {
        for n in 2..=6 {
            for x in 1..=n as u32 {
                let spec = SymmetricGsb::homonymous_renaming(n, x as usize)
                    .unwrap()
                    .to_spec();
                let spec_for_factory = spec.clone();
                let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, _n| {
                    Box::new(FreeDecisionProtocol::new(&spec_for_factory, id).unwrap())
                });
                let algo = AlgorithmUnderTest {
                    spec,
                    factory: &factory,
                    oracles: &Vec::new,
                };
                sweep_random(&algo, (2 * n - 1) as u32, 15, 9).unwrap();
            }
        }
    }

    #[test]
    fn from_witness_replays_an_external_map() {
        let spec = SymmetricGsb::loose_renaming(3).unwrap().to_spec();
        let witness = spec.no_communication_witness().unwrap();
        let witness_for_factory = witness.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, _n| {
            Box::new(FreeDecisionProtocol::from_witness(&witness_for_factory, id).unwrap())
        });
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        sweep_random(&algo, 5, 30, 3).unwrap();
        // Out-of-range identities are rejected, as with `new`.
        let err =
            FreeDecisionProtocol::from_witness(&witness, Identity::new(42).unwrap()).unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }));
    }

    #[test]
    fn free_protocol_rejects_wsb() {
        // WSB is not solvable without communication (Corollary 3).
        let spec = SymmetricGsb::wsb(4).unwrap().to_spec();
        let err = FreeDecisionProtocol::new(&spec, Identity::new(1).unwrap()).unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }));
    }

    #[test]
    fn free_protocol_rejects_large_identities() {
        let spec = SymmetricGsb::loose_renaming(3).unwrap().to_spec();
        let err = FreeDecisionProtocol::new(&spec, Identity::new(99).unwrap()).unwrap_err();
        assert!(err.to_string().contains("rename first"));
    }

    #[test]
    fn renamed_free_protocol_handles_large_identity_spaces() {
        // Theorem 1: ⟨4, 7, 0, 1⟩ with identities up to 60.
        let spec = SymmetricGsb::loose_renaming(4).unwrap().to_spec();
        let spec_for_factory = spec.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, _n| {
            Box::new(RenamedFreeProtocol::new(&spec_for_factory, id).unwrap())
        });
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        sweep_random(&algo, 60, 60, 21).unwrap();
    }

    #[test]
    fn renamed_free_protocol_exhaustive_two_processes() {
        let spec = SymmetricGsb::loose_renaming(2).unwrap().to_spec();
        let spec_for_factory = spec.clone();
        let factory: Box<ProtocolFactory<'static>> = Box::new(move |_pid, id, _n| {
            Box::new(RenamedFreeProtocol::new(&spec_for_factory, id).unwrap())
        });
        let algo = AlgorithmUnderTest {
            spec,
            factory: &factory,
            oracles: &Vec::new,
        };
        sweep_exhaustive(&algo, &ids(&[50, 13]), 10_000).unwrap();
    }

    #[test]
    fn homonymous_rule_matches_witness_semantics() {
        // The closed-form rule solves the homonymous task directly.
        for n in 2..=7usize {
            for x in 1..=n as u32 {
                let spec = SymmetricGsb::homonymous_renaming(n, x as usize).unwrap();
                let map: Vec<usize> = (1..=(2 * n - 1) as u32)
                    .map(|id| homonymous_decision(id, x))
                    .collect();
                assert!(spec.to_spec().map_beats_all_subsets(&map), "n={n} x={x}");
            }
        }
    }
}
