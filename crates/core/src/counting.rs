//! Counting vectors (Definition 3 of the paper).

use crate::kernel::KernelVector;
use crate::output::OutputVector;

/// The counting vector of an output vector: entry `v − 1` is `#v(O)`, the
/// number of processes that decided value `v` (Definition 3).
///
/// # Examples
///
/// ```
/// use gsb_core::{CountingVector, OutputVector};
///
/// let o = OutputVector::new(vec![2, 1, 2, 2, 3, 2]);
/// let c = CountingVector::of_output(&o, 3);
/// assert_eq!(c.counts(), &[1, 4, 1]);
/// assert_eq!(c.total(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountingVector(Vec<usize>);

impl CountingVector {
    /// Wraps raw per-value counts (entry `v − 1` counts deciders of `v`).
    #[must_use]
    pub fn new(counts: Vec<usize>) -> Self {
        CountingVector(counts)
    }

    /// Computes the counting vector of `output` over the value domain
    /// `[1..m]`.
    ///
    /// # Panics
    ///
    /// Panics if some output value lies outside `[1..m]`.
    #[must_use]
    pub fn of_output(output: &OutputVector, m: usize) -> Self {
        let mut counts = vec![0usize; m];
        for &v in output.values() {
            assert!(
                v >= 1 && v <= m,
                "output value {v} outside the domain [1..{m}]"
            );
            counts[v - 1] += 1;
        }
        CountingVector(counts)
    }

    /// Per-value counts, indexed by `v − 1`.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.0
    }

    /// Number of possible output values `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.0.len()
    }

    /// Total number of deciders `n = Σ_v #v`.
    #[must_use]
    pub fn total(&self) -> usize {
        self.0.iter().sum()
    }

    /// The kernel vector representing this counting vector: the same
    /// multiset of counts sorted in non-increasing order (Definition 4).
    #[must_use]
    pub fn to_kernel(&self) -> KernelVector {
        KernelVector::from_counts(self.0.clone())
    }

    /// Whether `other` is a permutation of `self` — i.e. both belong to the
    /// same set `X` of Definition 4 and share a kernel vector.
    #[must_use]
    pub fn is_permutation_of(&self, other: &CountingVector) -> bool {
        self.to_kernel() == other.to_kernel()
    }
}

impl std::fmt::Display for CountingVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// Advances `subset` — a strictly increasing `k`-subset of
/// `[0..universe)` — to its lexicographic successor in place, returning
/// `false` when `subset` was already the last one (its contents are then
/// unspecified).
///
/// This is the adversarial identity-subset walk shared by the Theorem 9
/// brute-force checks ([`GsbSpec::map_beats_all_subsets`](crate::GsbSpec::map_beats_all_subsets))
/// and the engine crate's witness replays.
///
/// # Examples
///
/// ```
/// use gsb_core::counting::next_index_subset;
///
/// let mut subset = vec![0, 1];
/// let mut seen = vec![subset.clone()];
/// while next_index_subset(&mut subset, 4) {
///     seen.push(subset.clone());
/// }
/// assert_eq!(seen.len(), 6); // C(4, 2)
/// assert_eq!(seen.last().unwrap(), &[2, 3]);
/// ```
#[must_use]
pub fn next_index_subset(subset: &mut [usize], universe: usize) -> bool {
    let k = subset.len();
    let mut i = k;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if subset[i] < universe - (k - i) {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_vector_of_output() {
        let o = OutputVector::new(vec![1, 1, 2]);
        let c = CountingVector::of_output(&o, 2);
        assert_eq!(c.counts(), &[2, 1]);
        assert_eq!(c.m(), 2);
        assert_eq!(c.total(), 3);
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn of_output_panics_on_out_of_domain() {
        let o = OutputVector::new(vec![1, 3]);
        let _ = CountingVector::of_output(&o, 2);
    }

    #[test]
    fn permutations_share_a_kernel() {
        // Paper example: [a,b,c], [b,c,a], [c,a,b] share one kernel vector.
        let a = CountingVector::new(vec![4, 2, 0]);
        let b = CountingVector::new(vec![0, 4, 2]);
        let c = CountingVector::new(vec![2, 0, 4]);
        assert!(a.is_permutation_of(&b));
        assert!(b.is_permutation_of(&c));
        assert_eq!(a.to_kernel().parts(), &[4, 2, 0]);
        let d = CountingVector::new(vec![3, 3, 0]);
        assert!(!a.is_permutation_of(&d));
    }
}
