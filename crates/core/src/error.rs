//! Error types for the `gsb-core` crate.

use std::fmt;

/// A specialized [`Result`](std::result::Result) type for `gsb-core` operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by fallible `gsb-core` operations.
///
/// # Examples
///
/// ```
/// use gsb_core::{Error, SymmetricGsb};
///
/// // Upper bound below lower bound is rejected at construction time.
/// let err = SymmetricGsb::new(6, 3, 4, 2).unwrap_err();
/// assert!(matches!(err, Error::InvalidSpec { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The parameters do not describe a well-formed GSB specification
    /// (for example `m = 0`, `ℓ > u`, or `u > n`).
    InvalidSpec {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The specification is well-formed but infeasible: its set of output
    /// vectors is empty (Lemma 1 / Lemma 2 of the paper).
    Infeasible {
        /// Number of processes.
        n: usize,
        /// Number of output values.
        m: usize,
        /// Sum of the lower bounds `Σ ℓ_v`.
        lower_sum: usize,
        /// Sum of the upper bounds `Σ u_v`.
        upper_sum: usize,
    },
    /// An identity was outside the admissible space `[1..N]`.
    IdentityOutOfRange {
        /// The offending identity value.
        id: u32,
        /// The upper bound `N` of the identity space.
        bound: u32,
    },
    /// An input vector contained duplicate identities, which the model
    /// forbids (Section 2.2: `i ≠ j ⇒ input_i ≠ input_j`).
    DuplicateIdentity {
        /// The duplicated identity value.
        id: u32,
    },
    /// A vector had the wrong dimension for the task at hand.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSpec { reason } => write!(f, "invalid GSB specification: {reason}"),
            Error::Infeasible {
                n,
                m,
                lower_sum,
                upper_sum,
            } => write!(
                f,
                "infeasible GSB task: need Σℓ ≤ n ≤ Σu but Σℓ = {lower_sum}, n = {n}, \
                 Σu = {upper_sum} (m = {m})"
            ),
            Error::IdentityOutOfRange { id, bound } => {
                write!(f, "identity {id} outside the identity space [1..{bound}]")
            }
            Error::DuplicateIdentity { id } => {
                write!(f, "duplicate identity {id} in input vector")
            }
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = Error::Infeasible {
            n: 6,
            m: 3,
            lower_sum: 9,
            upper_sum: 18,
        };
        let text = err.to_string();
        assert!(text.contains("infeasible"));
        assert!(text.contains("Σℓ = 9"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn debug_is_nonempty() {
        let err = Error::DuplicateIdentity { id: 3 };
        assert!(!format!("{err:?}").is_empty());
    }
}
