//! # gsb-core — the universe of generalized symmetry breaking tasks
//!
//! This crate implements the task-theoretic core of
//! *The Universe of Symmetry Breaking Tasks* (Imbs, Rajsbaum, Raynal,
//! IRISA PI-1965 / PODC 2011): the family of **generalized symmetry
//! breaking (GSB)** tasks `⟨n, m, ℓ⃗, u⃗⟩-GSB`, in which each of `n`
//! processes (distinguished only by identities from `[1..2n−1]`) must
//! decide a value in `[1..m]` such that each value `v` is decided by at
//! least `ℓ_v` and at most `u_v` processes.
//!
//! The family uniformly captures election, (perfect/loose) renaming, weak
//! symmetry breaking, `k`-slot and many other tasks previously studied in
//! isolation.
//!
//! ## What lives where
//!
//! * [`spec`] — task specifications ([`GsbSpec`], [`SymmetricGsb`]) and the
//!   task zoo; feasibility (Lemmas 1–2).
//! * [`identity`] / [`output`] / [`counting`] — the model's vocabulary:
//!   identities, output vectors, counting vectors.
//! * [`kernel`] — kernel vectors and kernel sets (Definition 4, Lemma 3);
//!   synonym and sub-task tests.
//! * [`anchoring`] — ℓ-/u-anchored tasks (Definition 5, Theorems 3–4).
//! * [`canonical`] — canonical representatives (Theorem 7) and the hardest
//!   task (Theorem 5).
//! * [`order`] — the inclusion partial order of canonical tasks and its
//!   Hasse diagram (the paper's Figure 1).
//! * [`table`] — paper-style kernel tables (the paper's Table 1).
//! * [`solvability`] — the wait-free solvability classifier (Theorems
//!   8–11, Corollaries 2–5).
//! * [`govern`] — cooperative cancellation, deadlines and resource
//!   budgets ([`Ticket`]) plus the deterministic fault-injection
//!   harness used by the robustness test suite.
//! * [`asymmetric`] — an extension beyond the paper: counting sets,
//!   synonyms and canonical (tightened) representatives for *asymmetric*
//!   tasks.
//!
//! ## Quick start
//!
//! ```
//! use gsb_core::{Solvability, SymmetricGsb};
//!
//! // Weak symmetry breaking for 6 processes…
//! let wsb = SymmetricGsb::wsb(6)?;
//! // …is the same task as the 2-slot task…
//! assert!(wsb.is_synonym_of(&SymmetricGsb::slot(6, 2)?));
//! // …and is wait-free solvable precisely because 6 is not a prime power.
//! assert_eq!(wsb.classify().solvability, Solvability::WaitFreeSolvable);
//!
//! // Perfect renaming is the hardest ⟨6,6,−,−⟩ task and is universal for
//! // the whole GSB family (Theorem 8) — but not wait-free solvable.
//! let pr = SymmetricGsb::perfect_renaming(6)?;
//! assert_eq!(pr.classify().solvability, Solvability::NotWaitFreeSolvable);
//! # Ok::<(), gsb_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anchoring;
pub mod asymmetric;
pub mod canonical;
pub mod counting;
mod error;
pub mod govern;
pub mod identity;
pub mod kernel;
pub mod order;
pub mod output;
pub mod solvability;
pub mod spec;
pub mod table;
pub mod zoo;

pub use anchoring::Anchoring;
pub use counting::CountingVector;
pub use error::{Error, Result};
pub use govern::{Limits, StopReason, Stopped, Ticket};
pub use identity::{Identity, IdentitySpace};
pub use kernel::{KernelSet, KernelVector};
pub use order::{TaskClass, TaskOrder};
pub use output::OutputVector;
pub use solvability::{Classification, Solvability};
pub use spec::{GsbSpec, LegalOutputs, SymmetricGsb};
pub use table::{KernelTable, KernelTableRow};
pub use zoo::{catalog, ZooEntry};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GsbSpec>();
        assert_send_sync::<SymmetricGsb>();
        assert_send_sync::<KernelSet>();
        assert_send_sync::<TaskOrder>();
        assert_send_sync::<Classification>();
    }
}
