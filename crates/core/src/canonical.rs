//! Canonical representatives and containment (Lemmas 4–5, Theorems 5–7).
//!
//! Several parameter 4-tuples can denote the same task (synonyms). The
//! paper designates one *canonical representative* per synonym class,
//! obtained as the fixed point of
//! `f(ℓ, u) = (max(ℓ, n − u(m−1)), min(u, n − ℓ(m−1)))` (Theorem 7).
//! Theorem 5 identifies `⟨n, m, ⌊n/m⌋, ⌈n/m⌉⟩` as the *hardest* task of
//! the `⟨n, m, −, −⟩` family: its outputs are contained in every feasible
//! member's outputs, so a solution to it solves them all.

use crate::error::Result;
use crate::spec::SymmetricGsb;

impl SymmetricGsb {
    /// One application of Theorem 7's map
    /// `f(ℓ, u) = (max(ℓ, n − u(m−1)), min(u, n − ℓ(m−1)))`
    /// (clamped to stay well-formed; for feasible tasks the clamps are
    /// inert, see Theorem 7's proof: `0 ≤ ℓ ≤ ℓ' ≤ n/m ≤ u' ≤ u ≤ n`).
    #[must_use]
    pub fn canonical_step(&self) -> SymmetricGsb {
        let (n, m, l, u) = (
            self.n() as i64,
            self.m() as i64,
            self.l() as i64,
            self.u() as i64,
        );
        let l_new = l.max(n - u * (m - 1)).clamp(0, n);
        let u_new = u.min(n - l * (m - 1)).clamp(l_new, n);
        SymmetricGsb::new(self.n(), self.m(), l_new as usize, u_new as usize)
            .expect("canonical step preserves well-formedness for feasible tasks")
    }

    /// The canonical representative of a feasible task (**Theorem 7**): the
    /// fixed point of [`SymmetricGsb::canonical_step`]. The result is a
    /// synonym of `self` and is the unique member of the synonym class on
    /// which `f` is the identity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`](crate::Error::Infeasible) for
    /// infeasible tasks (their synonym class is the empty task and has no
    /// canonical parameters).
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_core::SymmetricGsb;
    ///
    /// // Table 1: ⟨6,3,1,6⟩, ⟨6,3,1,5⟩ and ⟨6,3,1,4⟩ all canonicalize to
    /// // ⟨6,3,1,4⟩.
    /// let t = SymmetricGsb::new(6, 3, 1, 6)?;
    /// assert_eq!(t.canonical()?, SymmetricGsb::new(6, 3, 1, 4)?);
    /// # Ok::<(), gsb_core::Error>(())
    /// ```
    pub fn canonical(&self) -> Result<SymmetricGsb> {
        self.require_feasible()?;
        let mut current = *self;
        loop {
            let next = current.canonical_step();
            if next == current {
                return Ok(current);
            }
            current = next;
        }
    }

    /// Whether this task is its own canonical representative.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`](crate::Error::Infeasible) for
    /// infeasible tasks.
    pub fn is_canonical(&self) -> Result<bool> {
        Ok(self.canonical()? == *self)
    }

    /// The *hardest* task of the feasible `⟨n, m, −, −⟩` family
    /// (**Theorem 5**): `⟨n, m, ⌊n/m⌋, ⌈n/m⌉⟩`. Its output set is included
    /// in every feasible member's output set, so any algorithm solving it
    /// solves every task of the family.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_core::SymmetricGsb;
    ///
    /// let hardest = SymmetricGsb::hardest(6, 3)?;
    /// assert_eq!(hardest, SymmetricGsb::new(6, 3, 2, 2)?);
    /// // Perfect renaming is the hardest ⟨n, n, −, −⟩ task.
    /// assert_eq!(
    ///     SymmetricGsb::hardest(5, 5)?,
    ///     SymmetricGsb::perfect_renaming(5)?
    /// );
    /// # Ok::<(), gsb_core::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`](crate::Error::InvalidSpec) if
    /// `n = 0` or `m = 0`.
    pub fn hardest(n: usize, m: usize) -> Result<SymmetricGsb> {
        SymmetricGsb::new(n, m, n / m, n.div_ceil(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelSet;

    fn task(n: usize, m: usize, l: usize, u: usize) -> SymmetricGsb {
        SymmetricGsb::new(n, m, l, u).unwrap()
    }

    /// Iterates all feasible symmetric tasks for given n up to m ≤ n.
    fn feasible_tasks(n: usize) -> Vec<SymmetricGsb> {
        let mut out = Vec::new();
        for m in 1..=n {
            for l in 0..=n / m {
                for u in l.max(n.div_ceil(m))..=n {
                    out.push(task(n, m, l, u));
                }
            }
        }
        out
    }

    #[test]
    fn canonical_is_a_synonym() {
        for t in feasible_tasks(8) {
            let c = t.canonical().unwrap();
            assert!(t.is_synonym_of(&c), "{t} vs {c}");
        }
    }

    #[test]
    fn canonical_is_idempotent() {
        for t in feasible_tasks(8) {
            let c = t.canonical().unwrap();
            assert_eq!(c.canonical().unwrap(), c, "{t}");
            assert!(c.is_canonical().unwrap());
        }
    }

    #[test]
    fn canonical_is_unique_per_synonym_class() {
        // Any two synonyms must canonicalize to the same 4-tuple.
        let all = feasible_tasks(7);
        for a in &all {
            for b in &all {
                if a.n() == b.n() && a.m() == b.m() && a.is_synonym_of(b) {
                    assert_eq!(
                        a.canonical().unwrap(),
                        b.canonical().unwrap(),
                        "synonyms {a} and {b} disagree on canonical form"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_7_bounds_ordering() {
        // Proof of Theorem 7: 0 ≤ ℓ ≤ ℓ' ≤ n/m ≤ u' ≤ u ≤ n.
        for t in feasible_tasks(9) {
            let c = t.canonical().unwrap();
            assert!(t.l() <= c.l());
            assert!(c.u() <= t.u());
            assert!(c.l() * t.m() <= t.n(), "{t}: ℓ' ≤ n/m violated");
            assert!(t.n() <= c.u() * t.m(), "{t}: n/m ≤ u' violated");
        }
    }

    #[test]
    fn paper_table_1_canonical_marks() {
        // The 7 canonical representatives of Table 1.
        let canonical = [(0, 6), (0, 5), (0, 4), (1, 4), (0, 3), (1, 3), (2, 2)];
        for (l, u) in canonical {
            assert!(
                task(6, 3, l, u).is_canonical().unwrap(),
                "⟨6,3,{l},{u}⟩ should be canonical"
            );
        }
        // The non-canonical rows of Table 1 and their representatives.
        let non_canonical = [
            ((1, 6), (1, 4)),
            ((1, 5), (1, 4)),
            ((2, 5), (2, 2)),
            ((2, 4), (2, 2)),
            ((2, 3), (2, 2)),
            ((0, 2), (2, 2)),
            ((1, 2), (2, 2)),
        ];
        for ((l, u), (cl, cu)) in non_canonical {
            let t = task(6, 3, l, u);
            assert!(
                !t.is_canonical().unwrap(),
                "⟨6,3,{l},{u}⟩ must not be canonical"
            );
            assert_eq!(t.canonical().unwrap(), task(6, 3, cl, cu));
        }
    }

    #[test]
    fn lemma_4_raising_u_grows_outputs() {
        for t in feasible_tasks(7) {
            if t.u() < t.n() {
                let t2 = t.with_u(t.u() + 1).unwrap();
                assert!(
                    t.kernel_set().is_subset_of(&t2.kernel_set()),
                    "Lemma 4 fails for {t}"
                );
            }
        }
    }

    #[test]
    fn lemma_5_lowering_l_grows_outputs() {
        for t in feasible_tasks(7) {
            if t.l() > 0 {
                let t2 = t.with_l(t.l() - 1).unwrap();
                assert!(
                    t.kernel_set().is_subset_of(&t2.kernel_set()),
                    "Lemma 5 fails for {t}"
                );
            }
        }
    }

    #[test]
    fn theorem_5_hardest_task() {
        for n in 2..=9 {
            for m in 1..=n {
                let h = SymmetricGsb::hardest(n, m).unwrap();
                assert!(h.is_feasible());
                // The hardest task's kernel set is exactly the balanced kernel.
                let ks = h.kernel_set();
                assert_eq!(ks.len(), 1, "{h}");
                assert!(ks.contains(&h.balanced_kernel()));
                // It is included in every feasible ⟨n,m,−,−⟩ task.
                for l in 0..=n / m {
                    for u in l.max(n.div_ceil(m))..=n {
                        let t = task(n, m, l, u);
                        assert!(h.is_subtask_of(&t), "{h} ⊄ {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_6_anchored_companions() {
        // (i) ℓ' = n − u(m−1) ≥ ℓ ⇒ S(⟨n,m,ℓ',u⟩) ⊆ S(⟨n,m,ℓ,u⟩)
        // (ii) u' = n − ℓ(m−1) ≤ u ⇒ S(⟨n,m,ℓ,u'⟩) ⊆ S(⟨n,m,ℓ,u⟩)
        for t in feasible_tasks(8) {
            let (n, m, l, u) = (t.n() as i64, t.m() as i64, t.l() as i64, t.u() as i64);
            let l_prime = n - u * (m - 1);
            if l_prime >= l && l_prime >= 0 {
                let t1 = task(t.n(), t.m(), l_prime as usize, t.u());
                assert!(
                    t1.kernel_set().is_subset_of(&t.kernel_set()),
                    "Theorem 6(i) fails for {t}"
                );
            }
            let u_prime = n - l * (m - 1);
            if u_prime <= u && u_prime >= l {
                let t2 = task(t.n(), t.m(), t.l(), u_prime as usize);
                assert!(
                    t2.kernel_set().is_subset_of(&t.kernel_set()),
                    "Theorem 6(ii) fails for {t}"
                );
            }
        }
    }

    #[test]
    fn hardest_10_4_and_10_5_examples() {
        // Section 4.4 remark: ⟨10,4,2,3⟩ is neither ℓ- nor u-anchored,
        // while ⟨10,5,2,2⟩ is (ℓ,u)-anchored.
        use crate::anchoring::Anchoring;
        let a = SymmetricGsb::hardest(10, 4).unwrap();
        assert_eq!(a, task(10, 4, 2, 3));
        assert_eq!(a.anchoring().unwrap(), Anchoring::None);
        let b = SymmetricGsb::hardest(10, 5).unwrap();
        assert_eq!(b, task(10, 5, 2, 2));
        assert_eq!(b.anchoring().unwrap(), Anchoring::Both);
    }

    #[test]
    fn canonical_of_infeasible_errors() {
        let t = task(5, 4, 0, 1);
        assert!(t.canonical().is_err());
    }

    #[test]
    fn kernel_sets_of_canonical_family_nest_linearly_for_fixed_l() {
        // Sanity: for fixed ℓ, kernel sets grow with u (Lemma 4 chain).
        let chain: Vec<KernelSet> = (2..=6).map(|u| task(6, 3, 1, u).kernel_set()).collect();
        for w in chain.windows(2) {
            assert!(w[0].is_subset_of(&w[1]));
        }
    }
}
