//! GSB task specifications (Definition 2 of the paper).
//!
//! A *generalized symmetry breaking* task `⟨n, m, ℓ⃗, u⃗⟩-GSB` requires each
//! of `n` processes to decide a value in `[1..m]` such that each value `v`
//! is decided by at least `ℓ_v` and at most `u_v` processes. When all lower
//! bounds equal `ℓ` and all upper bounds equal `u` the task is *symmetric*
//! and written `⟨n, m, ℓ, u⟩-GSB`.
//!
//! The module provides the asymmetric [`GsbSpec`] and the symmetric
//! [`SymmetricGsb`], plus constructors for every task instance named in the
//! paper (election, weak symmetry breaking, renaming, slots, …).

use crate::error::{Error, Result};
use crate::output::OutputVector;

/// An asymmetric generalized symmetry breaking task `⟨n, m, ℓ⃗, u⃗⟩-GSB`.
///
/// Invariants enforced at construction: `m ≥ 1`, `ℓ_v ≤ u_v` and `u_v ≤ n`
/// for every value `v`. Feasibility (Lemma 1) is *not* required — the paper
/// studies infeasible specs too — but is queryable via
/// [`GsbSpec::is_feasible`].
///
/// # Examples
///
/// ```
/// use gsb_core::GsbSpec;
///
/// // Election: exactly one process outputs 1, exactly n−1 output 2.
/// let election = GsbSpec::election(5).unwrap();
/// assert_eq!(election.n(), 5);
/// assert_eq!(election.m(), 2);
/// assert!(election.is_feasible());
/// assert!(!election.is_symmetric());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GsbSpec {
    n: usize,
    lower: Vec<usize>,
    upper: Vec<usize>,
}

impl GsbSpec {
    /// Creates an asymmetric GSB specification.
    ///
    /// `lower[v-1]` and `upper[v-1]` bound how many processes may decide
    /// value `v ∈ [1..m]` where `m = lower.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `m = 0`, the two vectors have
    /// different lengths, some `ℓ_v > u_v`, or some `u_v > n`.
    pub fn new(n: usize, lower: Vec<usize>, upper: Vec<usize>) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidSpec {
                reason: "need at least one process".into(),
            });
        }
        if lower.is_empty() {
            return Err(Error::InvalidSpec {
                reason: "need at least one output value (m ≥ 1)".into(),
            });
        }
        if lower.len() != upper.len() {
            return Err(Error::InvalidSpec {
                reason: format!(
                    "lower bounds have dimension {} but upper bounds {}",
                    lower.len(),
                    upper.len()
                ),
            });
        }
        for (v, (&l, &u)) in lower.iter().zip(&upper).enumerate() {
            if l > u {
                return Err(Error::InvalidSpec {
                    reason: format!("value {}: lower bound {l} exceeds upper bound {u}", v + 1),
                });
            }
            if u > n {
                return Err(Error::InvalidSpec {
                    reason: format!(
                        "value {}: upper bound {u} exceeds the number of processes {n}",
                        v + 1
                    ),
                });
            }
        }
        Ok(GsbSpec { n, lower, upper })
    }

    /// The *election* asymmetric GSB task (Section 3.2): exactly one process
    /// outputs `1` and exactly `n − 1` processes output `2`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for `n < 2`.
    pub fn election(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(Error::InvalidSpec {
                reason: "election needs at least two processes".into(),
            });
        }
        GsbSpec::new(n, vec![1, n - 1], vec![1, n - 1])
    }

    /// The *committee assignment* task from the paper's introduction: each
    /// of `n` persons joins exactly one of `m` committees, committee `v`
    /// having between `bounds[v].0` and `bounds[v].1` members.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if the bounds are malformed.
    pub fn committees(n: usize, bounds: &[(usize, usize)]) -> Result<Self> {
        let lower = bounds.iter().map(|&(l, _)| l).collect();
        let upper = bounds.iter().map(|&(_, u)| u).collect();
        GsbSpec::new(n, lower, upper)
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of output values `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.lower.len()
    }

    /// Lower bound `ℓ_v` for value `v ∈ [1..m]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `[1..m]`.
    #[must_use]
    pub fn lower(&self, v: usize) -> usize {
        self.lower[v - 1]
    }

    /// Upper bound `u_v` for value `v ∈ [1..m]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `[1..m]`.
    #[must_use]
    pub fn upper(&self, v: usize) -> usize {
        self.upper[v - 1]
    }

    /// All lower bounds, indexed by `v − 1`.
    #[must_use]
    pub fn lower_bounds(&self) -> &[usize] {
        &self.lower
    }

    /// All upper bounds, indexed by `v − 1`.
    #[must_use]
    pub fn upper_bounds(&self) -> &[usize] {
        &self.upper
    }

    /// Whether the task is feasible, i.e. has at least one legal output
    /// vector (Lemma 1): `Σ ℓ_v ≤ n ≤ Σ u_v`.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        let lo: usize = self.lower.iter().sum();
        let hi: usize = self.upper.iter().sum();
        lo <= self.n && self.n <= hi
    }

    /// Returns `Ok(())` if feasible, an [`Error::Infeasible`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] when the output set is empty.
    pub fn require_feasible(&self) -> Result<()> {
        if self.is_feasible() {
            Ok(())
        } else {
            Err(Error::Infeasible {
                n: self.n,
                m: self.m(),
                lower_sum: self.lower.iter().sum(),
                upper_sum: self.upper.iter().sum(),
            })
        }
    }

    /// Whether all lower bounds are equal and all upper bounds are equal,
    /// i.e. the spec is expressible as a [`SymmetricGsb`].
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        self.lower.windows(2).all(|w| w[0] == w[1]) && self.upper.windows(2).all(|w| w[0] == w[1])
    }

    /// Converts to a [`SymmetricGsb`] if [`GsbSpec::is_symmetric`] holds.
    #[must_use]
    pub fn as_symmetric(&self) -> Option<SymmetricGsb> {
        if self.is_symmetric() {
            Some(SymmetricGsb {
                n: self.n,
                m: self.m(),
                l: self.lower[0],
                u: self.upper[0],
            })
        } else {
            None
        }
    }

    /// Whether `output` satisfies the task's asymmetric agreement property:
    /// every value `v ∈ [1..m]` is decided at least `ℓ_v` and at most `u_v`
    /// times, and no other value appears.
    #[must_use]
    pub fn is_legal_output(&self, output: &OutputVector) -> bool {
        if output.len() != self.n {
            return false;
        }
        let m = self.m();
        let mut counts = vec![0usize; m];
        for &v in output.values() {
            if v == 0 || v > m {
                return false;
            }
            counts[v - 1] += 1;
        }
        counts
            .iter()
            .zip(&self.lower)
            .zip(&self.upper)
            .all(|((&c, &l), &u)| l <= c && c <= u)
    }

    /// Deterministically enumerates all legal output vectors, in
    /// lexicographic order. Exponential in `n`; intended for small systems
    /// (tests, the topology checker, and the universal construction's
    /// "first legal vector" rule of Theorem 8).
    #[must_use]
    pub fn legal_outputs(&self) -> Vec<OutputVector> {
        let mut out = Vec::new();
        let mut current = vec![0usize; self.n];
        let mut counts = vec![0usize; self.m()];
        self.enumerate_rec(0, &mut current, &mut counts, &mut out);
        out
    }

    /// The lexicographically first legal output vector, if any.
    ///
    /// This is the deterministic choice rule used by the universal
    /// construction for asymmetric tasks (proof of Theorem 8: "order these
    /// vectors in the same, deterministic way, and pick the first one").
    /// Computed greedily without materializing the whole output set.
    #[must_use]
    pub fn first_legal_output(&self) -> Option<OutputVector> {
        let m = self.m();
        let mut counts = vec![0usize; m];
        let mut values = Vec::with_capacity(self.n);
        // Greedy: at each position try the smallest value whose upper bound
        // is not yet saturated and such that the remaining positions can
        // still satisfy every remaining lower bound.
        for pos in 0..self.n {
            let remaining_after = self.n - pos - 1;
            let mut chosen = None;
            for v in 1..=m {
                if counts[v - 1] >= self.upper[v - 1] {
                    continue;
                }
                counts[v - 1] += 1;
                let deficit: usize = self
                    .lower
                    .iter()
                    .zip(&counts)
                    .map(|(&l, &c)| l.saturating_sub(c))
                    .sum();
                if deficit <= remaining_after {
                    chosen = Some(v);
                    break;
                }
                counts[v - 1] -= 1;
            }
            match chosen {
                Some(v) => values.push(v),
                None => return None,
            }
        }
        Some(OutputVector::new(values))
    }

    fn enumerate_rec(
        &self,
        pos: usize,
        current: &mut Vec<usize>,
        counts: &mut Vec<usize>,
        out: &mut Vec<OutputVector>,
    ) {
        if pos == self.n {
            let legal = counts
                .iter()
                .zip(&self.lower)
                .all(|(&c, &l)| c >= l);
            if legal {
                out.push(OutputVector::new(current.clone()));
            }
            return;
        }
        let remaining_after = self.n - pos - 1;
        for v in 1..=self.m() {
            if counts[v - 1] >= self.upper[v - 1] {
                continue;
            }
            counts[v - 1] += 1;
            // Prune: remaining positions must cover all outstanding lower bounds.
            let deficit: usize = self
                .lower
                .iter()
                .zip(counts.iter())
                .map(|(&l, &c)| l.saturating_sub(c))
                .sum();
            if deficit <= remaining_after {
                current[pos] = v;
                self.enumerate_rec(pos + 1, current, counts, out);
            }
            counts[v - 1] -= 1;
        }
    }
}

impl std::fmt::Display for GsbSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(sym) = self.as_symmetric() {
            return write!(f, "{sym}");
        }
        write!(f, "⟨{}, {}, {:?}, {:?}⟩-GSB", self.n, self.m(), self.lower, self.upper)
    }
}

impl From<SymmetricGsb> for GsbSpec {
    fn from(sym: SymmetricGsb) -> Self {
        GsbSpec {
            n: sym.n,
            lower: vec![sym.l; sym.m],
            upper: vec![sym.u; sym.m],
        }
    }
}

/// A symmetric generalized symmetry breaking task `⟨n, m, ℓ, u⟩-GSB`.
///
/// Every value must be decided at least `ℓ` and at most `u` times. This is
/// the sub-family whose combinatorial structure Section 4 of the paper
/// develops (kernel vectors, anchoring, canonical representatives); those
/// operations live in the [`kernel`](crate::kernel),
/// [`anchoring`](crate::anchoring) and [`canonical`](crate::canonical)
/// modules and take `SymmetricGsb` receivers.
///
/// # Examples
///
/// ```
/// use gsb_core::SymmetricGsb;
///
/// // Perfect renaming ⟨n, n, 1, 1⟩: n processes acquire the names 1..n.
/// let pr = SymmetricGsb::perfect_renaming(4).unwrap();
/// assert_eq!((pr.n(), pr.m(), pr.l(), pr.u()), (4, 4, 1, 1));
///
/// // Weak symmetry breaking is the 2-slot task.
/// let wsb = SymmetricGsb::wsb(4).unwrap();
/// let slot2 = SymmetricGsb::slot(4, 2).unwrap();
/// assert!(wsb.is_synonym_of(&slot2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SymmetricGsb {
    n: usize,
    m: usize,
    l: usize,
    u: usize,
}

impl SymmetricGsb {
    /// Creates the symmetric task `⟨n, m, ℓ, u⟩-GSB`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n = 0`, `m = 0`, `ℓ > u` or
    /// `u > n`.
    pub fn new(n: usize, m: usize, l: usize, u: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidSpec {
                reason: "need at least one process".into(),
            });
        }
        if m == 0 {
            return Err(Error::InvalidSpec {
                reason: "need at least one output value (m ≥ 1)".into(),
            });
        }
        if l > u {
            return Err(Error::InvalidSpec {
                reason: format!("lower bound {l} exceeds upper bound {u}"),
            });
        }
        if u > n {
            return Err(Error::InvalidSpec {
                reason: format!("upper bound {u} exceeds the number of processes {n}"),
            });
        }
        Ok(SymmetricGsb { n, m, l, u })
    }

    /// The `m`-renaming task `⟨n, m, 0, 1⟩-GSB`: processes decide distinct
    /// names in `[1..m]` (Section 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] on malformed parameters (e.g. `m = 0`).
    pub fn renaming(n: usize, m: usize) -> Result<Self> {
        SymmetricGsb::new(n, m, 0, 1)
    }

    /// *Perfect renaming* `⟨n, n, 1, 1⟩-GSB`: the optimal name space
    /// `[1..n]`. Universal for the whole GSB family (Theorem 8) and not
    /// wait-free solvable (Corollary 5).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n = 0`.
    pub fn perfect_renaming(n: usize) -> Result<Self> {
        SymmetricGsb::new(n, n, 1, 1)
    }

    /// The trivially solvable `(2n−1)`-renaming task `⟨n, 2n−1, 0, 1⟩-GSB`
    /// (processes may simply decide their own identity).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n = 0`.
    pub fn loose_renaming(n: usize) -> Result<Self> {
        SymmetricGsb::new(n, 2 * n - 1, 0, 1)
    }

    /// *Weak symmetry breaking* `⟨n, 2, 1, n−1⟩-GSB`: binary decisions, not
    /// all equal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n < 2`.
    pub fn wsb(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(Error::InvalidSpec {
                reason: "weak symmetry breaking needs at least two processes".into(),
            });
        }
        SymmetricGsb::new(n, 2, 1, n - 1)
    }

    /// *k-weak symmetry breaking* `⟨n, 2, k, n−k⟩-GSB` with `k ≤ n/2`
    /// (Section 3.2); `k = 1` is [`SymmetricGsb::wsb`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `k = 0` or `k > n/2`.
    pub fn k_wsb(n: usize, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidSpec {
                reason: "k-WSB requires k ≥ 1".into(),
            });
        }
        if 2 * k > n {
            return Err(Error::InvalidSpec {
                reason: format!("k-WSB requires k ≤ n/2 but k = {k}, n = {n}"),
            });
        }
        SymmetricGsb::new(n, 2, k, n - k)
    }

    /// The *k-slot* task `⟨n, k, 1, n⟩-GSB`: every value in `[1..k]` is
    /// decided at least once (Section 3.2). Clamps the redundant upper
    /// bound to `n` as the paper does; note `⟨n, k, 1, n−k+1⟩` is a synonym.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `k = 0` or `k > n`.
    pub fn slot(n: usize, k: usize) -> Result<Self> {
        if k > n {
            return Err(Error::InvalidSpec {
                reason: format!("{k}-slot infeasible for {n} processes (k ≤ n required)"),
            });
        }
        SymmetricGsb::new(n, k, 1, n)
    }

    /// *x-bounded homonymous renaming* `⟨n, ⌈(2n−1)/x⌉, 0, x⟩-GSB`
    /// (Corollary 2): at most `x` processes share any name; solvable with
    /// no communication by deciding `⌈id/x⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `x = 0` or `x > n`.
    pub fn homonymous_renaming(n: usize, x: usize) -> Result<Self> {
        if x == 0 {
            return Err(Error::InvalidSpec {
                reason: "homonymous renaming requires x ≥ 1".into(),
            });
        }
        let m = (2 * n - 1).div_ceil(x);
        SymmetricGsb::new(n, m, 0, x)
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of output values `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Common lower bound `ℓ`.
    #[must_use]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Common upper bound `u`.
    #[must_use]
    pub fn u(&self) -> usize {
        self.u
    }

    /// Feasibility per Lemma 2: `m·ℓ ≤ n ≤ m·u`.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.m * self.l <= self.n && self.n <= self.m * self.u
    }

    /// Returns `Ok(())` if feasible, an [`Error::Infeasible`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] when the output set is empty.
    pub fn require_feasible(&self) -> Result<()> {
        if self.is_feasible() {
            Ok(())
        } else {
            Err(Error::Infeasible {
                n: self.n,
                m: self.m,
                lower_sum: self.m * self.l,
                upper_sum: self.m * self.u,
            })
        }
    }

    /// Converts into the general asymmetric representation.
    #[must_use]
    pub fn to_spec(&self) -> GsbSpec {
        GsbSpec::from(*self)
    }

    /// Whether `output` is a legal output vector of this task.
    #[must_use]
    pub fn is_legal_output(&self, output: &OutputVector) -> bool {
        self.to_spec().is_legal_output(output)
    }

    /// Replaces the upper bound, keeping everything else (used by the
    /// anchoring definitions).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if the new bounds are malformed.
    pub fn with_u(&self, u: usize) -> Result<Self> {
        SymmetricGsb::new(self.n, self.m, self.l, u)
    }

    /// Replaces the lower bound, keeping everything else.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if the new bounds are malformed.
    pub fn with_l(&self, l: usize) -> Result<Self> {
        SymmetricGsb::new(self.n, self.m, l, self.u)
    }
}

impl std::fmt::Display for SymmetricGsb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {}, {}, {}⟩-GSB", self.n, self.m, self.l, self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_1_feasibility_asymmetric() {
        // Σℓ ≤ n ≤ Σu required.
        let ok = GsbSpec::new(6, vec![1, 1, 1], vec![4, 4, 4]).unwrap();
        assert!(ok.is_feasible());
        let too_low = GsbSpec::new(6, vec![3, 3, 3], vec![3, 3, 3]).unwrap();
        assert!(!too_low.is_feasible()); // Σℓ = 9 > 6
        let too_high = GsbSpec::new(6, vec![0, 0, 0], vec![1, 1, 1]).unwrap();
        assert!(!too_high.is_feasible()); // Σu = 3 < 6
    }

    #[test]
    fn lemma_2_feasibility_symmetric() {
        for n in 1..=8 {
            for m in 1..=n {
                for l in 0..=n {
                    for u in l..=n {
                        let Ok(t) = SymmetricGsb::new(n, m, l, u) else {
                            continue;
                        };
                        let by_lemma = m * l <= n && n <= m * u;
                        assert_eq!(t.is_feasible(), by_lemma, "{t}");
                        // Cross-check against actual output enumeration for
                        // small sizes: feasible ⇔ at least one legal output.
                        if n <= 5 {
                            let any = !t.to_spec().legal_outputs().is_empty();
                            assert_eq!(t.is_feasible(), any, "{t}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn election_shape() {
        let e = GsbSpec::election(4).unwrap();
        assert_eq!(e.lower_bounds(), &[1, 3]);
        assert_eq!(e.upper_bounds(), &[1, 3]);
        assert!(e.is_feasible());
        assert!(GsbSpec::election(1).is_err());
        // n = 2 election: one leader, one follower.
        let e2 = GsbSpec::election(2).unwrap();
        assert_eq!(e2.legal_outputs().len(), 2); // [1,2] and [2,1]
    }

    #[test]
    fn election_legal_outputs_have_one_leader() {
        let e = GsbSpec::election(4).unwrap();
        let outs = e.legal_outputs();
        assert_eq!(outs.len(), 4); // choose the leader position
        for o in &outs {
            assert_eq!(o.values().iter().filter(|&&v| v == 1).count(), 1);
        }
    }

    #[test]
    fn renaming_is_0_1_gsb() {
        let r = SymmetricGsb::renaming(5, 9).unwrap();
        assert_eq!((r.l(), r.u()), (0, 1));
        assert!(r.is_feasible());
        // m < n infeasible.
        let r = SymmetricGsb::renaming(5, 4).unwrap();
        assert!(!r.is_feasible());
    }

    #[test]
    fn perfect_renaming_outputs_are_permutations() {
        let pr = SymmetricGsb::perfect_renaming(3).unwrap();
        let outs = pr.to_spec().legal_outputs();
        assert_eq!(outs.len(), 6); // 3! permutations
    }

    #[test]
    fn wsb_is_2_slot() {
        // WSB ⟨n,2,1,n−1⟩ and 2-slot ⟨n,2,1,n⟩ have the same outputs
        // (not all processes can take the same value anyway when each of
        // the 2 values must appear).
        for n in 2..7 {
            let wsb = SymmetricGsb::wsb(n).unwrap().to_spec();
            let slot = SymmetricGsb::slot(n, 2).unwrap().to_spec();
            assert_eq!(wsb.legal_outputs(), slot.legal_outputs(), "n = {n}");
        }
    }

    #[test]
    fn k_wsb_bounds() {
        assert!(SymmetricGsb::k_wsb(6, 0).is_err());
        assert!(SymmetricGsb::k_wsb(6, 4).is_err()); // k > n/2
        let t = SymmetricGsb::k_wsb(6, 3).unwrap();
        assert_eq!((t.l(), t.u()), (3, 3));
    }

    #[test]
    fn homonymous_renaming_parameters() {
        // n = 5, x = 3 ⇒ m = ⌈9/3⌉ = 3.
        let t = SymmetricGsb::homonymous_renaming(5, 3).unwrap();
        assert_eq!((t.m(), t.l(), t.u()), (3, 0, 3));
        assert!(t.is_feasible());
    }

    #[test]
    fn legal_output_checking() {
        let wsb = SymmetricGsb::wsb(3).unwrap();
        assert!(wsb.is_legal_output(&OutputVector::new(vec![1, 2, 1])));
        assert!(!wsb.is_legal_output(&OutputVector::new(vec![1, 1, 1])));
        assert!(!wsb.is_legal_output(&OutputVector::new(vec![1, 2, 3]))); // 3 > m
        assert!(!wsb.is_legal_output(&OutputVector::new(vec![1, 2]))); // wrong len
    }

    #[test]
    fn first_legal_output_matches_enumeration() {
        let cases: Vec<GsbSpec> = vec![
            GsbSpec::election(4).unwrap(),
            SymmetricGsb::wsb(4).unwrap().to_spec(),
            SymmetricGsb::perfect_renaming(4).unwrap().to_spec(),
            SymmetricGsb::slot(5, 3).unwrap().to_spec(),
            SymmetricGsb::renaming(3, 5).unwrap().to_spec(),
            GsbSpec::committees(5, &[(1, 2), (2, 3), (0, 1)]).unwrap(),
        ];
        for spec in cases {
            let all = spec.legal_outputs();
            assert_eq!(
                spec.first_legal_output().as_ref(),
                all.first(),
                "spec {spec}"
            );
        }
    }

    #[test]
    fn first_legal_output_none_when_infeasible() {
        let spec = SymmetricGsb::renaming(5, 4).unwrap().to_spec();
        assert_eq!(spec.first_legal_output(), None);
        assert!(spec.legal_outputs().is_empty());
    }

    #[test]
    fn symmetric_round_trip() {
        let t = SymmetricGsb::new(6, 3, 1, 4).unwrap();
        let spec = t.to_spec();
        assert!(spec.is_symmetric());
        assert_eq!(spec.as_symmetric(), Some(t));
        let asym = GsbSpec::election(3).unwrap();
        assert_eq!(asym.as_symmetric(), None);
    }

    #[test]
    fn constructor_validation() {
        assert!(SymmetricGsb::new(0, 1, 0, 0).is_err());
        assert!(SymmetricGsb::new(3, 0, 0, 1).is_err());
        assert!(SymmetricGsb::new(3, 2, 2, 1).is_err()); // l > u
        assert!(SymmetricGsb::new(3, 2, 1, 4).is_err()); // u > n
        assert!(GsbSpec::new(3, vec![1, 0], vec![1]).is_err()); // dim mismatch
    }

    #[test]
    fn display_formats() {
        let t = SymmetricGsb::new(6, 3, 1, 4).unwrap();
        assert_eq!(t.to_string(), "⟨6, 3, 1, 4⟩-GSB");
        let e = GsbSpec::election(3).unwrap();
        assert!(e.to_string().contains("[1, 2]"));
    }

    #[test]
    fn legal_outputs_count_wsb() {
        // WSB on n processes: 2^n − 2 output vectors (all binary vectors
        // except the two constant ones).
        for n in 2..=8 {
            let wsb = SymmetricGsb::wsb(n).unwrap().to_spec();
            assert_eq!(wsb.legal_outputs().len(), (1usize << n) - 2, "n = {n}");
        }
    }
}
