//! GSB task specifications (Definition 2 of the paper).
//!
//! A *generalized symmetry breaking* task `⟨n, m, ℓ⃗, u⃗⟩-GSB` requires each
//! of `n` processes to decide a value in `[1..m]` such that each value `v`
//! is decided by at least `ℓ_v` and at most `u_v` processes. When all lower
//! bounds equal `ℓ` and all upper bounds equal `u` the task is *symmetric*
//! and written `⟨n, m, ℓ, u⟩-GSB`.
//!
//! The module provides the asymmetric [`GsbSpec`] and the symmetric
//! [`SymmetricGsb`], plus constructors for every task instance named in the
//! paper (election, weak symmetry breaking, renaming, slots, …).

use crate::error::{Error, Result};
use crate::output::OutputVector;

/// An asymmetric generalized symmetry breaking task `⟨n, m, ℓ⃗, u⃗⟩-GSB`.
///
/// Invariants enforced at construction: `m ≥ 1`, `ℓ_v ≤ u_v` and `u_v ≤ n`
/// for every value `v`. Feasibility (Lemma 1) is *not* required — the paper
/// studies infeasible specs too — but is queryable via
/// [`GsbSpec::is_feasible`].
///
/// # Examples
///
/// ```
/// use gsb_core::GsbSpec;
///
/// // Election: exactly one process outputs 1, exactly n−1 output 2.
/// let election = GsbSpec::election(5).unwrap();
/// assert_eq!(election.n(), 5);
/// assert_eq!(election.m(), 2);
/// assert!(election.is_feasible());
/// assert!(!election.is_symmetric());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GsbSpec {
    n: usize,
    lower: Vec<usize>,
    upper: Vec<usize>,
}

impl GsbSpec {
    /// Creates an asymmetric GSB specification.
    ///
    /// `lower[v-1]` and `upper[v-1]` bound how many processes may decide
    /// value `v ∈ [1..m]` where `m = lower.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `m = 0`, the two vectors have
    /// different lengths, some `ℓ_v > u_v`, or some `u_v > n`.
    pub fn new(n: usize, lower: Vec<usize>, upper: Vec<usize>) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidSpec {
                reason: "need at least one process".into(),
            });
        }
        if lower.is_empty() {
            return Err(Error::InvalidSpec {
                reason: "need at least one output value (m ≥ 1)".into(),
            });
        }
        if lower.len() != upper.len() {
            return Err(Error::InvalidSpec {
                reason: format!(
                    "lower bounds have dimension {} but upper bounds {}",
                    lower.len(),
                    upper.len()
                ),
            });
        }
        for (v, (&l, &u)) in lower.iter().zip(&upper).enumerate() {
            if l > u {
                return Err(Error::InvalidSpec {
                    reason: format!("value {}: lower bound {l} exceeds upper bound {u}", v + 1),
                });
            }
            if u > n {
                return Err(Error::InvalidSpec {
                    reason: format!(
                        "value {}: upper bound {u} exceeds the number of processes {n}",
                        v + 1
                    ),
                });
            }
        }
        Ok(GsbSpec { n, lower, upper })
    }

    /// The *election* asymmetric GSB task (Section 3.2): exactly one process
    /// outputs `1` and exactly `n − 1` processes output `2`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for `n < 2`.
    pub fn election(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(Error::InvalidSpec {
                reason: "election needs at least two processes".into(),
            });
        }
        GsbSpec::new(n, vec![1, n - 1], vec![1, n - 1])
    }

    /// The *committee assignment* task from the paper's introduction: each
    /// of `n` persons joins exactly one of `m` committees, committee `v`
    /// having between `bounds[v].0` and `bounds[v].1` members.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if the bounds are malformed.
    pub fn committees(n: usize, bounds: &[(usize, usize)]) -> Result<Self> {
        let lower = bounds.iter().map(|&(l, _)| l).collect();
        let upper = bounds.iter().map(|&(_, u)| u).collect();
        GsbSpec::new(n, lower, upper)
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of output values `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.lower.len()
    }

    /// Lower bound `ℓ_v` for value `v ∈ [1..m]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `[1..m]`.
    #[must_use]
    pub fn lower(&self, v: usize) -> usize {
        self.lower[v - 1]
    }

    /// Upper bound `u_v` for value `v ∈ [1..m]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `[1..m]`.
    #[must_use]
    pub fn upper(&self, v: usize) -> usize {
        self.upper[v - 1]
    }

    /// All lower bounds, indexed by `v − 1`.
    #[must_use]
    pub fn lower_bounds(&self) -> &[usize] {
        &self.lower
    }

    /// All upper bounds, indexed by `v − 1`.
    #[must_use]
    pub fn upper_bounds(&self) -> &[usize] {
        &self.upper
    }

    /// Whether the task is feasible, i.e. has at least one legal output
    /// vector (Lemma 1): `Σ ℓ_v ≤ n ≤ Σ u_v`.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        let lo: usize = self.lower.iter().sum();
        let hi: usize = self.upper.iter().sum();
        lo <= self.n && self.n <= hi
    }

    /// Returns `Ok(())` if feasible, an [`Error::Infeasible`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] when the output set is empty.
    pub fn require_feasible(&self) -> Result<()> {
        if self.is_feasible() {
            Ok(())
        } else {
            Err(Error::Infeasible {
                n: self.n,
                m: self.m(),
                lower_sum: self.lower.iter().sum(),
                upper_sum: self.upper.iter().sum(),
            })
        }
    }

    /// Whether all lower bounds are equal and all upper bounds are equal,
    /// i.e. the spec is expressible as a [`SymmetricGsb`].
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        self.lower.windows(2).all(|w| w[0] == w[1]) && self.upper.windows(2).all(|w| w[0] == w[1])
    }

    /// Converts to a [`SymmetricGsb`] if [`GsbSpec::is_symmetric`] holds.
    #[must_use]
    pub fn as_symmetric(&self) -> Option<SymmetricGsb> {
        if self.is_symmetric() {
            Some(SymmetricGsb {
                n: self.n,
                m: self.m(),
                l: self.lower[0],
                u: self.upper[0],
            })
        } else {
            None
        }
    }

    /// Whether `output` satisfies the task's asymmetric agreement property:
    /// every value `v ∈ [1..m]` is decided at least `ℓ_v` and at most `u_v`
    /// times, and no other value appears.
    #[must_use]
    pub fn is_legal_output(&self, output: &OutputVector) -> bool {
        if output.len() != self.n {
            return false;
        }
        let m = self.m();
        let mut counts = vec![0usize; m];
        for &v in output.values() {
            if v == 0 || v > m {
                return false;
            }
            counts[v - 1] += 1;
        }
        counts
            .iter()
            .zip(&self.lower)
            .zip(&self.upper)
            .all(|((&c, &l), &u)| l <= c && c <= u)
    }

    /// Deterministically enumerates all legal output vectors, in
    /// lexicographic order. Exponential in `n`; intended for small systems
    /// (tests, the topology checker, and the universal construction's
    /// "first legal vector" rule of Theorem 8).
    ///
    /// This is a thin `collect` over [`GsbSpec::legal_outputs_iter`];
    /// prefer the iterator (streaming, O(n + m) memory) or
    /// [`GsbSpec::legal_output_count`] (closed-form counting, no
    /// enumeration at all) when the materialized `Vec` is not needed.
    #[must_use]
    pub fn legal_outputs(&self) -> Vec<OutputVector> {
        self.legal_outputs_iter().collect()
    }

    /// Lazily enumerates all legal output vectors in lexicographic order
    /// without materializing the (exponentially large) output set.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_core::SymmetricGsb;
    ///
    /// let wsb = SymmetricGsb::wsb(12)?.to_spec();
    /// // 2^12 − 2 vectors — stream the first few without allocating all.
    /// let head: Vec<_> = wsb.legal_outputs_iter().take(3).collect();
    /// assert_eq!(head.len(), 3);
    /// assert_eq!(wsb.legal_output_count(), (1 << 12) - 2);
    /// # Ok::<(), gsb_core::Error>(())
    /// ```
    #[must_use]
    pub fn legal_outputs_iter(&self) -> LegalOutputs<'_> {
        LegalOutputs {
            spec: self,
            values: Vec::with_capacity(self.n),
            counts: vec![0; self.m()],
            deficit: self.lower.iter().sum(),
            started: false,
            done: false,
        }
    }

    /// Counts the legal output vectors by dynamic programming over
    /// per-value count profiles — `O(n²·m)` arithmetic instead of the
    /// exponential enumeration. Saturates at `u128::MAX` for
    /// astronomically large families.
    #[must_use]
    pub fn legal_output_count(&self) -> u128 {
        // ways[r] = number of ways to fill r remaining slots using the
        // values processed so far (scanning v = m down to 1).
        let n = self.n;
        let binomial = binomial_table(n);
        let mut ways = vec![0u128; n + 1];
        ways[0] = 1;
        for v in (1..=self.m()).rev() {
            let (l, u) = (self.lower[v - 1], self.upper[v - 1]);
            let mut next = vec![0u128; n + 1];
            for r in 0..=n {
                let mut total = 0u128;
                for c in l..=u.min(r) {
                    let picks = binomial[r][c];
                    let rest = ways[r - c];
                    total = total.saturating_add(picks.saturating_mul(rest));
                }
                next[r] = total;
            }
            ways = next;
        }
        ways[n]
    }

    /// The lexicographically first legal output vector, if any.
    ///
    /// This is the deterministic choice rule used by the universal
    /// construction for asymmetric tasks (proof of Theorem 8: "order these
    /// vectors in the same, deterministic way, and pick the first one").
    /// Computed greedily without materializing the whole output set.
    #[must_use]
    pub fn first_legal_output(&self) -> Option<OutputVector> {
        let m = self.m();
        let mut counts = vec![0usize; m];
        let mut values = Vec::with_capacity(self.n);
        // Greedy: at each position try the smallest value whose upper bound
        // is not yet saturated and such that the remaining positions can
        // still satisfy every remaining lower bound.
        for pos in 0..self.n {
            let remaining_after = self.n - pos - 1;
            let mut chosen = None;
            for v in 1..=m {
                if counts[v - 1] >= self.upper[v - 1] {
                    continue;
                }
                counts[v - 1] += 1;
                let deficit: usize = self
                    .lower
                    .iter()
                    .zip(&counts)
                    .map(|(&l, &c)| l.saturating_sub(c))
                    .sum();
                if deficit <= remaining_after {
                    chosen = Some(v);
                    break;
                }
                counts[v - 1] -= 1;
            }
            match chosen {
                Some(v) => values.push(v),
                None => return None,
            }
        }
        Some(OutputVector::new(values))
    }
}

/// Pascal's triangle up to row `n`, saturating.
fn binomial_table(n: usize) -> Vec<Vec<u128>> {
    let mut table: Vec<Vec<u128>> = Vec::with_capacity(n + 1);
    for r in 0..=n {
        let mut row = vec![0u128; n + 1];
        row[0] = 1;
        if let Some(prev) = table.last() {
            for (c, pair) in prev.windows(2).enumerate().take(r) {
                row[c + 1] = pair[0].saturating_add(pair[1]);
            }
        }
        table.push(row);
    }
    table
}

/// Lazy lexicographic enumeration of a spec's legal output vectors (see
/// [`GsbSpec::legal_outputs_iter`]).
///
/// Holds O(n + m) state: the current partial assignment, per-value
/// counts, and the running lower-bound deficit used for pruning. Each
/// `next()` backtrack-advances from the previously emitted vector, so the
/// full output set is never materialized.
#[derive(Debug, Clone)]
pub struct LegalOutputs<'a> {
    spec: &'a GsbSpec,
    /// The current (partial or complete) assignment, 1-based values.
    values: Vec<usize>,
    /// How many times each value is used in `values`.
    counts: Vec<usize>,
    /// `Σ_v max(ℓ_v − counts[v], 0)` — slots still owed to lower bounds.
    deficit: usize,
    started: bool,
    done: bool,
}

impl LegalOutputs<'_> {
    /// Membership fast path: `O(n + m)` legality check, no enumeration
    /// (delegates to [`GsbSpec::is_legal_output`]).
    #[must_use]
    pub fn contains(&self, output: &OutputVector) -> bool {
        self.spec.is_legal_output(output)
    }

    /// Counting fast path: closed-form count of the *full* output set
    /// (independent of how far this iterator has advanced); see
    /// [`GsbSpec::legal_output_count`].
    #[must_use]
    pub fn total_count(&self) -> u128 {
        self.spec.legal_output_count()
    }

    /// Places `v` at the current position, maintaining counts + deficit.
    fn place(&mut self, v: usize) {
        if self.counts[v - 1] < self.spec.lower[v - 1] {
            self.deficit -= 1;
        }
        self.counts[v - 1] += 1;
        self.values.push(v);
    }

    /// Removes the last placed value, returning it.
    fn unplace(&mut self) -> Option<usize> {
        let v = self.values.pop()?;
        self.counts[v - 1] -= 1;
        if self.counts[v - 1] < self.spec.lower[v - 1] {
            self.deficit += 1;
        }
        Some(v)
    }

    /// Whether value `v` may be placed at position `values.len()` and
    /// still leave the suffix completable.
    fn admissible(&self, v: usize) -> bool {
        if self.counts[v - 1] >= self.spec.upper[v - 1] {
            return false;
        }
        let remaining_after = self.spec.n - self.values.len() - 1;
        let deficit_after = if self.counts[v - 1] < self.spec.lower[v - 1] {
            self.deficit - 1
        } else {
            self.deficit
        };
        deficit_after <= remaining_after
    }

    /// Completes the assignment to the lexicographically smallest legal
    /// vector, trying values `≥ min_v` at the current position and
    /// backtracking as needed. Returns `false` when the whole space is
    /// exhausted.
    fn extend(&mut self, mut min_v: usize) -> bool {
        let (n, m) = (self.spec.n, self.spec.m());
        loop {
            if self.values.len() == n {
                debug_assert_eq!(self.deficit, 0, "prune guarantees legality");
                return true;
            }
            match (min_v..=m).find(|&v| self.admissible(v)) {
                Some(v) => {
                    self.place(v);
                    min_v = 1;
                }
                None => match self.unplace() {
                    Some(v) => min_v = v + 1,
                    None => return false,
                },
            }
        }
    }
}

impl Iterator for LegalOutputs<'_> {
    type Item = OutputVector;

    fn next(&mut self) -> Option<OutputVector> {
        if self.done {
            return None;
        }
        let found = if self.started {
            // Backtrack off the previously emitted leaf, then advance.
            match self.unplace() {
                Some(v) => self.extend(v + 1),
                None => false,
            }
        } else {
            self.started = true;
            self.extend(1)
        };
        if found {
            Some(OutputVector::new(self.values.clone()))
        } else {
            self.done = true;
            None
        }
    }
}

impl std::fmt::Display for GsbSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(sym) = self.as_symmetric() {
            return write!(f, "{sym}");
        }
        write!(
            f,
            "⟨{}, {}, {:?}, {:?}⟩-GSB",
            self.n,
            self.m(),
            self.lower,
            self.upper
        )
    }
}

impl From<SymmetricGsb> for GsbSpec {
    fn from(sym: SymmetricGsb) -> Self {
        GsbSpec {
            n: sym.n,
            lower: vec![sym.l; sym.m],
            upper: vec![sym.u; sym.m],
        }
    }
}

/// A symmetric generalized symmetry breaking task `⟨n, m, ℓ, u⟩-GSB`.
///
/// Every value must be decided at least `ℓ` and at most `u` times. This is
/// the sub-family whose combinatorial structure Section 4 of the paper
/// develops (kernel vectors, anchoring, canonical representatives); those
/// operations live in the [`kernel`](crate::kernel),
/// [`anchoring`](crate::anchoring) and [`canonical`](crate::canonical)
/// modules and take `SymmetricGsb` receivers.
///
/// # Examples
///
/// ```
/// use gsb_core::SymmetricGsb;
///
/// // Perfect renaming ⟨n, n, 1, 1⟩: n processes acquire the names 1..n.
/// let pr = SymmetricGsb::perfect_renaming(4).unwrap();
/// assert_eq!((pr.n(), pr.m(), pr.l(), pr.u()), (4, 4, 1, 1));
///
/// // Weak symmetry breaking is the 2-slot task.
/// let wsb = SymmetricGsb::wsb(4).unwrap();
/// let slot2 = SymmetricGsb::slot(4, 2).unwrap();
/// assert!(wsb.is_synonym_of(&slot2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SymmetricGsb {
    n: usize,
    m: usize,
    l: usize,
    u: usize,
}

impl SymmetricGsb {
    /// Creates the symmetric task `⟨n, m, ℓ, u⟩-GSB`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n = 0`, `m = 0`, `ℓ > u` or
    /// `u > n`.
    pub fn new(n: usize, m: usize, l: usize, u: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidSpec {
                reason: "need at least one process".into(),
            });
        }
        if m == 0 {
            return Err(Error::InvalidSpec {
                reason: "need at least one output value (m ≥ 1)".into(),
            });
        }
        if l > u {
            return Err(Error::InvalidSpec {
                reason: format!("lower bound {l} exceeds upper bound {u}"),
            });
        }
        if u > n {
            return Err(Error::InvalidSpec {
                reason: format!("upper bound {u} exceeds the number of processes {n}"),
            });
        }
        Ok(SymmetricGsb { n, m, l, u })
    }

    /// The `m`-renaming task `⟨n, m, 0, 1⟩-GSB`: processes decide distinct
    /// names in `[1..m]` (Section 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] on malformed parameters (e.g. `m = 0`).
    pub fn renaming(n: usize, m: usize) -> Result<Self> {
        SymmetricGsb::new(n, m, 0, 1)
    }

    /// *Perfect renaming* `⟨n, n, 1, 1⟩-GSB`: the optimal name space
    /// `[1..n]`. Universal for the whole GSB family (Theorem 8) and not
    /// wait-free solvable (Corollary 5).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n = 0`.
    pub fn perfect_renaming(n: usize) -> Result<Self> {
        SymmetricGsb::new(n, n, 1, 1)
    }

    /// The trivially solvable `(2n−1)`-renaming task `⟨n, 2n−1, 0, 1⟩-GSB`
    /// (processes may simply decide their own identity).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n = 0`.
    pub fn loose_renaming(n: usize) -> Result<Self> {
        SymmetricGsb::new(n, 2 * n - 1, 0, 1)
    }

    /// *Weak symmetry breaking* `⟨n, 2, 1, n−1⟩-GSB`: binary decisions, not
    /// all equal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `n < 2`.
    pub fn wsb(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(Error::InvalidSpec {
                reason: "weak symmetry breaking needs at least two processes".into(),
            });
        }
        SymmetricGsb::new(n, 2, 1, n - 1)
    }

    /// *k-weak symmetry breaking* `⟨n, 2, k, n−k⟩-GSB` with `k ≤ n/2`
    /// (Section 3.2); `k = 1` is [`SymmetricGsb::wsb`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `k = 0` or `k > n/2`.
    pub fn k_wsb(n: usize, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidSpec {
                reason: "k-WSB requires k ≥ 1".into(),
            });
        }
        if 2 * k > n {
            return Err(Error::InvalidSpec {
                reason: format!("k-WSB requires k ≤ n/2 but k = {k}, n = {n}"),
            });
        }
        SymmetricGsb::new(n, 2, k, n - k)
    }

    /// The *k-slot* task `⟨n, k, 1, n⟩-GSB`: every value in `[1..k]` is
    /// decided at least once (Section 3.2). Clamps the redundant upper
    /// bound to `n` as the paper does; note `⟨n, k, 1, n−k+1⟩` is a synonym.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `k = 0` or `k > n`.
    pub fn slot(n: usize, k: usize) -> Result<Self> {
        if k > n {
            return Err(Error::InvalidSpec {
                reason: format!("{k}-slot infeasible for {n} processes (k ≤ n required)"),
            });
        }
        SymmetricGsb::new(n, k, 1, n)
    }

    /// *x-bounded homonymous renaming* `⟨n, ⌈(2n−1)/x⌉, 0, x⟩-GSB`
    /// (Corollary 2): at most `x` processes share any name; solvable with
    /// no communication by deciding `⌈id/x⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if `x = 0` or `x > n`.
    pub fn homonymous_renaming(n: usize, x: usize) -> Result<Self> {
        if x == 0 {
            return Err(Error::InvalidSpec {
                reason: "homonymous renaming requires x ≥ 1".into(),
            });
        }
        let m = (2 * n - 1).div_ceil(x);
        SymmetricGsb::new(n, m, 0, x)
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of output values `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Common lower bound `ℓ`.
    #[must_use]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Common upper bound `u`.
    #[must_use]
    pub fn u(&self) -> usize {
        self.u
    }

    /// Feasibility per Lemma 2: `m·ℓ ≤ n ≤ m·u`.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.m * self.l <= self.n && self.n <= self.m * self.u
    }

    /// Returns `Ok(())` if feasible, an [`Error::Infeasible`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] when the output set is empty.
    pub fn require_feasible(&self) -> Result<()> {
        if self.is_feasible() {
            Ok(())
        } else {
            Err(Error::Infeasible {
                n: self.n,
                m: self.m,
                lower_sum: self.m * self.l,
                upper_sum: self.m * self.u,
            })
        }
    }

    /// Converts into the general asymmetric representation.
    #[must_use]
    pub fn to_spec(&self) -> GsbSpec {
        GsbSpec::from(*self)
    }

    /// Whether `output` is a legal output vector of this task.
    #[must_use]
    pub fn is_legal_output(&self, output: &OutputVector) -> bool {
        self.to_spec().is_legal_output(output)
    }

    /// Replaces the upper bound, keeping everything else (used by the
    /// anchoring definitions).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if the new bounds are malformed.
    pub fn with_u(&self, u: usize) -> Result<Self> {
        SymmetricGsb::new(self.n, self.m, self.l, u)
    }

    /// Replaces the lower bound, keeping everything else.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] if the new bounds are malformed.
    pub fn with_l(&self, l: usize) -> Result<Self> {
        SymmetricGsb::new(self.n, self.m, l, self.u)
    }
}

impl std::fmt::Display for SymmetricGsb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {}, {}, {}⟩-GSB", self.n, self.m, self.l, self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_1_feasibility_asymmetric() {
        // Σℓ ≤ n ≤ Σu required.
        let ok = GsbSpec::new(6, vec![1, 1, 1], vec![4, 4, 4]).unwrap();
        assert!(ok.is_feasible());
        let too_low = GsbSpec::new(6, vec![3, 3, 3], vec![3, 3, 3]).unwrap();
        assert!(!too_low.is_feasible()); // Σℓ = 9 > 6
        let too_high = GsbSpec::new(6, vec![0, 0, 0], vec![1, 1, 1]).unwrap();
        assert!(!too_high.is_feasible()); // Σu = 3 < 6
    }

    #[test]
    fn lemma_2_feasibility_symmetric() {
        for n in 1..=8 {
            for m in 1..=n {
                for l in 0..=n {
                    for u in l..=n {
                        let Ok(t) = SymmetricGsb::new(n, m, l, u) else {
                            continue;
                        };
                        let by_lemma = m * l <= n && n <= m * u;
                        assert_eq!(t.is_feasible(), by_lemma, "{t}");
                        // Cross-check against actual output enumeration for
                        // small sizes: feasible ⇔ at least one legal output.
                        if n <= 5 {
                            let any = !t.to_spec().legal_outputs().is_empty();
                            assert_eq!(t.is_feasible(), any, "{t}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn election_shape() {
        let e = GsbSpec::election(4).unwrap();
        assert_eq!(e.lower_bounds(), &[1, 3]);
        assert_eq!(e.upper_bounds(), &[1, 3]);
        assert!(e.is_feasible());
        assert!(GsbSpec::election(1).is_err());
        // n = 2 election: one leader, one follower.
        let e2 = GsbSpec::election(2).unwrap();
        assert_eq!(e2.legal_outputs().len(), 2); // [1,2] and [2,1]
    }

    #[test]
    fn election_legal_outputs_have_one_leader() {
        let e = GsbSpec::election(4).unwrap();
        let outs = e.legal_outputs();
        assert_eq!(outs.len(), 4); // choose the leader position
        for o in &outs {
            assert_eq!(o.values().iter().filter(|&&v| v == 1).count(), 1);
        }
    }

    #[test]
    fn renaming_is_0_1_gsb() {
        let r = SymmetricGsb::renaming(5, 9).unwrap();
        assert_eq!((r.l(), r.u()), (0, 1));
        assert!(r.is_feasible());
        // m < n infeasible.
        let r = SymmetricGsb::renaming(5, 4).unwrap();
        assert!(!r.is_feasible());
    }

    #[test]
    fn perfect_renaming_outputs_are_permutations() {
        let pr = SymmetricGsb::perfect_renaming(3).unwrap();
        let outs = pr.to_spec().legal_outputs();
        assert_eq!(outs.len(), 6); // 3! permutations
    }

    #[test]
    fn wsb_is_2_slot() {
        // WSB ⟨n,2,1,n−1⟩ and 2-slot ⟨n,2,1,n⟩ have the same outputs
        // (not all processes can take the same value anyway when each of
        // the 2 values must appear).
        for n in 2..7 {
            let wsb = SymmetricGsb::wsb(n).unwrap().to_spec();
            let slot = SymmetricGsb::slot(n, 2).unwrap().to_spec();
            assert_eq!(wsb.legal_outputs(), slot.legal_outputs(), "n = {n}");
        }
    }

    #[test]
    fn k_wsb_bounds() {
        assert!(SymmetricGsb::k_wsb(6, 0).is_err());
        assert!(SymmetricGsb::k_wsb(6, 4).is_err()); // k > n/2
        let t = SymmetricGsb::k_wsb(6, 3).unwrap();
        assert_eq!((t.l(), t.u()), (3, 3));
    }

    #[test]
    fn homonymous_renaming_parameters() {
        // n = 5, x = 3 ⇒ m = ⌈9/3⌉ = 3.
        let t = SymmetricGsb::homonymous_renaming(5, 3).unwrap();
        assert_eq!((t.m(), t.l(), t.u()), (3, 0, 3));
        assert!(t.is_feasible());
    }

    #[test]
    fn legal_output_checking() {
        let wsb = SymmetricGsb::wsb(3).unwrap();
        assert!(wsb.is_legal_output(&OutputVector::new(vec![1, 2, 1])));
        assert!(!wsb.is_legal_output(&OutputVector::new(vec![1, 1, 1])));
        assert!(!wsb.is_legal_output(&OutputVector::new(vec![1, 2, 3]))); // 3 > m
        assert!(!wsb.is_legal_output(&OutputVector::new(vec![1, 2]))); // wrong len
    }

    #[test]
    fn first_legal_output_matches_enumeration() {
        let cases: Vec<GsbSpec> = vec![
            GsbSpec::election(4).unwrap(),
            SymmetricGsb::wsb(4).unwrap().to_spec(),
            SymmetricGsb::perfect_renaming(4).unwrap().to_spec(),
            SymmetricGsb::slot(5, 3).unwrap().to_spec(),
            SymmetricGsb::renaming(3, 5).unwrap().to_spec(),
            GsbSpec::committees(5, &[(1, 2), (2, 3), (0, 1)]).unwrap(),
        ];
        for spec in cases {
            let all = spec.legal_outputs();
            assert_eq!(
                spec.first_legal_output().as_ref(),
                all.first(),
                "spec {spec}"
            );
        }
    }

    #[test]
    fn first_legal_output_none_when_infeasible() {
        let spec = SymmetricGsb::renaming(5, 4).unwrap().to_spec();
        assert_eq!(spec.first_legal_output(), None);
        assert!(spec.legal_outputs().is_empty());
    }

    #[test]
    fn symmetric_round_trip() {
        let t = SymmetricGsb::new(6, 3, 1, 4).unwrap();
        let spec = t.to_spec();
        assert!(spec.is_symmetric());
        assert_eq!(spec.as_symmetric(), Some(t));
        let asym = GsbSpec::election(3).unwrap();
        assert_eq!(asym.as_symmetric(), None);
    }

    #[test]
    fn constructor_validation() {
        assert!(SymmetricGsb::new(0, 1, 0, 0).is_err());
        assert!(SymmetricGsb::new(3, 0, 0, 1).is_err());
        assert!(SymmetricGsb::new(3, 2, 2, 1).is_err()); // l > u
        assert!(SymmetricGsb::new(3, 2, 1, 4).is_err()); // u > n
        assert!(GsbSpec::new(3, vec![1, 0], vec![1]).is_err()); // dim mismatch
    }

    #[test]
    fn display_formats() {
        let t = SymmetricGsb::new(6, 3, 1, 4).unwrap();
        assert_eq!(t.to_string(), "⟨6, 3, 1, 4⟩-GSB");
        let e = GsbSpec::election(3).unwrap();
        assert!(e.to_string().contains("[1, 2]"));
    }

    #[test]
    fn legal_outputs_count_wsb() {
        // WSB on n processes: 2^n − 2 output vectors (all binary vectors
        // except the two constant ones).
        for n in 2..=8 {
            let wsb = SymmetricGsb::wsb(n).unwrap().to_spec();
            assert_eq!(wsb.legal_outputs().len(), (1usize << n) - 2, "n = {n}");
            assert_eq!(wsb.legal_output_count(), (1u128 << n) - 2, "n = {n}");
        }
    }

    /// A small bank of structurally different specs for iterator tests.
    fn sample_specs() -> Vec<GsbSpec> {
        vec![
            GsbSpec::election(4).unwrap(),
            SymmetricGsb::wsb(5).unwrap().to_spec(),
            SymmetricGsb::perfect_renaming(4).unwrap().to_spec(),
            SymmetricGsb::slot(5, 3).unwrap().to_spec(),
            SymmetricGsb::renaming(3, 5).unwrap().to_spec(),
            SymmetricGsb::renaming(5, 4).unwrap().to_spec(), // infeasible
            GsbSpec::committees(5, &[(1, 2), (2, 3), (0, 1)]).unwrap(),
            GsbSpec::committees(4, &[(0, 2), (0, 2), (0, 4)]).unwrap(),
        ]
    }

    #[test]
    fn lazy_iterator_streams_the_materialized_set() {
        for spec in sample_specs() {
            let eager = spec.legal_outputs();
            let lazy: Vec<OutputVector> = spec.legal_outputs_iter().collect();
            assert_eq!(eager, lazy, "{spec}");
            // Lexicographic order.
            for w in lazy.windows(2) {
                assert!(w[0].values() < w[1].values(), "{spec} not sorted");
            }
        }
    }

    #[test]
    fn count_fast_path_matches_enumeration() {
        for spec in sample_specs() {
            assert_eq!(
                spec.legal_output_count(),
                spec.legal_outputs_iter().count() as u128,
                "{spec}"
            );
        }
    }

    #[test]
    fn count_fast_path_scales_beyond_enumeration() {
        // ⟨20, 20, 1, 1⟩: 20! permutations — far beyond materialization,
        // instant by DP.
        let pr = SymmetricGsb::perfect_renaming(20).unwrap().to_spec();
        let factorial_20: u128 = (1..=20u128).product();
        assert_eq!(pr.legal_output_count(), factorial_20);
        // Unconstrained ⟨16, 4, 0, 16⟩: every assignment is legal.
        let free = SymmetricGsb::new(16, 4, 0, 16).unwrap().to_spec();
        assert_eq!(free.legal_output_count(), 4u128.pow(16));
    }

    #[test]
    fn iterator_contains_fast_path() {
        let wsb = SymmetricGsb::wsb(4).unwrap().to_spec();
        let iter = wsb.legal_outputs_iter();
        assert!(iter.contains(&OutputVector::new(vec![1, 2, 1, 1])));
        assert!(!iter.contains(&OutputVector::new(vec![1, 1, 1, 1])));
        assert_eq!(iter.total_count(), 14);
    }

    #[test]
    fn iterator_head_does_not_need_the_tail() {
        // Streaming the first vector of a huge family is O(n), not O(m^n).
        let big = SymmetricGsb::new(24, 6, 0, 24).unwrap().to_spec();
        let first = big.legal_outputs_iter().next().unwrap();
        assert_eq!(first.values(), &[1usize; 24][..]);
        assert_eq!(big.first_legal_output().as_ref(), Some(&first));
    }

    #[test]
    fn iterator_is_fused_after_exhaustion() {
        let spec = GsbSpec::election(2).unwrap();
        let mut iter = spec.legal_outputs_iter();
        assert!(iter.next().is_some());
        assert!(iter.next().is_some());
        assert!(iter.next().is_none());
        assert!(iter.next().is_none());
    }
}
