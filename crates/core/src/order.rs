//! The containment partial order on canonical GSB tasks (Figure 1).
//!
//! For fixed `n` and `m`, the canonical representatives of the feasible
//! `⟨n, m, −, −⟩` tasks are partially ordered by strict inclusion of their
//! kernel sets (equivalently, of their output sets). The paper's Figure 1
//! draws this order for `n = 6, m = 3` with an arrow `A → B` meaning
//! "`A` strictly includes `B`" (so `B` is the harder task). This module
//! computes the full family, its synonym classes, the canonical order and
//! its Hasse diagram (transitive reduction), and renders it as text or DOT.

use std::collections::BTreeMap;

use crate::anchoring::Anchoring;
use crate::error::Result;
use crate::kernel::KernelSet;
use crate::spec::SymmetricGsb;

/// A node of the canonical task order: one synonym class of feasible
/// `⟨n, m, −, −⟩` tasks.
#[derive(Debug, Clone)]
pub struct TaskClass {
    /// The canonical representative (Theorem 7).
    pub representative: SymmetricGsb,
    /// Every member `(ℓ, u)` of the synonym class, in Table-1 row order
    /// (descending `u`, then ascending `ℓ`).
    pub members: Vec<SymmetricGsb>,
    /// The shared kernel set.
    pub kernel_set: KernelSet,
    /// Anchoring classification of the representative.
    pub anchoring: Anchoring,
}

/// The partial order of canonical `⟨n, m, −, −⟩` tasks under output-set
/// inclusion (the object drawn in Figure 1).
///
/// # Examples
///
/// ```
/// use gsb_core::TaskOrder;
///
/// let order = TaskOrder::new(6, 3)?;
/// assert_eq!(order.classes().len(), 7); // the 7 canonical tasks of Table 1
/// // The hardest task ⟨6,3,2,2⟩ is the unique minimum.
/// let minima = order.minimal_elements();
/// assert_eq!(minima.len(), 1);
/// assert_eq!(minima[0].representative.to_string(), "⟨6, 3, 2, 2⟩-GSB");
/// # Ok::<(), gsb_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskOrder {
    n: usize,
    m: usize,
    classes: Vec<TaskClass>,
    /// `strict[i][j]` ⇔ class `i` strictly includes class `j`
    /// (`S(j) ⊂ S(i)`, i.e. `j` is harder).
    strict: Vec<Vec<bool>>,
    /// Hasse edges `(i, j)`: `i` strictly includes `j` with no class in
    /// between — exactly the arrows of Figure 1.
    hasse: Vec<(usize, usize)>,
}

impl TaskOrder {
    /// Computes the canonical order of all feasible `⟨n, m, −, −⟩` tasks
    /// with `u ≤ n`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`](crate::Error::InvalidSpec) if no
    /// feasible task exists (e.g. `m > n` forces `ℓ = 0` infeasibility…
    /// which cannot happen for `m ≤ 2n−1`; in practice only `n = 0` or
    /// `m = 0` fail).
    pub fn new(n: usize, m: usize) -> Result<Self> {
        // Group every feasible (ℓ, u) by canonical representative.
        let mut groups: BTreeMap<(usize, usize), Vec<SymmetricGsb>> = BTreeMap::new();
        for task in feasible_family(n, m)? {
            let canon = task.canonical()?;
            groups.entry((canon.l(), canon.u())).or_default().push(task);
        }
        let mut classes = Vec::with_capacity(groups.len());
        for ((cl, cu), mut members) in groups {
            let representative = SymmetricGsb::new(n, m, cl, cu)?;
            // Table-1 row order: descending u, ascending ℓ.
            members.sort_by(|a, b| b.u().cmp(&a.u()).then(a.l().cmp(&b.l())));
            let kernel_set = representative.kernel_set();
            let anchoring = representative.anchoring()?;
            classes.push(TaskClass {
                representative,
                members,
                kernel_set,
                anchoring,
            });
        }
        // Sort classes by decreasing kernel-set size then lexicographic
        // representative, which reproduces Figure 1's left-to-right layout.
        classes.sort_by(|a, b| {
            b.kernel_set.len().cmp(&a.kernel_set.len()).then_with(|| {
                (a.representative.l(), a.representative.u())
                    .cmp(&(b.representative.l(), b.representative.u()))
            })
        });
        let k = classes.len();
        let mut strict = vec![vec![false; k]; k];
        for i in 0..k {
            for j in 0..k {
                if i != j
                    && classes[j].kernel_set.is_subset_of(&classes[i].kernel_set)
                    && classes[j].kernel_set.len() < classes[i].kernel_set.len()
                {
                    strict[i][j] = true;
                }
            }
        }
        let mut hasse = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if strict[i][j] {
                    let via = (0..k).any(|x| strict[i][x] && strict[x][j]);
                    if !via {
                        hasse.push((i, j));
                    }
                }
            }
        }
        Ok(TaskOrder {
            n,
            m,
            classes,
            strict,
            hasse,
        })
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of output values `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The synonym classes (one per canonical task), largest output set
    /// first.
    #[must_use]
    pub fn classes(&self) -> &[TaskClass] {
        &self.classes
    }

    /// Whether class `i` strictly includes class `j` (the arrow `i → j` of
    /// Figure 1, possibly transitive).
    #[must_use]
    pub fn strictly_includes(&self, i: usize, j: usize) -> bool {
        self.strict[i][j]
    }

    /// The Hasse edges (transitive reduction) as index pairs `(i, j)` into
    /// [`TaskOrder::classes`], meaning `i` strictly includes `j`.
    #[must_use]
    pub fn hasse_edges(&self) -> &[(usize, usize)] {
        &self.hasse
    }

    /// Classes that are minimal in the inclusion order — the *hardest*
    /// tasks. By Theorem 5 this is always the singleton
    /// `⟨n, m, ⌊n/m⌋, ⌈n/m⌉⟩`.
    #[must_use]
    pub fn minimal_elements(&self) -> Vec<&TaskClass> {
        (0..self.classes.len())
            .filter(|&j| (0..self.classes.len()).all(|i| !self.strict[j][i]))
            .map(|j| &self.classes[j])
            .collect()
    }

    /// Classes that are maximal — the *easiest* tasks (always the single
    /// trivially-anchored `⟨n, m, 0, n⟩` class).
    #[must_use]
    pub fn maximal_elements(&self) -> Vec<&TaskClass> {
        (0..self.classes.len())
            .filter(|&j| (0..self.classes.len()).all(|i| !self.strict[i][j]))
            .map(|j| &self.classes[j])
            .collect()
    }

    /// Pairs of incomparable classes (e.g. `⟨6,3,1,4⟩` and `⟨6,3,0,3⟩` in
    /// the paper). Answers the open question "are there incomparable
    /// tasks?" constructively for given `(n, m)`.
    #[must_use]
    pub fn incomparable_pairs(&self) -> Vec<(usize, usize)> {
        let k = self.classes.len();
        let mut out = Vec::new();
        for i in 0..k {
            for j in i + 1..k {
                if !self.strict[i][j] && !self.strict[j][i] {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Renders the Hasse diagram in Graphviz DOT syntax, mirroring
    /// Figure 1 (arrows point from includer to included).
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph gsb_order_{}_{} {{", self.n, self.m);
        let _ = writeln!(s, "  rankdir=LR;");
        for (i, class) in self.classes.iter().enumerate() {
            let r = &class.representative;
            let _ = writeln!(
                s,
                "  t{i} [label=\"⟨{},{},{},{}⟩\\n{}\"];",
                r.n(),
                r.m(),
                r.l(),
                r.u(),
                class.anchoring
            );
        }
        for &(i, j) in &self.hasse {
            let _ = writeln!(s, "  t{i} -> t{j};");
        }
        s.push_str("}\n");
        s
    }

    /// Renders the order as layered ASCII art in the spirit of the
    /// paper's Figure 1: one column per "inclusion depth" (longest chain
    /// from a maximal element), arrows listed underneath.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        use std::fmt::Write as _;
        let k = self.classes.len();
        // Depth = longest path from any maximal element.
        let mut depth = vec![0usize; k];
        // Process in an order compatible with inclusion (larger sets first
        // — classes are already sorted by descending kernel-set size).
        for j in 0..k {
            for i in 0..k {
                if self.strict[i][j] {
                    depth[j] = depth[j].max(depth[i] + 1);
                }
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 1 layout — ⟨{}, {}, −, −⟩ canonical tasks by inclusion depth",
            self.n, self.m
        );
        for d in 0..=max_depth {
            let row: Vec<String> = (0..k)
                .filter(|&i| depth[i] == d)
                .map(|i| {
                    let r = &self.classes[i].representative;
                    format!("⟨{},{},{},{}⟩", r.n(), r.m(), r.l(), r.u())
                })
                .collect();
            let _ = writeln!(s, "  depth {d}: {}", row.join("   "));
        }
        let _ = writeln!(s, "  arrows (A → B: A strictly includes B):");
        for &(i, j) in &self.hasse {
            let a = &self.classes[i].representative;
            let b = &self.classes[j].representative;
            let _ = writeln!(
                s,
                "    ⟨{},{},{},{}⟩ → ⟨{},{},{},{}⟩",
                a.n(),
                a.m(),
                a.l(),
                a.u(),
                b.n(),
                b.m(),
                b.l(),
                b.u()
            );
        }
        s
    }

    /// Renders a compact text report: one line per class (representative,
    /// anchoring, members, kernel set) followed by the Hasse edges.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Canonical ⟨{}, {}, -, -⟩-GSB tasks ordered by output-set inclusion",
            self.n, self.m
        );
        for (i, class) in self.classes.iter().enumerate() {
            let members: Vec<String> = class
                .members
                .iter()
                .map(|t| format!("({},{})", t.l(), t.u()))
                .collect();
            let _ = writeln!(
                s,
                "  [{i}] {} — {} — members {{{}}} — kernels {}",
                class.representative,
                class.anchoring,
                members.join(", "),
                class.kernel_set
            );
        }
        let _ = writeln!(s, "Hasse edges (A → B means A strictly includes B):");
        for &(i, j) in &self.hasse {
            let _ = writeln!(
                s,
                "  {} → {}",
                self.classes[i].representative, self.classes[j].representative
            );
        }
        s
    }
}

/// Enumerates every feasible `⟨n, m, ℓ, u⟩` task with `u ≤ n`, in Table-1
/// row order (descending `u`, then ascending `ℓ`).
///
/// # Errors
///
/// Returns [`Error::InvalidSpec`](crate::Error::InvalidSpec) if `n = 0` or
/// `m = 0`.
pub fn feasible_family(n: usize, m: usize) -> Result<Vec<SymmetricGsb>> {
    // Validate (n, m) via a probe construction.
    let _probe = SymmetricGsb::new(n, m, 0, n)?;
    let mut out = Vec::new();
    let u_min = n.div_ceil(m);
    for u in (u_min..=n).rev() {
        for l in 0..=(n / m).min(u) {
            out.push(SymmetricGsb::new(n, m, l, u)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_classes_and_edges() {
        let order = TaskOrder::new(6, 3).unwrap();
        let reps: Vec<(usize, usize)> = order
            .classes()
            .iter()
            .map(|c| (c.representative.l(), c.representative.u()))
            .collect();
        // 7 canonical representatives, largest output set first.
        assert_eq!(
            reps,
            [(0, 6), (0, 5), (0, 4), (0, 3), (1, 4), (1, 3), (2, 2)]
        );

        // Figure 1 arrows (transitive reduction).
        let edge_names: Vec<(String, String)> = order
            .hasse_edges()
            .iter()
            .map(|&(i, j)| {
                (
                    order.classes()[i].representative.to_string(),
                    order.classes()[j].representative.to_string(),
                )
            })
            .collect();
        let expect = |a: &str, b: &str| {
            assert!(
                edge_names
                    .iter()
                    .any(|(x, y)| x.contains(a) && y.contains(b)),
                "missing Figure 1 edge {a} → {b}; got {edge_names:?}"
            );
        };
        expect("0, 6", "0, 5");
        expect("0, 5", "0, 4");
        expect("0, 4", "1, 4");
        expect("0, 4", "0, 3");
        expect("1, 4", "1, 3");
        expect("0, 3", "1, 3");
        expect("1, 3", "2, 2");
        assert_eq!(edge_names.len(), 7, "Figure 1 has exactly 7 arrows");
    }

    #[test]
    fn figure_1_incomparable_pair() {
        let order = TaskOrder::new(6, 3).unwrap();
        let pairs = order.incomparable_pairs();
        // ⟨6,3,1,4⟩ and ⟨6,3,0,3⟩ are the unique incomparable pair.
        assert_eq!(pairs.len(), 1);
        let (i, j) = pairs[0];
        let mut names = [
            order.classes()[i].representative.to_string(),
            order.classes()[j].representative.to_string(),
        ];
        names.sort();
        assert_eq!(names[0], "⟨6, 3, 0, 3⟩-GSB");
        assert_eq!(names[1], "⟨6, 3, 1, 4⟩-GSB");
    }

    #[test]
    fn minimum_is_theorem_5_hardest() {
        for n in 2..=9 {
            for m in 1..=n {
                let order = TaskOrder::new(n, m).unwrap();
                let minima = order.minimal_elements();
                assert_eq!(minima.len(), 1, "n={n} m={m}");
                assert_eq!(
                    minima[0].representative,
                    SymmetricGsb::hardest(n, m).unwrap().canonical().unwrap(),
                    "n={n} m={m}"
                );
                let maxima = order.maximal_elements();
                assert_eq!(maxima.len(), 1);
                assert_eq!(
                    maxima[0].representative,
                    SymmetricGsb::new(n, m, 0, n).unwrap().canonical().unwrap()
                );
            }
        }
    }

    #[test]
    fn feasible_family_counts() {
        // For n=6, m=3: u ∈ {2..6}, ℓ ∈ {0,1,2} (ℓ ≤ 2 and ℓ ≤ u) → 15
        // members (the paper's Table 1 lists 14, omitting ⟨6,3,2,6⟩ —
        // a synonym of ⟨6,3,2,2⟩; see EXPERIMENTS.md).
        let family = feasible_family(6, 3).unwrap();
        assert_eq!(family.len(), 15);
        assert!(family.iter().all(SymmetricGsb::is_feasible));
        // Row order: descending u then ascending ℓ.
        assert_eq!(
            (family[0].l(), family[0].u(), family[1].l(), family[1].u()),
            (0, 6, 1, 6)
        );
    }

    #[test]
    fn strict_inclusion_is_transitive_and_antisymmetric() {
        let order = TaskOrder::new(8, 4).unwrap();
        let k = order.classes().len();
        for i in 0..k {
            assert!(!order.strictly_includes(i, i));
            for j in 0..k {
                assert!(!(order.strictly_includes(i, j) && order.strictly_includes(j, i)));
                for x in 0..k {
                    if order.strictly_includes(i, j) && order.strictly_includes(j, x) {
                        assert!(order.strictly_includes(i, x));
                    }
                }
            }
        }
    }

    #[test]
    fn dot_and_text_render() {
        let order = TaskOrder::new(6, 3).unwrap();
        let dot = order.to_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches(" -> ").count(), 7);
        let text = order.to_text();
        assert!(text.contains("⟨6, 3, 2, 2⟩-GSB"));
        assert!(text.contains("Hasse edges"));
    }

    #[test]
    fn ascii_layout_matches_figure_1_depths() {
        let order = TaskOrder::new(6, 3).unwrap();
        let art = order.to_ascii();
        // Figure 1's chain: depth 0 = ⟨6,3,0,6⟩ … depth 5 = ⟨6,3,2,2⟩,
        // with the incomparable pair sharing depth 3.
        assert!(art.contains("depth 0: ⟨6,3,0,6⟩"));
        assert!(art.contains("depth 1: ⟨6,3,0,5⟩"));
        assert!(art.contains("depth 2: ⟨6,3,0,4⟩"));
        let depth3: &str = art
            .lines()
            .find(|l| l.contains("depth 3"))
            .expect("depth 3 row");
        assert!(depth3.contains("⟨6,3,0,3⟩") && depth3.contains("⟨6,3,1,4⟩"));
        assert!(art.contains("depth 4: ⟨6,3,1,3⟩"));
        assert!(art.contains("depth 5: ⟨6,3,2,2⟩"));
        let arrow_lines = art
            .lines()
            .filter(|l| l.starts_with("    ⟨") && l.contains(" → "))
            .count();
        assert_eq!(arrow_lines, 7);
    }

    #[test]
    fn every_feasible_task_lands_in_exactly_one_class() {
        let order = TaskOrder::new(6, 3).unwrap();
        let total: usize = order.classes().iter().map(|c| c.members.len()).sum();
        assert_eq!(total, feasible_family(6, 3).unwrap().len());
    }
}
