//! Process identities and input vectors.
//!
//! In the paper's model (Section 2.2), each of the `n` processes starts with
//! a distinct *identity* drawn from `[1..N]`. Identities are the only input
//! values of a GSB task; the paper fixes `N = 2n − 1` and proves (Theorem 1)
//! that larger identity spaces add no power, because processes can first run
//! an index-independent `(2n−1)`-renaming algorithm.

use crate::error::{Error, Result};

/// A process identity: an integer in `[1..N]`.
///
/// Identities are opaque except for comparison; comparison-based algorithms
/// (Section 2.2) may only apply `<`, `=`, `>` to them, which is exactly the
/// interface this type exposes through its `Ord` implementation.
///
/// # Examples
///
/// ```
/// use gsb_core::Identity;
///
/// let a = Identity::new(3).unwrap();
/// let b = Identity::new(7).unwrap();
/// assert!(a < b);
/// assert_eq!(a.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Identity(u32);

impl Identity {
    /// Creates an identity from a raw value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IdentityOutOfRange`] if `id` is zero (identities are
    /// `1`-based).
    pub fn new(id: u32) -> Result<Self> {
        if id == 0 {
            return Err(Error::IdentityOutOfRange { id, bound: 0 });
        }
        Ok(Identity(id))
    }

    /// Returns the raw identity value.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Identity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "id{}", self.0)
    }
}

/// The space of admissible identities `[1..N]` for an `n`-process system.
///
/// The paper fixes `N = 2n − 1` (Theorem 1 shows this is without loss of
/// generality); [`IdentitySpace::paper_default`] builds that space, while
/// [`IdentitySpace::new`] allows any `N > n` for experiments around
/// Theorem 1 itself.
///
/// # Examples
///
/// ```
/// use gsb_core::IdentitySpace;
///
/// let space = IdentitySpace::paper_default(4);
/// assert_eq!(space.n(), 4);
/// assert_eq!(space.bound(), 7); // N = 2n − 1
/// assert_eq!(space.input_vectors().count(), 7 * 6 * 5 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdentitySpace {
    n: usize,
    bound: u32,
}

impl IdentitySpace {
    /// Creates an identity space `[1..bound]` for `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] unless `n ≥ 1` and `bound > n` (the
    /// model requires strictly more identities than processes: with
    /// `N = n` the initial configuration would fully determine outputs).
    pub fn new(n: usize, bound: u32) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidSpec {
                reason: "need at least one process".into(),
            });
        }
        if (bound as usize) <= n {
            return Err(Error::InvalidSpec {
                reason: format!("identity bound N = {bound} must exceed n = {n}"),
            });
        }
        Ok(IdentitySpace { n, bound })
    }

    /// Creates the paper's default space with `N = 2n − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`; a single process has `N = 1 = n`, which the model
    /// forbids (and for which every GSB task is trivial anyway).
    #[must_use]
    pub fn paper_default(n: usize) -> Self {
        assert!(n >= 2, "paper_default requires n >= 2, got {n}");
        IdentitySpace {
            n,
            bound: (2 * n - 1) as u32,
        }
    }

    /// Number of processes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Upper bound `N` of the identity space.
    #[must_use]
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Checks that `ids` is a valid input vector: dimension `n`, all
    /// identities within `[1..N]` and pairwise distinct.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`], [`Error::IdentityOutOfRange`]
    /// or [`Error::DuplicateIdentity`] accordingly.
    pub fn validate(&self, ids: &[Identity]) -> Result<()> {
        if ids.len() != self.n {
            return Err(Error::DimensionMismatch {
                expected: self.n,
                actual: ids.len(),
            });
        }
        let mut seen = vec![false; self.bound as usize + 1];
        for &id in ids {
            if id.get() > self.bound {
                return Err(Error::IdentityOutOfRange {
                    id: id.get(),
                    bound: self.bound,
                });
            }
            let slot = &mut seen[id.get() as usize];
            if *slot {
                return Err(Error::DuplicateIdentity { id: id.get() });
            }
            *slot = true;
        }
        Ok(())
    }

    /// Iterates over **all** input vectors (ordered `n`-tuples of distinct
    /// identities from `[1..N]`).
    ///
    /// The number of vectors is `N·(N−1)·…·(N−n+1)`; use only for small
    /// parameters. Vectors are produced in lexicographic order.
    pub fn input_vectors(&self) -> InputVectors {
        InputVectors::new(*self)
    }

    /// Iterates over all *sets* of `n` distinct identities (unordered),
    /// i.e. the participating-identity sets. Produced in lexicographic
    /// order of the sorted representative.
    pub fn identity_sets(&self) -> IdentitySets {
        IdentitySets::new(*self)
    }
}

/// Iterator over all ordered input vectors of an [`IdentitySpace`].
///
/// Created by [`IdentitySpace::input_vectors`].
#[derive(Debug, Clone)]
pub struct InputVectors {
    space: IdentitySpace,
    /// Current tuple as 1-based identity values; empty once exhausted.
    current: Vec<u32>,
    done: bool,
}

impl InputVectors {
    fn new(space: IdentitySpace) -> Self {
        // First lexicographic injective tuple: 1, 2, …, n.
        let current: Vec<u32> = (1..=space.n as u32).collect();
        InputVectors {
            space,
            current,
            done: false,
        }
    }

    fn used(&self, value: u32, upto: usize) -> bool {
        self.current[..upto].contains(&value)
    }

    /// Advances `self.current` to the next injective tuple, returning
    /// `false` when exhausted.
    fn advance(&mut self) -> bool {
        let n = self.space.n;
        let bound = self.space.bound;
        let mut pos = n;
        loop {
            if pos == 0 {
                return false;
            }
            pos -= 1;
            // Try to increment position `pos` to the next unused value.
            let mut candidate = self.current[pos] + 1;
            loop {
                if candidate > bound {
                    break; // must carry to the left
                }
                if !self.used(candidate, pos) {
                    self.current[pos] = candidate;
                    // Refill positions to the right with smallest unused values.
                    for fill in pos + 1..n {
                        let mut v = 1;
                        while self.used(v, fill) {
                            v += 1;
                        }
                        debug_assert!(v <= bound);
                        self.current[fill] = v;
                    }
                    return true;
                }
                candidate += 1;
            }
        }
    }
}

impl Iterator for InputVectors {
    type Item = Vec<Identity>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item = self.current.iter().map(|&v| Identity(v)).collect();
        if !self.advance() {
            self.done = true;
        }
        Some(item)
    }
}

/// Iterator over all unordered identity sets of an [`IdentitySpace`].
///
/// Created by [`IdentitySpace::identity_sets`].
#[derive(Debug, Clone)]
pub struct IdentitySets {
    space: IdentitySpace,
    current: Vec<u32>,
    done: bool,
}

impl IdentitySets {
    fn new(space: IdentitySpace) -> Self {
        IdentitySets {
            current: (1..=space.n as u32).collect(),
            space,
            done: false,
        }
    }
}

impl Iterator for IdentitySets {
    type Item = Vec<Identity>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item: Vec<Identity> = self.current.iter().map(|&v| Identity(v)).collect();
        // Standard next-combination on sorted tuples.
        let n = self.space.n;
        let bound = self.space.bound;
        let mut i = n;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            let max_here = bound - (n - 1 - i) as u32;
            if self.current[i] < max_here {
                self.current[i] += 1;
                for j in i + 1..n {
                    self.current[j] = self.current[j - 1] + 1;
                }
                break;
            }
        }
        Some(item)
    }
}

/// Returns the rank (0-based) of each identity among `ids`.
///
/// This is the canonical "comparison-based view" of an input vector: two
/// input vectors with the same rank pattern are indistinguishable to a
/// comparison-based algorithm (Section 2.2). The input must contain
/// distinct identities.
///
/// # Examples
///
/// ```
/// use gsb_core::{identity::ranks, Identity};
///
/// let ids: Vec<Identity> = [5, 1, 7]
///     .iter()
///     .map(|&v| Identity::new(v).unwrap())
///     .collect();
/// assert_eq!(ranks(&ids), vec![1, 0, 2]);
/// ```
#[must_use]
pub fn ranks(ids: &[Identity]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| ids[i]);
    let mut out = vec![0usize; ids.len()];
    for (rank, &i) in order.iter().enumerate() {
        out[i] = rank;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> Identity {
        Identity::new(v).unwrap()
    }

    #[test]
    fn identity_rejects_zero() {
        assert!(Identity::new(0).is_err());
        assert!(Identity::new(1).is_ok());
    }

    #[test]
    fn paper_default_bound_is_2n_minus_1() {
        for n in 2..20 {
            let space = IdentitySpace::paper_default(n);
            assert_eq!(space.bound() as usize, 2 * n - 1);
        }
    }

    #[test]
    fn space_requires_more_ids_than_processes() {
        assert!(IdentitySpace::new(3, 3).is_err());
        assert!(IdentitySpace::new(3, 4).is_ok());
        assert!(IdentitySpace::new(0, 5).is_err());
    }

    #[test]
    fn validate_catches_duplicates_and_range() {
        let space = IdentitySpace::paper_default(3);
        assert!(space.validate(&[id(1), id(2), id(3)]).is_ok());
        assert_eq!(
            space.validate(&[id(1), id(2), id(2)]),
            Err(Error::DuplicateIdentity { id: 2 })
        );
        assert_eq!(
            space.validate(&[id(1), id(2), id(6)]),
            Err(Error::IdentityOutOfRange { id: 6, bound: 5 })
        );
        assert_eq!(
            space.validate(&[id(1), id(2)]),
            Err(Error::DimensionMismatch {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn input_vectors_count_matches_falling_factorial() {
        let space = IdentitySpace::paper_default(3); // N = 5
        let count = space.input_vectors().count();
        assert_eq!(count, 5 * 4 * 3);
    }

    #[test]
    fn input_vectors_are_distinct_and_valid() {
        let space = IdentitySpace::paper_default(2); // N = 3, 6 vectors
        let all: Vec<Vec<Identity>> = space.input_vectors().collect();
        assert_eq!(all.len(), 6);
        for v in &all {
            space.validate(v).unwrap();
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn identity_sets_count_matches_binomial() {
        let space = IdentitySpace::paper_default(3); // C(5,3) = 10
        assert_eq!(space.identity_sets().count(), 10);
        let space = IdentitySpace::paper_default(4); // C(7,4) = 35
        assert_eq!(space.identity_sets().count(), 35);
    }

    #[test]
    fn identity_sets_are_sorted_and_distinct() {
        let space = IdentitySpace::paper_default(3);
        for set in space.identity_sets() {
            let mut sorted = set.clone();
            sorted.sort();
            assert_eq!(sorted, set);
        }
    }

    #[test]
    fn ranks_examples() {
        assert_eq!(ranks(&[id(5), id(1), id(7)]), vec![1, 0, 2]);
        assert_eq!(ranks(&[id(1), id(2), id(3)]), vec![0, 1, 2]);
        assert_eq!(ranks(&[id(9), id(4)]), vec![1, 0]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(id(4).to_string(), "id4");
    }
}
