//! The task zoo: every named GSB task of the paper, cataloged.
//!
//! Section 3.2 introduces the family's notable members; this module
//! gathers them behind one enumerable catalog so that atlases, examples
//! and sweep tests iterate the same list.

use crate::error::Result;
use crate::spec::{GsbSpec, SymmetricGsb};

/// A named member of the GSB task zoo.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Human-readable name as the paper uses it.
    pub name: &'static str,
    /// Where the paper introduces it.
    pub reference: &'static str,
    /// The task, instantiated for the requested `n`.
    pub spec: GsbSpec,
}

/// Instantiates every named task of the paper for `n` processes
/// (entries whose side conditions fail at this `n` are skipped —
/// e.g. `k`-WSB needs `k ≤ n/2`).
///
/// # Errors
///
/// Returns an error only for `n < 2` (no symmetry to break).
///
/// # Examples
///
/// ```
/// use gsb_core::zoo::catalog;
///
/// let tasks = catalog(6)?;
/// assert!(tasks.iter().any(|e| e.name == "perfect renaming"));
/// assert!(tasks.iter().any(|e| e.name == "election"));
/// # Ok::<(), gsb_core::Error>(())
/// ```
pub fn catalog(n: usize) -> Result<Vec<ZooEntry>> {
    let mut entries = vec![
        ZooEntry {
            name: "election",
            reference: "§3.2 (asymmetric)",
            spec: GsbSpec::election(n)?,
        },
        ZooEntry {
            name: "weak symmetry breaking",
            reference: "§3.2, ⟨n,2,1,n−1⟩",
            spec: SymmetricGsb::wsb(n)?.to_spec(),
        },
        ZooEntry {
            name: "perfect renaming",
            reference: "§3.2, ⟨n,n,1,1⟩",
            spec: SymmetricGsb::perfect_renaming(n)?.to_spec(),
        },
        ZooEntry {
            name: "(2n−1)-renaming",
            reference: "§3.2, ⟨n,2n−1,0,1⟩",
            spec: SymmetricGsb::loose_renaming(n)?.to_spec(),
        },
        ZooEntry {
            name: "(n+1)-renaming",
            reference: "§6 (Figure 2's target)",
            spec: SymmetricGsb::renaming(n, n + 1)?.to_spec(),
        },
        ZooEntry {
            name: "hardest ⟨n,m,·,·⟩ (m = 2)",
            reference: "Theorem 5",
            spec: SymmetricGsb::hardest(n, 2)?.to_spec(),
        },
    ];
    if n >= 2 {
        entries.push(ZooEntry {
            name: "(2n−2)-renaming",
            reference: "§5.3, WSB-equivalent",
            spec: SymmetricGsb::renaming(n, (2 * n - 2).max(1))?.to_spec(),
        });
    }
    if n >= 3 {
        entries.push(ZooEntry {
            name: "(n−1)-slot",
            reference: "§3.2/§6, ⟨n,n−1,1,n⟩ (the KS object)",
            spec: SymmetricGsb::slot(n, n - 1)?.to_spec(),
        });
    }
    for k in 2..=n / 2 {
        entries.push(ZooEntry {
            name: "k-WSB",
            reference: "§3.2, ⟨n,2,k,n−k⟩",
            spec: SymmetricGsb::k_wsb(n, k)?.to_spec(),
        });
    }
    for x in [2usize, 3] {
        if x <= n {
            entries.push(ZooEntry {
                name: "x-bounded homonymous renaming",
                reference: "Corollary 2",
                spec: SymmetricGsb::homonymous_renaming(n, x)?.to_spec(),
            });
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_papers_zoo() {
        let entries = catalog(6).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        for expected in [
            "election",
            "weak symmetry breaking",
            "perfect renaming",
            "(2n−1)-renaming",
            "(2n−2)-renaming",
            "(n+1)-renaming",
            "(n−1)-slot",
            "k-WSB",
            "x-bounded homonymous renaming",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn all_catalog_entries_are_feasible() {
        for n in 2..=10 {
            for entry in catalog(n).unwrap() {
                assert!(
                    entry.spec.is_feasible(),
                    "{} infeasible at n = {n}",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn k_wsb_entries_respect_the_side_condition() {
        let entries = catalog(4).unwrap();
        let k_wsbs = entries.iter().filter(|e| e.name == "k-WSB").count();
        assert_eq!(k_wsbs, 1); // only k = 2 at n = 4
        let entries = catalog(9).unwrap();
        let k_wsbs = entries.iter().filter(|e| e.name == "k-WSB").count();
        assert_eq!(k_wsbs, 3); // k ∈ {2, 3, 4}
    }

    #[test]
    fn catalog_classifications_are_consistent() {
        // Every entry classifies without panicking, and no entry is both
        // no-communication-solvable and NotWaitFreeSolvable.
        use crate::solvability::Solvability;
        for n in [2usize, 4, 6] {
            for entry in catalog(n).unwrap() {
                let c = entry.spec.classify();
                if entry.spec.no_communication_solvable() {
                    assert_eq!(
                        c.solvability,
                        Solvability::SolvableWithoutCommunication,
                        "{} at n = {n}",
                        entry.name
                    );
                }
            }
        }
    }
}
