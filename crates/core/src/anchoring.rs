//! Anchored tasks (Definition 5, Theorems 3–4, Corollary 1).
//!
//! A task `G = ⟨n, m, ℓ, u⟩-GSB` is *ℓ-anchored* when raising the upper
//! bound (`u → min(n, u+1)`) does not change the task, and *u-anchored*
//! when lowering the lower bound (`ℓ → max(0, ℓ−1)`) does not. Anchoring
//! identifies when a task's bounds are "saturated", which is the key to the
//! canonical-representative construction of Theorem 7.
//!
//! This module offers both the *definitional* checks (kernel-set equality
//! against the perturbed task) and the paper's *closed forms*
//! (Theorem 3: ℓ-anchored ⇔ `u ≥ n − ℓ(m−1)`;
//! Theorem 4: u-anchored ⇔ `ℓ ≤ n − u(m−1)`), and the tests cross-validate
//! them. The closed form of Theorem 4 is stated by the paper for the
//! non-trivial case `ℓ ≥ 1`; every `⟨n, m, 0, u⟩` task is *trivially*
//! u-anchored (lowering `ℓ = 0` is a no-op), which the definitional check
//! captures — see [`SymmetricGsb::is_trivially_u_anchored`].

use crate::error::{Error, Result};
use crate::spec::SymmetricGsb;

/// How a feasible task is anchored (Definition 5), with the trivial cases
/// distinguished the way Figure 1 of the paper annotates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Anchoring {
    /// Neither ℓ- nor u-anchored.
    None,
    /// ℓ-anchored only.
    L,
    /// u-anchored only.
    U,
    /// Both ℓ- and u-anchored.
    Both,
}

impl Anchoring {
    /// Whether the task is ℓ-anchored (possibly also u-anchored).
    #[must_use]
    pub fn is_l_anchored(self) -> bool {
        matches!(self, Anchoring::L | Anchoring::Both)
    }

    /// Whether the task is u-anchored (possibly also ℓ-anchored).
    #[must_use]
    pub fn is_u_anchored(self) -> bool {
        matches!(self, Anchoring::U | Anchoring::Both)
    }
}

impl std::fmt::Display for Anchoring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            Anchoring::None => "not anchored",
            Anchoring::L => "ℓ-anchored",
            Anchoring::U => "u-anchored",
            Anchoring::Both => "(ℓ,u)-anchored",
        };
        f.write_str(text)
    }
}

impl SymmetricGsb {
    /// Definitional ℓ-anchoring check: is `⟨n,m,ℓ,u⟩` the same task as
    /// `⟨n,m,ℓ,min(n,u+1)⟩`?
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] for infeasible tasks, for which
    /// Definition 5 is vacuous.
    pub fn is_l_anchored(&self) -> Result<bool> {
        self.require_feasible()?;
        let bumped = self
            .with_u((self.u() + 1).min(self.n()))
            .expect("bumping u within [l..n] keeps the spec well-formed");
        Ok(self.is_synonym_of(&bumped))
    }

    /// Definitional u-anchoring check: is `⟨n,m,ℓ,u⟩` the same task as
    /// `⟨n,m,max(0,ℓ−1),u⟩`?
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] for infeasible tasks.
    pub fn is_u_anchored(&self) -> Result<bool> {
        self.require_feasible()?;
        let lowered = self
            .with_l(self.l().saturating_sub(1))
            .expect("lowering l keeps the spec well-formed");
        Ok(self.is_synonym_of(&lowered))
    }

    /// Closed-form ℓ-anchoring test of **Theorem 3**:
    /// a feasible task is ℓ-anchored iff `u ≥ n − ℓ(m−1)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] for infeasible tasks.
    pub fn is_l_anchored_closed_form(&self) -> Result<bool> {
        self.require_feasible()?;
        let threshold = self.n() as i64 - (self.l() * (self.m() - 1)) as i64;
        Ok(self.u() as i64 >= threshold)
    }

    /// Closed-form u-anchoring test of **Theorem 4**:
    /// a feasible task with `ℓ ≥ 1` is u-anchored iff `ℓ ≤ n − u(m−1)`.
    /// Tasks with `ℓ = 0` are trivially u-anchored regardless.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] for infeasible tasks.
    pub fn is_u_anchored_closed_form(&self) -> Result<bool> {
        self.require_feasible()?;
        if self.l() == 0 {
            return Ok(true);
        }
        let threshold = self.n() as i64 - (self.u() * (self.m() - 1)) as i64;
        Ok(self.l() as i64 <= threshold)
    }

    /// Whether the task is *trivially* ℓ-anchored, i.e. `u = n` (raising
    /// the upper bound is a no-op).
    #[must_use]
    pub fn is_trivially_l_anchored(&self) -> bool {
        self.u() == self.n()
    }

    /// Whether the task is *trivially* u-anchored, i.e. `ℓ = 0` (lowering
    /// the lower bound is a no-op).
    #[must_use]
    pub fn is_trivially_u_anchored(&self) -> bool {
        self.l() == 0
    }

    /// Full anchoring classification of a feasible task.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] for infeasible tasks.
    pub fn anchoring(&self) -> Result<Anchoring> {
        let l_anchored = self.is_l_anchored()?;
        let u_anchored = self.is_u_anchored()?;
        Ok(match (l_anchored, u_anchored) {
            (true, true) => Anchoring::Both,
            (true, false) => Anchoring::L,
            (false, true) => Anchoring::U,
            (false, false) => Anchoring::None,
        })
    }

    /// Full anchoring classification via the paper's closed forms
    /// (Theorems 3–4) — O(1) arithmetic instead of the definitional
    /// kernel-set comparisons of [`SymmetricGsb::anchoring`]. The two are
    /// property-tested equivalent; the atlas engine uses this path.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] for infeasible tasks.
    pub fn anchoring_closed_form(&self) -> Result<Anchoring> {
        let l_anchored = self.is_l_anchored_closed_form()?;
        let u_anchored = self.is_u_anchored_closed_form()?;
        Ok(match (l_anchored, u_anchored) {
            (true, true) => Anchoring::Both,
            (true, false) => Anchoring::L,
            (false, true) => Anchoring::U,
            (false, false) => Anchoring::None,
        })
    }

    /// **Corollary 1**, first half: the ℓ-anchored task
    /// `⟨n, m, ℓ, max(ℓ, n − ℓ(m−1))⟩` for a given `ℓ ≤ n/m`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when `ℓ > n/m` (no feasible task).
    pub fn l_anchored_with(n: usize, m: usize, l: usize) -> Result<SymmetricGsb> {
        if l * m > n {
            return Err(Error::InvalidSpec {
                reason: format!("no feasible ⟨{n},{m},{l},·⟩ task: ℓ·m > n"),
            });
        }
        let u = l.max(n - l * (m - 1)).min(n);
        SymmetricGsb::new(n, m, l, u)
    }

    /// **Corollary 1**, second half: the u-anchored task
    /// `⟨n, m, max(0, n − u(m−1)), u⟩` for a given `u ≥ n/m`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when `u·m < n` (no feasible task).
    pub fn u_anchored_with(n: usize, m: usize, u: usize) -> Result<SymmetricGsb> {
        if u * m < n {
            return Err(Error::InvalidSpec {
                reason: format!("no feasible ⟨{n},{m},·,{u}⟩ task: u·m < n"),
            });
        }
        let l = (n as i64 - (u * (m - 1)) as i64).max(0) as usize;
        SymmetricGsb::new(n, m, l.min(u), u.min(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(n: usize, m: usize, l: usize, u: usize) -> SymmetricGsb {
        SymmetricGsb::new(n, m, l, u).unwrap()
    }

    #[test]
    fn paper_20_4_examples() {
        // Section 4.2: ⟨20,4,4,8⟩ is ℓ-anchored, ⟨20,4,2,6⟩ is u-anchored,
        // ⟨20,4,5,5⟩ is (ℓ,u)-anchored, ⟨20,4,4,6⟩ is neither.
        assert_eq!(task(20, 4, 4, 8).anchoring().unwrap(), Anchoring::L);
        assert_eq!(task(20, 4, 2, 6).anchoring().unwrap(), Anchoring::U);
        assert_eq!(task(20, 4, 5, 5).anchoring().unwrap(), Anchoring::Both);
        assert_eq!(task(20, 4, 4, 6).anchoring().unwrap(), Anchoring::None);
    }

    #[test]
    fn theorem_3_closed_form_matches_definition() {
        for n in 2usize..=9 {
            for m in 1..=n {
                for l in 0..=n / m {
                    for u in l.max(n.div_ceil(m))..=n {
                        let t = task(n, m, l, u);
                        assert_eq!(
                            t.is_l_anchored().unwrap(),
                            t.is_l_anchored_closed_form().unwrap(),
                            "Theorem 3 mismatch for {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_4_closed_form_matches_definition() {
        for n in 2usize..=9 {
            for m in 1..=n {
                for l in 0..=n / m {
                    for u in l.max(n.div_ceil(m))..=n {
                        let t = task(n, m, l, u);
                        assert_eq!(
                            t.is_u_anchored().unwrap(),
                            t.is_u_anchored_closed_form().unwrap(),
                            "Theorem 4 mismatch for {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trivially_anchored_tasks() {
        // "all ⟨n,m,ℓ,n⟩ (resp. ⟨n,m,0,u⟩) GSB tasks are ℓ-anchored
        // (resp. u-anchored)".
        for n in 2..=8 {
            for m in 1..=n {
                for l in 0..=n / m {
                    let t = task(n, m, l, n);
                    assert!(t.is_trivially_l_anchored());
                    assert!(t.is_l_anchored().unwrap(), "{t}");
                }
                for u in n.div_ceil(m)..=n {
                    let t = task(n, m, 0, u);
                    assert!(t.is_trivially_u_anchored());
                    assert!(t.is_u_anchored().unwrap(), "{t}");
                }
            }
        }
    }

    #[test]
    fn anchoring_on_infeasible_is_an_error() {
        let t = task(5, 4, 0, 1);
        assert!(matches!(t.anchoring(), Err(Error::Infeasible { .. })));
    }

    #[test]
    fn corollary_1_constructions_are_anchored() {
        for n in 2..=10 {
            for m in 2..=n {
                for l in 0..=n / m {
                    let t = SymmetricGsb::l_anchored_with(n, m, l).unwrap();
                    assert!(t.is_feasible(), "{t}");
                    assert!(t.is_l_anchored().unwrap(), "{t} should be ℓ-anchored");
                }
                for u in n.div_ceil(m)..=n {
                    let t = SymmetricGsb::u_anchored_with(n, m, u).unwrap();
                    assert!(t.is_feasible(), "{t}");
                    assert!(t.is_u_anchored().unwrap(), "{t} should be u-anchored");
                }
            }
        }
    }

    #[test]
    fn corollary_1_rejects_impossible_bounds() {
        assert!(SymmetricGsb::l_anchored_with(6, 3, 3).is_err()); // 3·3 > 6
        assert!(SymmetricGsb::u_anchored_with(6, 3, 1).is_err()); // 1·3 < 6
    }

    #[test]
    fn figure_1_annotations() {
        // Figure 1 annotates ⟨6,3,0,6⟩/⟨6,3,0,5⟩/⟨6,3,0,4⟩ trivially
        // u-anchored, ⟨6,3,1,4⟩ ℓ-anchored, ⟨6,3,2,2⟩ (ℓ,u)-anchored,
        // ⟨6,3,1,3⟩ not anchored.
        for (l, u) in [(0, 6), (0, 5), (0, 4)] {
            assert!(task(6, 3, l, u).is_trivially_u_anchored());
            assert!(task(6, 3, l, u).is_u_anchored().unwrap());
        }
        assert!(task(6, 3, 1, 4).anchoring().unwrap().is_l_anchored());
        assert_eq!(task(6, 3, 2, 2).anchoring().unwrap(), Anchoring::Both);
        assert_eq!(task(6, 3, 1, 3).anchoring().unwrap(), Anchoring::None);
    }

    #[test]
    fn anchoring_display() {
        assert_eq!(Anchoring::Both.to_string(), "(ℓ,u)-anchored");
        assert!(Anchoring::L.is_l_anchored());
        assert!(!Anchoring::L.is_u_anchored());
    }
}
