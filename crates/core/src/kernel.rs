//! Kernel vectors and kernel sets (Definition 4, Lemma 3).
//!
//! A *kernel vector* of an `⟨n, m, ℓ, u⟩`-GSB task is a counting vector
//! sorted in non-increasing order; it represents all output vectors whose
//! most frequent value appears `K\[1\]` times, second most frequent `K[2]`
//! times, and so on. The *kernel set* of a task collects its kernel vectors
//! and is a complete invariant of the task's output set: two symmetric GSB
//! tasks are *synonyms* (same task) exactly when their kernel sets coincide.

use std::collections::BTreeSet;

use crate::spec::SymmetricGsb;

/// A kernel vector: `m` non-increasing counts summing to `n`
/// (Definition 4).
///
/// # Examples
///
/// ```
/// use gsb_core::KernelVector;
///
/// let k = KernelVector::from_counts(vec![0, 4, 2]);
/// assert_eq!(k.parts(), &[4, 2, 0]); // sorted non-increasing
/// assert_eq!(k.total(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelVector(Vec<usize>);

impl KernelVector {
    /// Builds a kernel vector from arbitrary counts by sorting them in
    /// non-increasing order.
    #[must_use]
    pub fn from_counts(mut counts: Vec<usize>) -> Self {
        counts.sort_unstable_by(|a, b| b.cmp(a));
        KernelVector(counts)
    }

    /// The non-increasing parts `K\[1\] ≥ K[2] ≥ … ≥ K[m]`.
    #[must_use]
    pub fn parts(&self) -> &[usize] {
        &self.0
    }

    /// Dimension `m` (number of possible values).
    #[must_use]
    pub fn m(&self) -> usize {
        self.0.len()
    }

    /// Sum of the parts (the number of processes `n`).
    #[must_use]
    pub fn total(&self) -> usize {
        self.0.iter().sum()
    }

    /// Largest part `K\[1\]` (the count of the most frequent value).
    ///
    /// # Panics
    ///
    /// Panics on an empty kernel vector, which cannot be constructed
    /// through the public API.
    #[must_use]
    pub fn max_part(&self) -> usize {
        *self.0.first().expect("kernel vectors are non-empty")
    }

    /// Smallest part `K[m]` (the count of the least frequent value,
    /// possibly 0).
    ///
    /// # Panics
    ///
    /// Panics on an empty kernel vector, which cannot be constructed
    /// through the public API.
    #[must_use]
    pub fn min_part(&self) -> usize {
        *self.0.last().expect("kernel vectors are non-empty")
    }

    /// Number of distinct output vectors represented by this kernel vector
    /// for a task on `n = total()` processes: the number of ways to assign
    /// values to counts times the multinomial coefficient. Used by the
    /// atlas's symmetry-reduced output counting and by tests to
    /// cross-check output-set enumeration.
    ///
    /// Computed as a product of binomials (never a bare factorial), so the
    /// value is exact whenever it fits `u128` — for any `n`, `m` in the
    /// classifier's range — and saturates at `u128::MAX` beyond that. (The
    /// seed divided `m!` by multiplicity factorials, which silently
    /// wrapped in release builds once `m > 34`.)
    #[must_use]
    pub fn output_vector_count(&self) -> u128 {
        // Number of counting vectors that sort to this kernel: the
        // multinomial m! / Π (multiplicity of each part)! over the runs of
        // equal parts.
        let mut run_lengths = Vec::with_capacity(self.0.len());
        let mut run = 1usize;
        for w in self.0.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                run_lengths.push(run);
                run = 1;
            }
        }
        run_lengths.push(run);
        let value_assignments = multinomial_saturating(&run_lengths);
        // For each counting vector: multinomial n! / Π K[i]!.
        let arrangements = multinomial_saturating(&self.0);
        value_assignments.saturating_mul(arrangements)
    }
}

/// `C(n, k)`, exact whenever the result fits `u128` (every intermediate
/// equals `C(n−k+i, i) ≤ C(n, k)`, and the denominator is cancelled
/// before multiplying when the naive product would overflow), saturating
/// to `u128::MAX` only when the binomial itself does not fit.
fn binomial_saturating(n: usize, k: usize) -> u128 {
    let k = k.min(n - k) as u128;
    let n = n as u128;
    let mut c = 1u128;
    for i in 1..=k {
        let num = n - k + i;
        c = match c.checked_mul(num) {
            Some(product) => product / i,
            None => {
                // c·num/i is the integer C(n−k+i, i); cancel i into the
                // factors so the multiplication stays in range whenever
                // the result does (same cancellation as
                // `solvability::binomial_gcd_uncached`).
                let g1 = crate::solvability::gcd(c, i);
                let g2 = crate::solvability::gcd(num, i / g1);
                debug_assert_eq!(i / g1 / g2, 1, "binomial recurrence must divide");
                match (c / g1).checked_mul(num / g2) {
                    Some(product) => product,
                    None => return u128::MAX,
                }
            }
        };
    }
    c
}

/// `(Σ groups)! / Π groupᵢ!` as a product of binomials, saturating.
fn multinomial_saturating(groups: &[usize]) -> u128 {
    let mut taken = 0usize;
    let mut result = 1u128;
    for &g in groups {
        taken += g;
        result = result.saturating_mul(binomial_saturating(taken, g));
    }
    result
}

impl std::fmt::Display for KernelVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// The kernel set of a task: all of its kernel vectors (Definition 4).
///
/// Lemma 3: a kernel set is totally ordered by the lexicographic order on
/// kernel vectors; iteration yields vectors in *descending* lexicographic
/// order (the paper's Table 1 column order: `[6,0,0]`, `[5,1,0]`, …).
///
/// # Examples
///
/// ```
/// use gsb_core::{KernelSet, SymmetricGsb};
///
/// let t = SymmetricGsb::new(6, 3, 0, 4)?;
/// let ks = KernelSet::of_task(&t);
/// let shown: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
/// assert_eq!(
///     shown,
///     ["[4, 2, 0]", "[4, 1, 1]", "[3, 3, 0]", "[3, 2, 1]", "[2, 2, 2]"]
/// );
/// # Ok::<(), gsb_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelSet {
    /// Kernel vectors in descending lexicographic order.
    vectors: Vec<KernelVector>,
}

impl KernelSet {
    /// Computes the kernel set of a symmetric GSB task by enumerating all
    /// partitions of `n` into exactly `m` parts, each within `[ℓ..u]`
    /// (parts may be zero when `ℓ = 0`).
    ///
    /// Infeasible tasks yield the empty kernel set.
    #[must_use]
    pub fn of_task(task: &SymmetricGsb) -> Self {
        let mut vectors = Vec::new();
        let mut parts = Vec::with_capacity(task.m());
        enumerate_bounded_partitions(
            task.n(),
            task.m(),
            task.u().min(task.n()),
            task.l(),
            task.u(),
            &mut parts,
            &mut vectors,
        );
        // The recursion produces descending-lex order already, but sort
        // defensively (descending) to keep the invariant locally checkable.
        vectors.sort_unstable_by(|a, b| b.cmp(a));
        KernelSet { vectors }
    }

    /// Builds a kernel set from explicit vectors (deduplicated, reordered).
    #[must_use]
    pub fn from_vectors<I: IntoIterator<Item = KernelVector>>(vectors: I) -> Self {
        let set: BTreeSet<KernelVector> = vectors.into_iter().collect();
        let mut vectors: Vec<KernelVector> = set.into_iter().collect();
        vectors.reverse(); // descending lexicographic
        KernelSet { vectors }
    }

    /// Kernel vectors in descending lexicographic order.
    pub fn iter(&self) -> std::slice::Iter<'_, KernelVector> {
        self.vectors.iter()
    }

    /// Number of kernel vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the set is empty (the task is infeasible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Whether `kernel` belongs to this set.
    #[must_use]
    pub fn contains(&self, kernel: &KernelVector) -> bool {
        // Descending order ⇒ binary search with reversed comparator.
        self.vectors
            .binary_search_by(|probe| kernel.cmp(probe))
            .is_ok()
    }

    /// Set inclusion: does every kernel vector of `self` belong to `other`?
    ///
    /// For symmetric tasks with equal `n` and `m`, this is equivalent to
    /// output-set inclusion `S(T₁) ⊆ S(T₂)`, the relation the paper writes
    /// `T₁ ⊂ T₂` — "any algorithm solving T₁ also solves T₂".
    #[must_use]
    pub fn is_subset_of(&self, other: &KernelSet) -> bool {
        self.vectors.iter().all(|k| other.contains(k))
    }
}

impl<'a> IntoIterator for &'a KernelSet {
    type Item = &'a KernelVector;
    type IntoIter = std::slice::Iter<'a, KernelVector>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::fmt::Display for KernelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, k) in self.vectors.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "}}")
    }
}

/// Recursively enumerates non-increasing sequences of `m` parts in `[lo..hi]`
/// summing to `n`, with each new part also bounded by the previous part
/// (`cap`). Produces descending lexicographic order.
fn enumerate_bounded_partitions(
    n: usize,
    m: usize,
    cap: usize,
    lo: usize,
    hi: usize,
    parts: &mut Vec<usize>,
    out: &mut Vec<KernelVector>,
) {
    if m == 0 {
        if n == 0 {
            out.push(KernelVector(parts.clone()));
        }
        return;
    }
    let upper = cap.min(hi).min(n);
    // Remaining parts must each be ≥ lo, so this part can take at most
    // n − (m−1)·lo; and it must leave no more than (m−1)·min(itself, hi).
    let reserve = (m - 1) * lo;
    if n < reserve {
        return;
    }
    let upper = upper.min(n - reserve);
    for part in (lo..=upper).rev() {
        // Prune: the remaining m−1 parts can carry at most (m−1)·min(part,hi).
        if n - part > (m - 1) * part.min(hi) {
            continue;
        }
        parts.push(part);
        enumerate_bounded_partitions(n - part, m - 1, part, lo, hi, parts, out);
        parts.pop();
    }
}

/// Cache key: the `(n, m, ℓ, u)` parameter tuple.
type TaskKey = (usize, usize, usize, usize);

/// A process-wide memo table keyed by task parameters, for quantities
/// that are pure functions of `(n, m, ℓ, u)` (kernel sets, output
/// counts, classifications, …). Lazily initialized, lock-poisoning
/// tolerant, growth bounded by the number of distinct tasks touched.
///
/// Usable as a `static`:
///
/// ```
/// use gsb_core::kernel::TaskMemo;
/// use gsb_core::SymmetricGsb;
///
/// static DOUBLED_N: TaskMemo<usize> = TaskMemo::new();
/// let wsb = SymmetricGsb::wsb(4)?;
/// assert_eq!(DOUBLED_N.get_or_compute(&wsb, |t| t.n() * 2), 8);
/// # Ok::<(), gsb_core::Error>(())
/// ```
#[derive(Debug)]
pub struct TaskMemo<V> {
    table: std::sync::OnceLock<std::sync::RwLock<std::collections::HashMap<TaskKey, V>>>,
}

impl<V> Default for TaskMemo<V> {
    fn default() -> Self {
        TaskMemo::new()
    }
}

impl<V> TaskMemo<V> {
    /// An empty memo table (const, so it can back a `static`).
    #[must_use]
    pub const fn new() -> Self {
        TaskMemo {
            table: std::sync::OnceLock::new(),
        }
    }
}

impl<V: Clone> TaskMemo<V> {
    /// Returns the cached value for `task`'s parameters, computing and
    /// inserting it on first use.
    pub fn get_or_compute(
        &self,
        task: &SymmetricGsb,
        compute: impl FnOnce(&SymmetricGsb) -> V,
    ) -> V {
        let cache = self
            .table
            .get_or_init(|| std::sync::RwLock::new(std::collections::HashMap::new()));
        let key = (task.n(), task.m(), task.l(), task.u());
        if let Some(hit) = cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return hit.clone();
        }
        let computed = compute(task);
        cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(key)
            .or_insert(computed)
            .clone()
    }
}

/// Process-wide kernel-set cache: every structure-theory operation
/// (synonymy, containment, counting, classification) consults kernel
/// sets, so an atlas sweep recomputes each one dozens of times without
/// this table.
static KERNEL_SETS: TaskMemo<std::sync::Arc<KernelSet>> = TaskMemo::new();

/// Extension methods on [`SymmetricGsb`] that depend on kernel sets.
impl SymmetricGsb {
    /// The kernel set of this task (Definition 4), computed fresh.
    #[must_use]
    pub fn kernel_set(&self) -> KernelSet {
        KernelSet::of_task(self)
    }

    /// The kernel set of this task, served from the process-wide memo
    /// table (computed on first use). All derived predicates
    /// ([`SymmetricGsb::is_synonym_of`], [`SymmetricGsb::is_subtask_of`],
    /// [`SymmetricGsb::legal_output_count`]) go through this path.
    #[must_use]
    pub fn kernel_set_cached(&self) -> std::sync::Arc<KernelSet> {
        KERNEL_SETS.get_or_compute(self, |t| std::sync::Arc::new(KernelSet::of_task(t)))
    }

    /// The *balanced kernel vector* `[⌈n/m⌉, …, ⌊n/m⌋]` (Definition 4): the
    /// first `n mod m` entries are `⌈n/m⌉`, the rest `⌊n/m⌋`. It belongs to
    /// the kernel set of every feasible `⟨n, m, −, −⟩` task (Theorem 5's
    /// hardest task has exactly this one vector).
    #[must_use]
    pub fn balanced_kernel(&self) -> KernelVector {
        let (n, m) = (self.n(), self.m());
        let q = n / m;
        let r = n % m;
        let mut parts = vec![q + 1; r];
        parts.extend(std::iter::repeat_n(q, m - r));
        KernelVector(parts)
    }

    /// Whether `self` and `other` denote the *same* task — synonyms in the
    /// paper's terminology (Section 4): equal `n`, `m`, and kernel sets.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsb_core::SymmetricGsb;
    ///
    /// // Paper: ⟨n,2,1,n−1⟩, ⟨n,2,0,n−1⟩ and ⟨n,2,1,n⟩ are synonyms... for
    /// // WSB the first and third coincide; ⟨6,3,1,6⟩ / ⟨6,3,1,5⟩ / ⟨6,3,1,4⟩
    /// // are the paper's Table-1 synonym class.
    /// let a = SymmetricGsb::new(6, 3, 1, 6)?;
    /// let b = SymmetricGsb::new(6, 3, 1, 4)?;
    /// assert!(a.is_synonym_of(&b));
    /// # Ok::<(), gsb_core::Error>(())
    /// ```
    #[must_use]
    pub fn is_synonym_of(&self, other: &SymmetricGsb) -> bool {
        self.n() == other.n()
            && self.m() == other.m()
            && self.kernel_set_cached() == other.kernel_set_cached()
    }

    /// Output-set inclusion `S(self) ⊆ S(other)` via kernel sets; requires
    /// equal `n` and `m` to be meaningful (returns `false` otherwise).
    #[must_use]
    pub fn is_subtask_of(&self, other: &SymmetricGsb) -> bool {
        self.n() == other.n()
            && self.m() == other.m()
            && self
                .kernel_set_cached()
                .is_subset_of(&other.kernel_set_cached())
    }

    /// Number of legal output vectors, computed **symmetry-reduced**: the
    /// kernel set enumerates only orbit representatives (partitions of
    /// `n`), and each contributes
    /// [`KernelVector::output_vector_count`] vectors — so the count costs
    /// `O(p(n))` partitions instead of enumerating up to `m^n` vectors.
    /// Cross-checked against [`GsbSpec::legal_output_count`]'s dynamic
    /// program in tests.
    ///
    /// [`GsbSpec::legal_output_count`]: crate::spec::GsbSpec::legal_output_count
    #[must_use]
    pub fn legal_output_count(&self) -> u128 {
        static COUNTS: TaskMemo<u128> = TaskMemo::new();
        COUNTS.get_or_compute(self, |t| {
            t.kernel_set_cached()
                .iter()
                .map(KernelVector::output_vector_count)
                .fold(0u128, u128::saturating_add)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingVector;
    use crate::output::OutputVector;

    fn task(n: usize, m: usize, l: usize, u: usize) -> SymmetricGsb {
        SymmetricGsb::new(n, m, l, u).unwrap()
    }

    fn kernel_strings(t: &SymmetricGsb) -> Vec<String> {
        t.kernel_set().iter().map(|k| k.to_string()).collect()
    }

    #[test]
    fn paper_example_6_3_0_4() {
        // Section 4.1: kernel set of ⟨6,3,0,4⟩ is
        // {[4,2,0],[4,1,1],[3,3,0],[3,2,1],[2,2,2]}.
        assert_eq!(
            kernel_strings(&task(6, 3, 0, 4)),
            [
                "[4, 2, 0]",
                "[4, 1, 1]",
                "[3, 3, 0]",
                "[3, 2, 1]",
                "[2, 2, 2]"
            ]
        );
    }

    #[test]
    fn paper_example_all_seven_kernels() {
        // ⟨6,3,0,6⟩ has all seven kernel vectors, in Table 1's column order.
        assert_eq!(
            kernel_strings(&task(6, 3, 0, 6)),
            [
                "[6, 0, 0]",
                "[5, 1, 0]",
                "[4, 2, 0]",
                "[4, 1, 1]",
                "[3, 3, 0]",
                "[3, 2, 1]",
                "[2, 2, 2]"
            ]
        );
    }

    #[test]
    fn lemma_3_total_lexicographic_order() {
        // Kernel sets come out strictly descending in lex order.
        for u in 2..=6 {
            for l in 0..=2 {
                let t = task(6, 3, l, u);
                let ks = t.kernel_set();
                let v: Vec<_> = ks.iter().collect();
                for w in v.windows(2) {
                    assert!(w[0] > w[1], "not strictly descending in {t}");
                }
            }
        }
    }

    #[test]
    fn balanced_kernel_examples() {
        assert_eq!(task(6, 3, 0, 6).balanced_kernel().parts(), &[2, 2, 2]);
        assert_eq!(task(7, 3, 0, 7).balanced_kernel().parts(), &[3, 2, 2]);
        assert_eq!(task(5, 4, 0, 5).balanced_kernel().parts(), &[2, 1, 1, 1]);
    }

    #[test]
    fn balanced_kernel_in_every_feasible_task() {
        // Definition 4 / Table 1 observation: [2,2,2] belongs to all tasks.
        for n in 2usize..=9 {
            for m in 1..=n {
                for l in 0..=n / m {
                    for u in l.max(n.div_ceil(m))..=n {
                        let t = task(n, m, l, u);
                        assert!(t.is_feasible(), "{t}");
                        assert!(
                            t.kernel_set().contains(&t.balanced_kernel()),
                            "balanced kernel missing from {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_synonym_classes() {
        // Section 4.1: ⟨6,3,2,5⟩, ⟨6,3,2,4⟩, ⟨6,3,2,3⟩, ⟨6,3,0,2⟩,
        // ⟨6,3,1,2⟩ and ⟨6,3,2,2⟩ are synonyms.
        let class_a = [
            task(6, 3, 2, 5),
            task(6, 3, 2, 4),
            task(6, 3, 2, 3),
            task(6, 3, 0, 2),
            task(6, 3, 1, 2),
            task(6, 3, 2, 2),
        ];
        for t in &class_a {
            assert!(t.is_synonym_of(&class_a[0]), "{t}");
            assert_eq!(kernel_strings(t), ["[2, 2, 2]"]);
        }
        // ⟨6,3,1,6⟩, ⟨6,3,1,5⟩ and ⟨6,3,1,4⟩ are synonyms.
        let class_b = [task(6, 3, 1, 6), task(6, 3, 1, 5), task(6, 3, 1, 4)];
        for t in &class_b {
            assert!(t.is_synonym_of(&class_b[0]), "{t}");
        }
        // And the two classes are different tasks.
        assert!(!class_a[0].is_synonym_of(&class_b[0]));
    }

    #[test]
    fn incomparable_tasks_from_paper() {
        // "⟨6,3,1,4⟩-GSB and ⟨6,3,0,3⟩-GSB tasks are not included one in
        // the other."
        let a = task(6, 3, 1, 4);
        let b = task(6, 3, 0, 3);
        assert!(!a.is_subtask_of(&b));
        assert!(!b.is_subtask_of(&a));
        // But both include ⟨6,3,1,3⟩ strictly.
        let c = task(6, 3, 1, 3);
        assert!(c.is_subtask_of(&a));
        assert!(c.is_subtask_of(&b));
        assert!(!a.is_subtask_of(&c));
    }

    #[test]
    fn infeasible_task_has_empty_kernel_set() {
        let t = task(5, 4, 0, 1); // 4 · 1 < 5
        assert!(!t.is_feasible());
        assert!(t.kernel_set().is_empty());
    }

    #[test]
    fn kernel_set_matches_output_enumeration() {
        // The kernel set must equal the set of kernels of all legal outputs.
        for (n, m, l, u) in [(4, 2, 1, 3), (5, 3, 0, 2), (6, 3, 1, 4), (4, 4, 1, 1)] {
            let t = task(n, m, l, u);
            let from_outputs: BTreeSet<KernelVector> = t
                .to_spec()
                .legal_outputs()
                .iter()
                .map(|o| CountingVector::of_output(o, m).to_kernel())
                .collect();
            let direct: BTreeSet<KernelVector> = t.kernel_set().iter().cloned().collect();
            assert_eq!(from_outputs, direct, "{t}");
        }
    }

    #[test]
    fn binomial_counting_is_exact_at_the_classifier_ceiling() {
        // C(130, 65) fits u128 but the naive multiply-then-divide
        // overflows on the way there; the cancellation fallback must
        // stay exact (regression: a saturate-then-divide version
        // silently returned a wrong, non-MAX value).
        let t = SymmetricGsb::new(130, 2, 65, 65).unwrap();
        assert_eq!(
            t.legal_output_count(),
            95_067_625_827_960_698_145_584_333_020_095_113_100u128
        );
    }

    #[test]
    fn output_counts_beyond_the_factorial_range() {
        // Loose renaming at n = 20 has m = 39: factorial-quotient
        // counting silently wrapped here in the seed (39! overflows
        // u128). Exact value: 39!/19! — injections of 20 processes into
        // 39 names — and the two independent fast paths must agree.
        let t = SymmetricGsb::loose_renaming(20).unwrap();
        let expected: u128 = (20u128..=39).product();
        assert_eq!(t.legal_output_count(), expected);
        assert_eq!(t.to_spec().legal_output_count(), expected);
    }

    #[test]
    fn kernel_count_matches_dp_count() {
        // Two independent fast paths (orbit counting vs. the spec DP)
        // must agree on every feasible symmetric task up to n = 9.
        for n in 1usize..=9 {
            for m in 1..=n {
                for l in 0..=n / m {
                    for u in l.max(n.div_ceil(m))..=n {
                        let t = task(n, m, l, u);
                        assert_eq!(
                            t.legal_output_count(),
                            t.to_spec().legal_output_count(),
                            "{t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn output_vector_count_cross_check() {
        // Σ over kernel vectors of output_vector_count == |legal_outputs|.
        for (n, m, l, u) in [(4, 2, 1, 3), (5, 3, 0, 2), (6, 3, 0, 6), (4, 4, 1, 1)] {
            let t = task(n, m, l, u);
            let total: u128 = t
                .kernel_set()
                .iter()
                .map(KernelVector::output_vector_count)
                .sum();
            assert_eq!(total, t.to_spec().legal_outputs().len() as u128, "{t}");
        }
    }

    #[test]
    fn kernel_of_counting_vector() {
        let o = OutputVector::new(vec![1, 2, 2, 3, 2, 1]);
        let c = CountingVector::of_output(&o, 3);
        assert_eq!(c.to_kernel().parts(), &[3, 2, 1]);
    }

    #[test]
    fn from_vectors_dedups_and_orders() {
        let ks = KernelSet::from_vectors(vec![
            KernelVector::from_counts(vec![2, 2, 2]),
            KernelVector::from_counts(vec![4, 1, 1]),
            KernelVector::from_counts(vec![2, 2, 2]),
        ]);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks.iter().next().unwrap().parts(), &[4, 1, 1]);
    }

    #[test]
    fn contains_uses_order_correctly() {
        let t = task(6, 3, 0, 6);
        let ks = t.kernel_set();
        for k in ks.iter() {
            assert!(ks.contains(k));
        }
        assert!(!ks.contains(&KernelVector::from_counts(vec![6, 1, 0])));
    }

    #[test]
    fn max_min_parts() {
        let k = KernelVector::from_counts(vec![1, 4, 1]);
        assert_eq!(k.max_part(), 4);
        assert_eq!(k.min_part(), 1);
        assert_eq!(k.m(), 3);
        assert_eq!(k.total(), 6);
    }
}
