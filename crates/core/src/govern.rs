//! Cooperative cancellation and resource governance.
//!
//! A [`Ticket`] is a cheap, cloneable handle that every long-running
//! loop in the workspace polls: the CDCL search, the retained
//! backtracking oracle, streaming template stamping, orbit-frontier
//! expansion, and atlas sweeps. A ticket carries
//!
//! * a **cooperative cancellation flag** ([`Ticket::cancel`]),
//! * an optional **wall-clock deadline**,
//! * optional **decision / conflict / node budgets**, and
//! * an approximate **memory budget** charged at frontier/arena
//!   growth points.
//!
//! Governed loops call [`Ticket::check`] (or one of the `charge_*`
//! methods) at a bounded stride; the first limit to trip wins and every
//! subsequent poll observes the same [`StopReason`]. Exhaustion is
//! **not** an error in the engine's vocabulary: callers translate
//! [`Stopped`] into an *indeterminate* verdict carrying whatever
//! partial statistics the solve accumulated.
//!
//! The [`fault`] submodule is a deterministic fault-injection harness:
//! tests arm a seeded countdown that fires a cancellation, a budget
//! trip, or a panic at a counted poll site, proving that every governed
//! loop actually stops within one polling interval.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed computation stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StopReason {
    /// The caller (or a watchdog) raised the cooperative cancel flag.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The decision budget was exhausted.
    DecisionBudget,
    /// The conflict budget was exhausted.
    ConflictBudget,
    /// The node budget (reference backtracker) was exhausted.
    NodeBudget,
    /// The approximate memory budget was exhausted.
    MemoryBudget,
    /// A test-only injected fault tripped the ticket.
    Fault,
}

impl StopReason {
    /// Stable machine-readable label (used by the JSON layer).
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::Deadline => "deadline",
            StopReason::DecisionBudget => "decision-budget",
            StopReason::ConflictBudget => "conflict-budget",
            StopReason::NodeBudget => "node-budget",
            StopReason::MemoryBudget => "memory-budget",
            StopReason::Fault => "fault",
        }
    }

    /// Parse a label produced by [`StopReason::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "cancelled" => StopReason::Cancelled,
            "deadline" => StopReason::Deadline,
            "decision-budget" => StopReason::DecisionBudget,
            "conflict-budget" => StopReason::ConflictBudget,
            "node-budget" => StopReason::NodeBudget,
            "memory-budget" => StopReason::MemoryBudget,
            "fault" => StopReason::Fault,
            _ => return None,
        })
    }

    fn code(self) -> u8 {
        match self {
            StopReason::Cancelled => 1,
            StopReason::Deadline => 2,
            StopReason::DecisionBudget => 3,
            StopReason::ConflictBudget => 4,
            StopReason::NodeBudget => 5,
            StopReason::MemoryBudget => 6,
            StopReason::Fault => 7,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => StopReason::Cancelled,
            2 => StopReason::Deadline,
            3 => StopReason::DecisionBudget,
            4 => StopReason::ConflictBudget,
            5 => StopReason::NodeBudget,
            6 => StopReason::MemoryBudget,
            7 => StopReason::Fault,
            _ => return None,
        })
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The error a governed loop propagates when its ticket trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopped {
    /// The first limit that tripped.
    pub reason: StopReason,
}

impl std::fmt::Display for Stopped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "computation stopped: {}", self.reason)
    }
}

impl std::error::Error for Stopped {}

/// Resource limits for one governed computation.
///
/// `None` everywhere (the [`Default`]) means unlimited: the ticket only
/// responds to explicit cancellation and injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock deadline, measured from [`Ticket::new`].
    pub deadline: Option<Duration>,
    /// Maximum CDCL decisions across all portfolio members.
    pub decisions: Option<u64>,
    /// Maximum CDCL conflicts across all portfolio members.
    pub conflicts: Option<u64>,
    /// Maximum reference-backtracker nodes.
    pub nodes: Option<u64>,
    /// Approximate memory budget in bytes, charged at growth points.
    pub memory_bytes: Option<u64>,
}

impl Limits {
    /// No limits at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when every limit is `None` (the ticket can still be
    /// cancelled or fault-tripped).
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }
}

#[derive(Debug)]
struct TicketShared {
    cancel: AtomicBool,
    /// First tripped [`StopReason::code`]; 0 = still running.
    stopped: AtomicU8,
    deadline: Option<Instant>,
    decision_budget: u64,
    conflict_budget: u64,
    node_budget: u64,
    memory_budget: u64,
    decisions: AtomicU64,
    conflicts: AtomicU64,
    nodes: AtomicU64,
    memory: AtomicU64,
}

/// Cheap, cloneable governance handle polled by every long-running
/// loop. See the [module docs](self) for the contract.
#[derive(Debug, Clone)]
pub struct Ticket {
    inner: Arc<TicketShared>,
}

impl Default for Ticket {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Ticket {
    /// A ticket with the given limits; the deadline clock starts now.
    pub fn new(limits: Limits) -> Self {
        Ticket {
            inner: Arc::new(TicketShared {
                cancel: AtomicBool::new(false),
                stopped: AtomicU8::new(0),
                deadline: limits.deadline.map(|d| Instant::now() + d),
                decision_budget: limits.decisions.unwrap_or(u64::MAX),
                conflict_budget: limits.conflicts.unwrap_or(u64::MAX),
                node_budget: limits.nodes.unwrap_or(u64::MAX),
                memory_budget: limits.memory_bytes.unwrap_or(u64::MAX),
                decisions: AtomicU64::new(0),
                conflicts: AtomicU64::new(0),
                nodes: AtomicU64::new(0),
                memory: AtomicU64::new(0),
            }),
        }
    }

    /// A ticket that never trips on its own (cancel/fault still work).
    pub fn unlimited() -> Self {
        Self::new(Limits::none())
    }

    /// Raise the cooperative cancellation flag. Idempotent; safe from
    /// any thread.
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::SeqCst);
    }

    /// Trip the ticket with an explicit reason (used by the watchdog
    /// and the fault harness). The first reason recorded wins.
    pub fn trip(&self, reason: StopReason) {
        let _ = self.inner.stopped.compare_exchange(
            0,
            reason.code(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// The reason this ticket stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match StopReason::from_code(self.inner.stopped.load(Ordering::SeqCst)) {
            Some(r) => Some(r),
            None if self.inner.cancel.load(Ordering::SeqCst) => Some(StopReason::Cancelled),
            None => None,
        }
    }

    /// Poll the ticket: returns `Err` once any limit has tripped.
    ///
    /// Called at a bounded stride from every governed loop; the cost is
    /// a few atomic loads (plus one `Instant::now` when a deadline is
    /// set), so polling every few hundred iterations is free in
    /// practice.
    pub fn check(&self) -> Result<(), Stopped> {
        fault::poll(self);
        if let Some(reason) = StopReason::from_code(self.inner.stopped.load(Ordering::SeqCst)) {
            return Err(Stopped { reason });
        }
        if self.inner.cancel.load(Ordering::SeqCst) {
            self.trip(StopReason::Cancelled);
            return Err(Stopped {
                reason: StopReason::Cancelled,
            });
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.trip(StopReason::Deadline);
                return Err(Stopped {
                    reason: StopReason::Deadline,
                });
            }
        }
        Ok(())
    }

    fn charge(
        &self,
        counter: &AtomicU64,
        budget: u64,
        amount: u64,
        reason: StopReason,
    ) -> Result<(), Stopped> {
        let total = counter.fetch_add(amount, Ordering::Relaxed) + amount;
        if total > budget {
            self.trip(reason);
            return Err(Stopped { reason });
        }
        self.check()
    }

    /// Charge `amount` CDCL decisions and poll.
    pub fn charge_decisions(&self, amount: u64) -> Result<(), Stopped> {
        self.charge(
            &self.inner.decisions,
            self.inner.decision_budget,
            amount,
            StopReason::DecisionBudget,
        )
    }

    /// Charge `amount` CDCL conflicts and poll.
    pub fn charge_conflicts(&self, amount: u64) -> Result<(), Stopped> {
        self.charge(
            &self.inner.conflicts,
            self.inner.conflict_budget,
            amount,
            StopReason::ConflictBudget,
        )
    }

    /// Charge `amount` backtracking nodes and poll.
    pub fn charge_nodes(&self, amount: u64) -> Result<(), Stopped> {
        self.charge(
            &self.inner.nodes,
            self.inner.node_budget,
            amount,
            StopReason::NodeBudget,
        )
    }

    /// Charge `bytes` of approximate memory growth and poll.
    pub fn charge_memory(&self, bytes: u64) -> Result<(), Stopped> {
        self.charge(
            &self.inner.memory,
            self.inner.memory_budget,
            bytes,
            StopReason::MemoryBudget,
        )
    }

    /// Total nodes charged so far (partial-progress reporting).
    pub fn nodes_charged(&self) -> u64 {
        self.inner.nodes.load(Ordering::Relaxed)
    }
}

pub mod fault {
    //! Deterministic fault injection at counted poll sites.
    //!
    //! Tests arm a plan with [`arm`] (action derived from the seed) or
    //! [`arm_action`] (explicit action): after a seed-derived number of
    //! [`Ticket::check`](super::Ticket::check) polls anywhere in the
    //! process, the plan fires **once**, injecting a cancellation, a
    //! budget trip, or a panic at that exact poll site. The returned
    //! [`FaultGuard`] serializes fault tests process-wide and disarms
    //! on drop.
    //!
    //! A second, independent plan covers the **I/O layer**: [`arm_io`]
    //! arms a seeded, possibly multi-fire schedule of
    //! [`IoFaultAction`]s (torn writes, failed fsyncs, dropped
    //! connections, stalled reads) consumed by [`io_poll`] calls
    //! threaded through the verdict store's append/compact/load paths
    //! and the server's per-connection read/write paths. The whole
    //! schedule — both the gaps between firings and what fires — is a
    //! pure function of the seed ([`io_plan`]), so a failing run is
    //! replayable bit-for-bit.
    //!
    //! When disarmed (the production state) each hook costs one relaxed
    //! atomic load per poll.

    use super::{StopReason, Ticket};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
    use std::sync::{Mutex, MutexGuard};

    static ARMED: AtomicBool = AtomicBool::new(false);
    /// Polls to survive before the plan fires.
    static COUNTDOWN: AtomicU64 = AtomicU64::new(0);
    static ACTION: AtomicU8 = AtomicU8::new(0);
    /// Serializes fault-injection tests across the whole process; the
    /// injected panic fires on a *different* thread, so this guard is
    /// never poisoned by the fault itself — but recover anyway.
    static GATE: Mutex<()> = Mutex::new(());

    static IO_ARMED: AtomicBool = AtomicBool::new(false);
    /// Applicable-site polls to survive before the next I/O fault.
    static IO_COUNTDOWN: AtomicU64 = AtomicU64::new(0);
    static IO_ACTION: AtomicU8 = AtomicU8::new(0);
    /// Firings left in the armed plan.
    static IO_REMAINING: AtomicU64 = AtomicU64::new(0);
    /// The splitmix chain state deriving the next countdown gap.
    static IO_STATE: AtomicU64 = AtomicU64::new(0);
    /// Total I/O faults fired since the plan was armed.
    static IO_FIRED: AtomicU64 = AtomicU64::new(0);

    /// Gap modulus for the seeded I/O schedule: each firing is at most
    /// this many applicable polls after the previous one.
    const IO_GAP_MOD: u64 = 12;

    /// What an armed fault plan does when its countdown expires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultAction {
        /// Raise the ticket's cooperative cancel flag.
        Cancel,
        /// Trip the ticket with [`StopReason::Fault`].
        TripBudget,
        /// Panic at the poll site (exercises `Batch` panic isolation).
        Panic,
    }

    impl FaultAction {
        fn code(self) -> u8 {
            match self {
                FaultAction::Cancel => 1,
                FaultAction::TripBudget => 2,
                FaultAction::Panic => 3,
            }
        }
    }

    /// Where an I/O fault can be injected. Each site names one hook in
    /// the serving stack's I/O layer.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum IoSite {
        /// The verdict store's per-entry append path.
        StoreAppend,
        /// The verdict store's generation-compaction write/fsync path.
        StoreCompact,
        /// The verdict store's load path (log and generation files).
        StoreLoad,
        /// A server connection's read path.
        ConnRead,
        /// A server connection's write path.
        ConnWrite,
    }

    /// What an armed I/O fault plan injects when its countdown expires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum IoFaultAction {
        /// Write only a prefix of the payload and stop — the on-disk
        /// image looks like a crash mid-write.
        TornWrite,
        /// Fail the flush/fsync (or, at [`IoSite::StoreLoad`], make the
        /// file unreadable) — durability is silently lost.
        FailFsync,
        /// Close the connection abruptly, mid-request or mid-response.
        DropConnection,
        /// Stop reading from the peer — the connection goes silent
        /// until the server's idle timeout reaps it.
        StallRead,
    }

    impl IoFaultAction {
        fn code(self) -> u8 {
            match self {
                IoFaultAction::TornWrite => 1,
                IoFaultAction::FailFsync => 2,
                IoFaultAction::DropConnection => 3,
                IoFaultAction::StallRead => 4,
            }
        }

        fn from_code(code: u8) -> Option<Self> {
            Some(match code {
                1 => IoFaultAction::TornWrite,
                2 => IoFaultAction::FailFsync,
                3 => IoFaultAction::DropConnection,
                4 => IoFaultAction::StallRead,
                _ => return None,
            })
        }

        /// Whether this action makes sense at `site`; countdowns only
        /// advance at applicable sites, so a connection-fault plan is
        /// untouched by store traffic and vice versa.
        #[must_use]
        pub fn applies_at(self, site: IoSite) -> bool {
            match self {
                IoFaultAction::TornWrite => {
                    matches!(site, IoSite::StoreAppend | IoSite::StoreCompact)
                }
                IoFaultAction::FailFsync => matches!(
                    site,
                    IoSite::StoreAppend | IoSite::StoreCompact | IoSite::StoreLoad
                ),
                IoFaultAction::DropConnection => {
                    matches!(site, IoSite::ConnRead | IoSite::ConnWrite)
                }
                IoFaultAction::StallRead => matches!(site, IoSite::ConnRead),
            }
        }
    }

    /// RAII guard for an armed fault plan: holds the process-wide test
    /// gate and disarms on drop.
    #[derive(Debug)]
    pub struct FaultGuard {
        _gate: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            ARMED.store(false, Ordering::SeqCst);
            IO_ARMED.store(false, Ordering::SeqCst);
        }
    }

    /// splitmix64 — the standard seed scrambler; keeps `arm(seed)`
    /// deterministic but decorrelated from consecutive seeds.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Arm a seeded plan; the action cycles through all three
    /// [`FaultAction`]s as a function of the seed.
    pub fn arm(seed: u64) -> FaultGuard {
        let action = match splitmix64(seed ^ 0xfau64) % 3 {
            0 => FaultAction::Cancel,
            1 => FaultAction::TripBudget,
            _ => FaultAction::Panic,
        };
        arm_action(seed, action)
    }

    /// Arm a seeded countdown with an explicit action.
    pub fn arm_action(seed: u64, action: FaultAction) -> FaultGuard {
        let gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
        // Survive a small, seed-determined number of polls so the fault
        // lands mid-loop rather than on the very first check.
        COUNTDOWN.store(splitmix64(seed) % 32, Ordering::SeqCst);
        ACTION.store(action.code(), Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        FaultGuard { _gate: gate }
    }

    /// Arm a seeded I/O fault plan: `action` fires `fires` times, each
    /// firing separated by a seed-derived number of applicable
    /// [`io_poll`] calls (the exact gap sequence is [`io_plan`]). The
    /// returned guard holds the process-wide test gate and disarms on
    /// drop.
    pub fn arm_io(seed: u64, action: IoFaultAction, fires: u64) -> FaultGuard {
        let gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
        let gaps = io_plan(seed, fires.max(1));
        let state = splitmix64(seed ^ 0x10_ca11);
        IO_STATE.store(splitmix64(state), Ordering::SeqCst);
        IO_COUNTDOWN.store(gaps[0], Ordering::SeqCst);
        IO_REMAINING.store(fires.max(1), Ordering::SeqCst);
        IO_ACTION.store(action.code(), Ordering::SeqCst);
        IO_FIRED.store(0, Ordering::SeqCst);
        IO_ARMED.store(true, Ordering::SeqCst);
        FaultGuard { _gate: gate }
    }

    /// The seeded gap schedule [`arm_io`] walks: `gaps[i]` applicable
    /// polls are survived before firing `i`. Pure in the seed, so a
    /// test can assert the same seed reproduces the same schedule
    /// without arming anything.
    #[must_use]
    pub fn io_plan(seed: u64, fires: u64) -> Vec<u64> {
        let mut state = splitmix64(seed ^ 0x10_ca11);
        (0..fires)
            .map(|_| {
                let gap = state % IO_GAP_MOD;
                state = splitmix64(state);
                gap
            })
            .collect()
    }

    /// Total I/O faults fired by the currently (or most recently) armed
    /// plan.
    #[must_use]
    pub fn io_fired() -> u64 {
        IO_FIRED.load(Ordering::SeqCst)
    }

    /// The per-site I/O hook: returns the armed action when this poll
    /// is the one the schedule says should fail, `None` otherwise.
    /// Disarmed cost is one relaxed load. Polls at sites the armed
    /// action does not apply to neither fire nor advance the countdown.
    #[must_use]
    pub fn io_poll(site: IoSite) -> Option<IoFaultAction> {
        if !IO_ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let action = IoFaultAction::from_code(IO_ACTION.load(Ordering::SeqCst))?;
        if !action.applies_at(site) {
            return None;
        }
        if IO_COUNTDOWN
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| c.checked_sub(1))
            .is_ok()
        {
            return None; // still counting down
        }
        // Countdown exhausted: claim one firing (the remaining-counter
        // CAS makes this exactly-once even under racing polls).
        let Ok(prev) =
            IO_REMAINING.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
        else {
            IO_ARMED.store(false, Ordering::SeqCst);
            return None;
        };
        if prev <= 1 {
            IO_ARMED.store(false, Ordering::SeqCst);
        } else {
            // Re-seed the countdown for the next firing from the chain.
            let state = IO_STATE.load(Ordering::SeqCst);
            IO_COUNTDOWN.store(state % IO_GAP_MOD, Ordering::SeqCst);
            IO_STATE.store(splitmix64(state), Ordering::SeqCst);
        }
        IO_FIRED.fetch_add(1, Ordering::SeqCst);
        Some(action)
    }

    /// The per-poll hook; called from [`Ticket::check`].
    pub(super) fn poll(ticket: &Ticket) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        if COUNTDOWN
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| c.checked_sub(1))
            .is_ok()
        {
            return; // still counting down
        }
        // Countdown exhausted: fire exactly once, even under races.
        if !ARMED.swap(false, Ordering::SeqCst) {
            return;
        }
        match ACTION.load(Ordering::SeqCst) {
            1 => ticket.cancel(),
            2 => ticket.trip(StopReason::Fault),
            3 => panic!("injected fault: panic at counted poll site"),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_ticket_never_trips() {
        let t = Ticket::unlimited();
        for _ in 0..10_000 {
            t.check().expect("unlimited ticket stays clean");
        }
        assert_eq!(t.stop_reason(), None);
    }

    #[test]
    fn cancellation_is_sticky_and_observable_from_clones() {
        let t = Ticket::unlimited();
        let c = t.clone();
        c.cancel();
        let err = t.check().unwrap_err();
        assert_eq!(err.reason, StopReason::Cancelled);
        assert_eq!(t.stop_reason(), Some(StopReason::Cancelled));
        // Sticky: every later poll sees the same reason.
        assert_eq!(t.check().unwrap_err().reason, StopReason::Cancelled);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let t = Ticket::new(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        assert_eq!(t.check().unwrap_err().reason, StopReason::Deadline);
    }

    #[test]
    fn budgets_trip_with_the_right_reason() {
        type Charge<'a> = &'a dyn Fn(&Ticket) -> Result<(), Stopped>;
        let cases: [(Charge, StopReason); 4] = [
            (&|t| t.charge_decisions(10), StopReason::DecisionBudget),
            (&|t| t.charge_conflicts(10), StopReason::ConflictBudget),
            (&|t| t.charge_nodes(10), StopReason::NodeBudget),
            (&|t| t.charge_memory(10), StopReason::MemoryBudget),
        ];
        for (charge, reason) in cases {
            let t = Ticket::new(Limits {
                decisions: Some(25),
                conflicts: Some(25),
                nodes: Some(25),
                memory_bytes: Some(25),
                ..Limits::default()
            });
            charge(&t).expect("10 of 25");
            charge(&t).expect("20 of 25");
            assert_eq!(charge(&t).unwrap_err().reason, reason, "{reason}");
            assert_eq!(t.stop_reason(), Some(reason));
        }
    }

    #[test]
    fn first_trip_wins() {
        let t = Ticket::new(Limits {
            nodes: Some(1),
            ..Limits::default()
        });
        assert_eq!(
            t.charge_nodes(2).unwrap_err().reason,
            StopReason::NodeBudget
        );
        t.cancel();
        // The recorded reason stays NodeBudget even after a cancel.
        assert_eq!(t.check().unwrap_err().reason, StopReason::NodeBudget);
    }

    #[test]
    fn stop_reason_labels_round_trip() {
        for reason in [
            StopReason::Cancelled,
            StopReason::Deadline,
            StopReason::DecisionBudget,
            StopReason::ConflictBudget,
            StopReason::NodeBudget,
            StopReason::MemoryBudget,
            StopReason::Fault,
        ] {
            assert_eq!(StopReason::from_label(reason.label()), Some(reason));
        }
        assert_eq!(StopReason::from_label("sideways"), None);
    }

    #[test]
    fn seeded_fault_cancels_at_a_counted_poll() {
        let _guard = fault::arm_action(42, fault::FaultAction::Cancel);
        let t = Ticket::unlimited();
        let mut polls = 0u64;
        let reason = loop {
            polls += 1;
            if let Err(stop) = t.check() {
                break stop.reason;
            }
            assert!(polls < 100, "fault must fire within the countdown window");
        };
        assert_eq!(reason, StopReason::Cancelled);
    }

    #[test]
    fn seeded_fault_trips_budget_deterministically() {
        let fire_poll = |seed: u64| -> u64 {
            let _guard = fault::arm_action(seed, fault::FaultAction::TripBudget);
            let t = Ticket::unlimited();
            let mut polls = 0u64;
            loop {
                polls += 1;
                if let Err(stop) = t.check() {
                    assert_eq!(stop.reason, StopReason::Fault);
                    break polls;
                }
                assert!(polls < 100);
            }
        };
        assert_eq!(fire_poll(7), fire_poll(7), "same seed, same poll index");
    }

    #[test]
    fn ticket_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Ticket>();
        assert_send_sync::<Stopped>();
    }

    #[test]
    fn io_plan_is_a_pure_function_of_the_seed() {
        assert_eq!(fault::io_plan(99, 5), fault::io_plan(99, 5));
        assert_ne!(fault::io_plan(99, 5), fault::io_plan(100, 5));
        assert_eq!(fault::io_plan(99, 5).len(), 5);
    }

    #[test]
    fn io_faults_fire_on_schedule_at_applicable_sites_only() {
        use fault::{IoFaultAction, IoSite};
        let seed = 0xd15c;
        let fires = 3;
        let plan = fault::io_plan(seed, fires);
        let _guard = fault::arm_io(seed, IoFaultAction::TornWrite, fires);
        let mut observed = Vec::new();
        for poll in 0..200u64 {
            // Connection sites never advance a store-fault plan.
            assert_eq!(fault::io_poll(IoSite::ConnRead), None);
            if fault::io_poll(IoSite::StoreAppend) == Some(IoFaultAction::TornWrite) {
                observed.push(poll);
            }
        }
        assert_eq!(observed.len() as u64, fires);
        assert_eq!(fault::io_fired(), fires);
        // The observed poll indices are exactly the cumulative gaps.
        let mut expected = Vec::new();
        let mut at = 0u64;
        for gap in plan {
            at += gap;
            expected.push(at);
            at += 1; // the firing poll itself
        }
        assert_eq!(observed, expected);
        // Exhausted plans disarm: further polls are clean.
        assert_eq!(fault::io_poll(IoSite::StoreAppend), None);
    }

    #[test]
    fn io_fault_applicability_matrix() {
        use fault::{IoFaultAction, IoSite};
        assert!(IoFaultAction::TornWrite.applies_at(IoSite::StoreAppend));
        assert!(IoFaultAction::TornWrite.applies_at(IoSite::StoreCompact));
        assert!(!IoFaultAction::TornWrite.applies_at(IoSite::ConnWrite));
        assert!(IoFaultAction::FailFsync.applies_at(IoSite::StoreLoad));
        assert!(IoFaultAction::DropConnection.applies_at(IoSite::ConnRead));
        assert!(IoFaultAction::DropConnection.applies_at(IoSite::ConnWrite));
        assert!(!IoFaultAction::DropConnection.applies_at(IoSite::StoreAppend));
        assert!(IoFaultAction::StallRead.applies_at(IoSite::ConnRead));
        assert!(!IoFaultAction::StallRead.applies_at(IoSite::ConnWrite));
    }
}
